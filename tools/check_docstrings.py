#!/usr/bin/env python3
"""Public-API docstring gate -- back-compat entry point.

The implementation moved into the :mod:`tools.lint` framework (rule id
``lint.docstring``); this shim keeps the historical invocation and its
exact output format working::

    python tools/check_docstrings.py            # gate (CI runs this)
    python tools/check_docstrings.py --list     # show every audited file

Prefer ``python -m tools.lint`` for the full repo gate (docstrings
plus monitor-construction, wall-clock and wire-parity checks).
"""

from __future__ import annotations

import sys
from pathlib import Path

_TOOLS_DIR = Path(__file__).resolve().parent
if str(_TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(_TOOLS_DIR))

from lint.docstrings import (  # noqa: E402  (path bootstrap above)
    AUDITED,
    REPO_ROOT,
    audited_files,
    check_file,
    main,
)

__all__ = ["AUDITED", "REPO_ROOT", "audited_files", "check_file", "main"]

if __name__ == "__main__":
    sys.exit(main())
