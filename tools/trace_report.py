#!/usr/bin/env python3
"""Fold a JSONL span trace into a self-time-per-component table.

The artifact that turns the ROADMAP's hot-path speedup item into a
ranked worklist: read one or more trace files written by ``--trace``
(``python -m repro ... --trace run.jsonl``), compute every span's
*self time* (its duration minus the durations of its direct children),
and aggregate per component (``psl.monitor``, ``sysc.kernel``,
``scenarios``, ``dispatch``, ``workbench``) and per span name.  Spans
carrying a ``property`` attribute (the per-monitor spans the ABV
harness emits) additionally get a per-property attribution table, so
"monitors dominate" becomes "these three properties dominate"::

    python tools/trace_report.py run.jsonl
    python tools/trace_report.py run.jsonl shard1.jsonl --json
    python tools/trace_report.py run.jsonl --top 5

Multiple files merge cleanly (span ids are namespaced per file), which
is how per-shard traces from a fleet fold into one report.  Exit
status 0 unless a file cannot be read or parsed.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence


def load_spans(paths: Sequence[str]) -> List[Dict[str, Any]]:
    """Read spans from JSONL trace files, namespacing ids per file.

    Span/parent ids are only unique within one tracer process, so each
    file's ids get a distinct prefix before merging -- parent links
    never cross files.
    """
    spans: List[Dict[str, Any]] = []
    for file_index, path in enumerate(paths):
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except ValueError as exc:
                    raise SystemExit(
                        f"{path}:{line_number}: unparseable span: {exc}"
                    )
                doc["span_id"] = (file_index, doc["span_id"])
                if doc.get("parent_id") is not None:
                    doc["parent_id"] = (file_index, doc["parent_id"])
                spans.append(doc)
    return spans


def self_times(spans: Sequence[Dict[str, Any]]) -> Dict[Any, float]:
    """Per-span self time: duration minus direct children's durations.

    Clamped at zero -- synthetic spans (monitor step time attributed
    under a kernel run) can legitimately sum past their parent's
    measured duration by scheduling noise, and negative self time would
    only misrank components.
    """
    children_duration: Dict[Any, float] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None:
            children_duration[parent] = (
                children_duration.get(parent, 0.0) + span["duration_s"]
            )
    return {
        span["span_id"]: max(
            span["duration_s"] - children_duration.get(span["span_id"], 0.0),
            0.0,
        )
        for span in spans
    }


def fold(spans: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate spans into the report document.

    Returns ``components`` (ranked by total self time), ``names``
    (per span name), and ``properties`` (per-PSL-property attribution
    from spans with an ``attrs.property``), each entry carrying
    ``self_s``, ``total_s`` and ``count``.
    """
    selfs = self_times(spans)
    components: Dict[str, Dict[str, Any]] = {}
    names: Dict[str, Dict[str, Any]] = {}
    properties: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        self_s = selfs[span["span_id"]]
        for table, key in (
            (components, span.get("component", "?")),
            (names, span["name"]),
        ):
            entry = table.setdefault(
                key, {"self_s": 0.0, "total_s": 0.0, "count": 0}
            )
            entry["self_s"] += self_s
            entry["total_s"] += span["duration_s"]
            entry["count"] += 1
        prop = span.get("attrs", {}).get("property")
        if prop:
            entry = properties.setdefault(
                prop, {"self_s": 0.0, "total_s": 0.0, "count": 0, "steps": 0}
            )
            entry["self_s"] += self_s
            entry["total_s"] += span["duration_s"]
            entry["count"] += 1
            entry["steps"] += span.get("attrs", {}).get("steps", 0)
    return {
        "spans": len(spans),
        "components": _ranked(components),
        "names": _ranked(names),
        "properties": _ranked(properties),
    }


def _ranked(table: Dict[str, Dict[str, Any]]) -> List[Dict[str, Any]]:
    rows = [
        {"name": name, **{k: round(v, 9) if isinstance(v, float) else v
                          for k, v in entry.items()}}
        for name, entry in table.items()
    ]
    rows.sort(key=lambda row: (-row["self_s"], row["name"]))
    return rows


def _format_table(
    title: str, rows: List[Dict[str, Any]], top: Optional[int]
) -> List[str]:
    lines = [f"== {title} (by self time) =="]
    shown = rows if top is None else rows[:top]
    if not shown:
        lines.append("  (no spans)")
        return lines
    total_self = sum(row["self_s"] for row in rows) or 1.0
    width = max(len(row["name"]) for row in shown)
    for row in shown:
        share = 100.0 * row["self_s"] / total_self
        line = (
            f"  {row['name']:<{width}}  self {row['self_s']*1000:9.3f} ms "
            f"({share:5.1f}%)  total {row['total_s']*1000:9.3f} ms  "
            f"x{row['count']}"
        )
        if row.get("steps"):
            line += f"  {row['steps']} steps"
        lines.append(line)
    dropped = len(rows) - len(shown)
    if dropped > 0:
        lines.append(f"  ... {dropped} more row(s); use --top to widen")
    return lines


def render(report: Dict[str, Any], top: Optional[int]) -> str:
    """The text rendering: components, hottest span names, properties."""
    lines = [f"trace: {report['spans']} span(s)"]
    lines.extend(_format_table("components", report["components"], None))
    lines.extend(_format_table("span names", report["names"], top))
    if report["properties"]:
        lines.extend(_format_table("PSL properties", report["properties"], top))
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry: fold trace file(s), print the ranked tables."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("traces", nargs="+", metavar="TRACE.jsonl")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="rows per detail table (default 10; components always full)",
    )
    options = parser.parse_args(argv)
    try:
        spans = load_spans(options.traces)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    report = fold(spans)
    try:
        if options.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(render(report, options.top))
    except BrokenPipeError:
        # `trace_report ... | head` closing the pipe early is fine
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
