"""The built-in repo lint checks beyond docstrings.

``lint.monitor-construction``
    PR 8 made :func:`repro.psl.compile_properties` the single monitor
    construction API; direct ``Monitor`` subclass instantiation
    outside ``src/repro/psl/`` bypasses the engine selection, the
    shared-automaton cache and the deprecation shim.
``lint.wall-clock``
    Digest-bearing code must not read the wall clock: ``time.time``,
    ``time.localtime``/``ctime`` and ``datetime.now``/``utcnow``/
    ``today`` make output run-dependent.  ``perf_counter`` (duration
    measurement, reported as metrics only) stays allowed.
``lint.wire-parity``
    A class with both ``to_json`` and ``from_json`` must read only
    fields it writes: ``from_json`` consuming a key ``to_json`` never
    emits is a wire-contract break that serial/sharded/remote
    equivalence tests would hit only on the failing path.

All checks walk the AST of ``src/repro`` -- tests and benchmarks are
free to construct monitors or read clocks directly.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Set

from .registry import Finding, register, repo_relative

_BANNED_TIME_ATTRS = {"time", "localtime", "ctime"}
_BANNED_DATETIME_ATTRS = {"now", "utcnow", "today"}


def _source_files(root: Path) -> List[Path]:
    return sorted((root / "src" / "repro").rglob("*.py"))


def _monitor_class_names(root: Path) -> Set[str]:
    """Monitor subclasses defined in the PSL package (transitively)."""
    names: Set[str] = {"Monitor"}
    parents: Dict[str, Set[str]] = {}
    for path in sorted((root / "src" / "repro" / "psl").glob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                bases = set()
                for base in node.bases:
                    if isinstance(base, ast.Name):
                        bases.add(base.id)
                    elif isinstance(base, ast.Attribute):
                        bases.add(base.attr)
                parents[node.name] = bases
    changed = True
    while changed:
        changed = False
        for name, bases in parents.items():
            if name not in names and bases & names:
                names.add(name)
                changed = True
    return names


@register(
    "lint.monitor-construction",
    "monitors are built via compile_properties, not constructed directly",
)
def lint_monitor_construction(root: Path) -> List[Finding]:
    """Flag Monitor-subclass instantiation outside ``src/repro/psl``."""
    monitor_names = _monitor_class_names(root)
    findings: List[Finding] = []
    psl_dir = (root / "src" / "repro" / "psl").resolve()
    for path in _source_files(root):
        if psl_dir in path.resolve().parents:
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            if name in monitor_names:
                findings.append(Finding(
                    rule="lint.monitor-construction",
                    severity="error",
                    path=repo_relative(path, root),
                    line=node.lineno,
                    message=(
                        f"direct {name}(...) construction bypasses "
                        f"repro.psl.compile_properties (the single monitor "
                        f"construction API since PR 8)"
                    ),
                ))
    return findings


class _ClockImports(ast.NodeVisitor):
    """Collect how a module can reach the wall clock."""

    def __init__(self) -> None:
        self.time_aliases: Set[str] = set()
        self.datetime_aliases: Set[str] = set()
        self.banned_names: Set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "time":
                self.time_aliases.add(alias.asname or "time")
            elif alias.name == "datetime":
                self.datetime_aliases.add(alias.asname or "datetime")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _BANNED_TIME_ATTRS:
                    self.banned_names.add(alias.asname or alias.name)
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self.datetime_aliases.add(alias.asname or alias.name)


@register(
    "lint.wall-clock",
    "digest-bearing code never reads the wall clock (perf_counter is fine)",
)
def lint_wall_clock(root: Path) -> List[Finding]:
    """Flag wall-clock reads anywhere under ``src/repro``."""
    findings: List[Finding] = []
    for path in _source_files(root):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        imports = _ClockImports()
        imports.visit(tree)
        if not (
            imports.time_aliases
            or imports.datetime_aliases
            or imports.banned_names
        ):
            continue
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            flagged: Optional[str] = None
            if isinstance(func, ast.Name) and func.id in imports.banned_names:
                flagged = func.id
            elif isinstance(func, ast.Attribute):
                value = func.value
                if (
                    isinstance(value, ast.Name)
                    and value.id in imports.time_aliases
                    and func.attr in _BANNED_TIME_ATTRS
                ):
                    flagged = f"{value.id}.{func.attr}"
                elif func.attr in _BANNED_DATETIME_ATTRS:
                    base = value
                    while isinstance(base, ast.Attribute):
                        base = base.value
                    if (
                        isinstance(base, ast.Name)
                        and base.id in imports.datetime_aliases
                    ):
                        flagged = f"{base.id}...{func.attr}"
            if flagged is not None:
                findings.append(Finding(
                    rule="lint.wall-clock",
                    severity="error",
                    path=repo_relative(path, root),
                    line=node.lineno,
                    message=(
                        f"wall-clock call {flagged}() in library code; "
                        f"digested output must not depend on the clock "
                        f"(use perf_counter for durations, and keep them "
                        f"in metrics)"
                    ),
                ))
    return findings


def _to_json_keys(fn: ast.FunctionDef) -> Set[str]:
    """String keys ``to_json`` emits: returned dict literals' top-level
    keys plus ``doc["key"] = ...`` item assignments."""
    keys: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.add(target.slice.value)
    return keys


def _from_json_reads(fn: ast.FunctionDef) -> Dict[str, int]:
    """Keys ``from_json`` reads off its document parameter -> line."""
    args = fn.args.args
    if len(args) < 2:  # (cls/self, doc)
        return {}
    doc_name = args[1].arg
    reads: Dict[str, int] = {}
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == doc_name
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            reads.setdefault(node.slice.value, node.lineno)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == doc_name
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            reads.setdefault(node.args[0].value, node.lineno)
    return reads


@register(
    "lint.wire-parity",
    "from_json reads only fields the paired to_json writes",
)
def lint_wire_parity(root: Path) -> List[Finding]:
    """Flag wire-form classes whose reader expects unwritten fields."""
    findings: List[Finding] = []
    for path in _source_files(root):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                n.name: n for n in node.body if isinstance(n, ast.FunctionDef)
            }
            to_json = methods.get("to_json")
            from_json = methods.get("from_json")
            if to_json is None or from_json is None:
                continue
            written = _to_json_keys(to_json)
            if not written:
                continue  # emitted indirectly; nothing to compare against
            for key, lineno in sorted(_from_json_reads(from_json).items()):
                if key not in written:
                    findings.append(Finding(
                        rule="lint.wire-parity",
                        severity="error",
                        path=repo_relative(path, root),
                        line=lineno,
                        message=(
                            f"{node.name}.from_json reads field {key!r} "
                            f"that {node.name}.to_json never writes"
                        ),
                    ))
    return findings
