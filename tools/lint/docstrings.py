"""Public-API docstring check (stdlib-only core; no pydocstyle here).

Walks the audited packages with :mod:`ast` and reports every public
definition missing a docstring -- modules, module-level classes and
functions, and public methods of public classes.  "Public" means the
name has no leading underscore; nodes with a bare ``...`` body
(Protocol members) or an ``# nodoc:`` comment on the ``def`` line are
exempt.

This is the first registered check of the :mod:`tools.lint` framework
(rule id ``lint.docstring``); ``tools/check_docstrings.py`` remains as
a thin back-compat entry point over the same functions, so the
historical ``python tools/check_docstrings.py`` invocation and its
output format keep working.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

from .registry import REPO_ROOT, Finding, register, repo_relative

#: The audited public surface: packages (recursive) and single modules
#: under ``src/repro``.
AUDITED = (
    "analyze",
    "checkpoint",
    "dispatch",
    "coordinator",
    "obs",
    "workbench/session.py",
    "workbench/engines.py",
    "scenarios/directed.py",
    "psl/compiled.py",
    "cliutil.py",
)


def audited_files() -> List[Path]:
    """Every Python file under the audited packages/modules."""
    base = REPO_ROOT / "src" / "repro"
    files: List[Path] = []
    for entry in AUDITED:
        path = base / entry
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _suppressed(node: ast.AST, source_lines: List[str]) -> bool:
    """``# nodoc:`` on the def/class line opts a definition out."""
    line = source_lines[node.lineno - 1]
    return "# nodoc:" in line


def _ellipsis_body(node: ast.AST) -> bool:
    """Protocol/overload stubs whose whole body is ``...``."""
    body = getattr(node, "body", [])
    return (
        len(body) == 1
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and body[0].value.value is Ellipsis
    )


def _missing_in_class(
    cls: ast.ClassDef, source_lines: List[str]
) -> Iterator[Tuple[int, str, str]]:
    for node in cls.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_public(node.name):
            continue
        if ast.get_docstring(node) is not None:
            continue
        if _ellipsis_body(node) or _suppressed(node, source_lines):
            continue
        yield node.lineno, "method", f"{cls.name}.{node.name}"


def check_file(path: Path) -> List[Tuple[int, str, str]]:
    """All missing public docstrings in one file, as (line, kind, name)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    source_lines = source.splitlines()
    missing: List[Tuple[int, str, str]] = []
    if ast.get_docstring(tree) is None:
        missing.append((1, "module", path.stem))
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if (
                _is_public(node.name)
                and ast.get_docstring(node) is None
                and not _ellipsis_body(node)
                and not _suppressed(node, source_lines)
            ):
                missing.append((node.lineno, "function", node.name))
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            if ast.get_docstring(node) is None and not _suppressed(
                node, source_lines
            ):
                missing.append((node.lineno, "class", node.name))
            missing.extend(_missing_in_class(node, source_lines))
    return missing


@register("lint.docstring", "public API definitions carry docstrings")
def lint_docstrings(root: Path) -> List[Finding]:
    """The registry adapter: audited omissions as typed findings."""
    findings: List[Finding] = []
    for path in audited_files():
        for lineno, kind, name in check_file(path):
            findings.append(Finding(
                rule="lint.docstring",
                severity="error",
                path=repo_relative(path, root),
                line=lineno,
                message=f"undocumented public {kind} {name}",
            ))
    return findings


def main(argv=None) -> int:
    """Gate the audited files; print one line per missing docstring."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--list", action="store_true", help="print the audited files and exit"
    )
    options = parser.parse_args(argv)
    files = audited_files()
    if options.list:
        for path in files:
            print(path.relative_to(REPO_ROOT))
        return 0
    failures = 0
    checked = 0
    for path in files:
        checked += 1
        for lineno, kind, name in check_file(path):
            failures += 1
            print(
                f"{path.relative_to(REPO_ROOT)}:{lineno}: "
                f"undocumented public {kind} {name}"
            )
    if failures:
        print(
            f"\ndocstring gate FAILED: {failures} undocumented public "
            f"definition(s) across {checked} audited file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"docstring gate OK: {checked} audited file(s), all public API documented")
    return 0
