"""The repo lint registry: rule id -> AST check, one findings pipeline.

Checks register themselves with :func:`register` and produce the same
typed :class:`~repro.analyze.findings.Finding`s as the model analyzer,
so repo lint, race detection and property lint all fold into the one
deterministic report shape, share the ``# repro: allow[rule-id]``
suppression syntax, and gate the same way (zero unsuppressed
findings).  Run the whole registry with ``python -m tools.lint`` from
the repo root, or programmatically via :func:`run_checks`.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parents[2]

_SRC = REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analyze.findings import (  # noqa: E402  (path bootstrap above)
    AnalysisReport,
    Finding,
    apply_suppressions,
)

#: rule id -> (description, check function taking the repo root)
CheckFn = Callable[[Path], List[Finding]]
_CHECKS: Dict[str, Tuple[str, CheckFn]] = {}


def register(rule: str, description: str) -> Callable[[CheckFn], CheckFn]:
    """Decorator: register ``fn(root) -> findings`` under ``rule``."""

    def decorate(fn: CheckFn) -> CheckFn:
        _CHECKS[rule] = (description, fn)
        return fn

    return decorate


def _load_builtin_checks() -> None:
    """Import the modules whose import side effect is registration."""
    from . import checks, docstrings  # noqa: F401


def registered_checks() -> Dict[str, str]:
    """rule id -> one-line description, for ``--list``."""
    _load_builtin_checks()
    return {rule: desc for rule, (desc, _) in sorted(_CHECKS.items())}


def run_checks(
    root: Optional[Path] = None, rules: Optional[Sequence[str]] = None
) -> AnalysisReport:
    """Run the registered checks (all, or the ``rules`` subset).

    Findings pass through the shared inline-suppression scan, so a
    ``# repro: allow[lint.<rule>] reason`` comment on (or above) the
    flagged line documents an intentional exception, exactly as for
    model findings.
    """
    _load_builtin_checks()
    base = (root or REPO_ROOT).resolve()
    selected = sorted(rules) if rules else sorted(_CHECKS)
    findings: List[Finding] = []
    for rule in selected:
        if rule not in _CHECKS:
            raise KeyError(
                f"unknown lint rule {rule!r}; registered: "
                f"{', '.join(sorted(_CHECKS))}"
            )
        findings.extend(_CHECKS[rule][1](base))
    sources: Dict[str, List[str]] = {}
    for finding in findings:
        if finding.path not in sources:
            candidate = base / finding.path
            if candidate.is_file():
                sources[finding.path] = candidate.read_text(
                    encoding="utf-8"
                ).splitlines()
    findings = apply_suppressions(findings, sources)
    return AnalysisReport(
        findings=findings, facts={"checks": selected, "root": str(base)}
    )


def repo_relative(path: Path, root: Optional[Path] = None) -> str:
    """Repo-relative POSIX path for a finding (checks all report so)."""
    base = (root or REPO_ROOT).resolve()
    try:
        return path.resolve().relative_to(base).as_posix()
    except ValueError:
        return path.as_posix()
