"""``python -m tools.lint`` -- run the repo lint gate."""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .registry import registered_checks, run_checks


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the registered checks; exit 0 iff no unsuppressed finding."""
    parser = argparse.ArgumentParser(
        prog="tools.lint", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--list", action="store_true", help="print registered rules and exit"
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable output"
    )
    options = parser.parse_args(argv)
    if options.list:
        for rule, description in registered_checks().items():
            print(f"{rule:<28} {description}")
        return 0
    report = run_checks(rules=options.rule)
    if options.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
