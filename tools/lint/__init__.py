"""Repo lint framework: registered AST checks over the codebase.

Generalizes the original ``tools/check_docstrings.py`` gate into a
registry of typed-finding checks sharing the analyzer's report and
suppression pipeline::

    python -m tools.lint            # run every check, gate on clean
    python -m tools.lint --list     # show the registered rules
    python -m tools.lint --json     # machine-readable report

Registered rules: ``lint.docstring``, ``lint.monitor-construction``,
``lint.wall-clock``, ``lint.wire-parity`` (see :mod:`.docstrings` and
:mod:`.checks`).
"""

from .registry import REPO_ROOT, register, registered_checks, run_checks

__all__ = ["REPO_ROOT", "register", "registered_checks", "run_checks"]
