"""Repo maintenance tooling (lint framework, trace reports, gates)."""
