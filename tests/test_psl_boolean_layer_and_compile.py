"""Tests for the typed Boolean layer, SignalHistory, and the
expression compiler (compiled-vs-interpreted equivalence)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.asm import Bit, BitVector
from repro.psl import (
    EvalContext,
    PslBit,
    PslBitVector,
    PslBoolean,
    PslEvaluationError,
    PslNumeric,
    PslString,
    PslTypeError,
    SignalHistory,
    coerce,
    parse_bool,
)
from repro.psl.compile_ import compile_bool, compile_expr


class TestTypedLayer:
    def test_boolean_ops(self):
        assert PslBoolean(True).land(PslBoolean(False)) == PslBoolean(False)
        assert PslBoolean(False).lor(PslBoolean(True)) == PslBoolean(True)
        assert PslBoolean(False).lnot() == PslBoolean(True)
        assert PslBoolean(False).implies(PslBoolean(False)) == PslBoolean(True)
        assert PslBoolean(True).iff(PslBoolean(True)) == PslBoolean(True)

    def test_boolean_coercion_limits(self):
        assert PslBoolean(1).value is True
        with pytest.raises(PslTypeError):
            PslBoolean("yes")
        with pytest.raises(PslTypeError):
            PslBoolean(2)

    def test_bit_algebra(self):
        assert PslBit(1).band(PslBit(0)) == PslBit(0)
        assert PslBit(1).bor(PslBit(0)) == PslBit(1)
        assert PslBit(1).bxor(PslBit(1)) == PslBit(0)
        assert PslBit(0).bnot() == PslBit(1)

    def test_bitvector_wrappers(self):
        vector = PslBitVector(BitVector("1010"))
        assert vector.width == 4
        assert vector.countones() == PslNumeric(2)
        assert vector.onehot() == PslBoolean(False)
        assert vector.bit(0) == PslBit(1)
        joined = vector.concat(PslBitVector(BitVector("1")))
        assert joined.width == 5

    def test_numeric(self):
        assert PslNumeric(2).add(PslNumeric(3)) == PslNumeric(5)
        assert PslNumeric(2).less(PslNumeric(3)) == PslBoolean(True)
        with pytest.raises(PslTypeError):
            PslNumeric(True)

    def test_string(self):
        assert PslString("a").concat(PslString("b")) == PslString("ab")
        with pytest.raises(PslTypeError):
            PslString(3)

    def test_coerce_dispatch(self):
        assert isinstance(coerce(True), PslBoolean)
        assert isinstance(coerce(Bit(1)), PslBit)
        assert isinstance(coerce(BitVector("01")), PslBitVector)
        assert isinstance(coerce(5), PslNumeric)
        assert isinstance(coerce("x"), PslString)
        with pytest.raises(PslTypeError):
            coerce(object())


class TestSignalHistory:
    def test_record_and_access(self):
        history = SignalHistory("req")
        history.record(False)
        history.record(True)
        assert history.current() is True
        assert history.prev() is False
        assert history.rose()
        assert not history.fell()
        assert not history.stable()

    def test_prev_depth(self):
        history = SignalHistory("v")
        for value in (1, 2, 3):
            history.record(value)
        assert history.prev(2) == 1
        with pytest.raises(PslEvaluationError):
            history.prev(5)

    def test_next_with_preloaded_trace(self):
        history = SignalHistory("v")
        history.load([10, 20, 30])
        assert history.current() == 10
        assert history.next() == 20
        history.seek(2)
        assert history.current() == 30
        with pytest.raises(PslEvaluationError):
            history.next()

    def test_first_cycle_edges_false(self):
        history = SignalHistory("v")
        history.record(True)
        assert not history.rose()
        assert not history.fell()
        assert not history.stable()

    def test_empty_history_raises(self):
        with pytest.raises(PslEvaluationError):
            SignalHistory("v").current()

    def test_seek_bounds(self):
        history = SignalHistory("v")
        history.record(1)
        with pytest.raises(PslEvaluationError):
            history.seek(5)


NAMES = ("a", "b", "count")

letters = st.fixed_dictionaries(
    {"a": st.booleans(), "b": st.booleans(), "count": st.integers(0, 7)}
)
histories = st.lists(letters, min_size=1, max_size=4)

def _implies_ab():
    return parse_bool("a").implies(parse_bool("b"))


def _iff_ab():
    return parse_bool("a").iff(parse_bool("b"))


EXPRESSIONS = [
    "a", "!a", "a && b", "a || b", "a ^ b",
    "count == 3", "count + 1 > 2", "count * 2 <= 14", "count % 2 == 0",
    "rose(a)", "fell(b)", "stable(count)", "prev(count) == count",
    "prev(count, 2) < count", "rose(a) && !fell(b)", "true", "false",
    # implication/equivalence live in the Boolean layer too (paper
    # Section 2.1.2) but are spelled at the FL level in concrete
    # syntax, so we build them through the node API:
    _implies_ab, _iff_ab,
]


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(EXPRESSIONS), histories)
def test_compiled_matches_interpreter(text, history):
    expression = text() if callable(text) else parse_bool(text)
    compiled = compile_bool(expression)
    # interpreter reference: evaluate at the last position with the
    # same missing-value conventions
    try:
        expected = bool(
            expression.eval_bool(EvalContext(history, len(history) - 1))
        )
    except PslEvaluationError:
        expected = False
    assert compiled(history) == expected, text


def test_compiler_fallback_on_exotic_nodes():
    expression = parse_bool("isunknown(zz)")
    compiled = compile_expr(expression)
    assert compiled([{"a": 1}]) is True  # zz missing -> unknown


def test_compiled_missing_signal_is_false():
    compiled = compile_bool(parse_bool("ghost && a"))
    assert compiled([{"a": True}]) is False


def test_prev_with_nonconstant_depth_falls_back():
    expression = parse_bool("prev(count, count) == 0")
    compiled = compile_expr(expression)  # must not crash at build time
    assert callable(compiled)
