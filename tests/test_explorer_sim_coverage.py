"""Tests for FSM coverage of simulation runs (the Section 4.3 bridge)."""

import pytest

from repro.asm import AsmModel
from repro.explorer import CoverageTracker, ExplorationConfig, explore
from repro.translate import RandomPolicy, build_runtime
from conftest import ToyArbiter, ToyMaster


def build_model() -> AsmModel:
    model = AsmModel("bus")
    ToyMaster(model=model, name="m0")
    ToyMaster(model=model, name="m1")
    ToyArbiter(model=model, name="arbiter")
    model.seal()
    return model


class TestEmptyUniverse:
    def test_empty_fsm_is_vacuously_covered(self):
        # 0.0 for an empty universe made Workbench/CoverageFeedback
        # apply residue pressure to a design with nothing to cover;
        # the contract now matches BinCoverage.ratio and CoverageResidue
        from repro.explorer.fsm import Fsm
        from repro.explorer.sim_coverage import SimCoverage

        coverage = SimCoverage(Fsm("empty"))
        assert coverage.state_coverage == 1.0
        assert coverage.transition_coverage == 1.0


class TestCoverageTracker:
    def run_covered(self, cycles: int, seed: int = 5):
        exploration = explore(build_model())
        sim_model = build_model()
        simulator, clock, module = build_runtime(
            sim_model, policy=RandomPolicy(seed)
        )
        simulator.run(clock.period * cycles)
        tracker = CoverageTracker(exploration.fsm, build_model())
        return tracker.observe_run(module), exploration

    def test_initial_state_always_covered(self):
        coverage, _ = self.run_covered(cycles=1)
        initial = [s.index for s in coverage.fsm.initial_states()]
        assert set(initial) <= coverage.visited_states

    def test_coverage_grows_with_cycles(self):
        short, _ = self.run_covered(cycles=5)
        long, _ = self.run_covered(cycles=400)
        assert long.state_coverage >= short.state_coverage
        assert long.transition_coverage > 0

    def test_simulation_stays_on_fsm(self):
        """Complete exploration: every simulated state is an FSM node."""
        coverage, exploration = self.run_covered(cycles=300)
        assert exploration.stats.completed
        assert coverage.off_fsm_states == 0

    def test_long_run_covers_most_states(self):
        coverage, _ = self.run_covered(cycles=2000)
        assert coverage.state_coverage > 0.8

    def test_uncovered_listings_consistent(self):
        coverage, _ = self.run_covered(cycles=50)
        assert (
            len(coverage.uncovered_states()) + len(coverage.visited_states)
            == coverage.fsm.state_count()
        )
        assert (
            len(coverage.uncovered_transitions())
            + len(coverage.exercised_transitions)
            == coverage.fsm.transition_count()
        )

    def test_summary_text(self):
        coverage, _ = self.run_covered(cycles=50)
        text = coverage.summary()
        assert "states" in text and "transitions" in text

    def test_coverage_against_property_annotated_fsm(self):
        """FSMs generated WITH properties still accept coverage from a
        monitor-less simulation (property bits are ignored)."""
        from repro.psl import AssertionProperty, parse_formula

        prop = AssertionProperty(
            parse_formula("never (m0.m_gnt && m1.m_gnt)"), name="mutex"
        )
        exploration = explore(
            build_model(), ExplorationConfig(properties=[prop])
        )
        sim_model = build_model()
        simulator, clock, module = build_runtime(
            sim_model, policy=RandomPolicy(11)
        )
        simulator.run(clock.period * 200)
        tracker = CoverageTracker(exploration.fsm, build_model())
        coverage = tracker.observe_run(module)
        assert coverage.state_coverage > 0.3
