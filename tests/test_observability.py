"""The tracing + metrics layer: spans, counters, digest invariance.

Three contracts under test:

* the :mod:`repro.obs` primitives themselves (tracer nesting, JSONL
  round trip, fixed-bucket histogram merging),
* the instrumentation woven through kernel / monitors / scenarios /
  dispatch (right spans, right attribution, fleet metrics fold),
* the hard one -- **report digests are byte-identical with
  observability on or off**, serial, sharded and over live HTTP
  workers.
"""

import json
import sys
import urllib.request
from pathlib import Path

import pytest

from repro.abv import AbvHarness
from repro.dispatch import FAILURE_KINDS, HostFailure, ShardDispatcher
from repro.dispatch.http_host import _transport_kind, parse_hosts
from repro.dispatch.worker import start_worker
from repro.obs import (
    OBS,
    MetricsRegistry,
    NullTracer,
    Tracer,
    enable_metrics,
    enable_tracing,
    merge_metric_docs,
    metric_name,
    render_metrics,
)
from repro.obs import runtime
from repro.psl import build_monitor
from repro.models.pci import PciSystemModel
from repro.models.pci.properties import pci_safety_properties
from repro.scenarios import build_specs
from repro.scenarios.regression import RegressionRunner
from repro.workbench import Workbench, default_registry

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with observability disabled."""
    runtime.disable()
    yield
    runtime.disable()


def _trace_report():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import trace_report
    finally:
        sys.path.pop(0)
    return trace_report


class TestTracer:
    def test_nesting_records_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer", "t") as outer:
            with tracer.span("inner", "t") as inner:
                assert tracer.current_span_id() == inner.span_id
        spans = tracer.spans()
        by_name = {s.name: s for s in spans}
        assert by_name["inner"].parent_id == outer.span_id
        assert by_name["outer"].parent_id is None

    def test_attrs_and_exception_capture(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom", "t", seed=7) as span:
                span.set(extra=1)
                raise ValueError("nope")
        (span,) = tracer.spans()
        assert span.attrs["seed"] == 7
        assert span.attrs["extra"] == 1
        assert "ValueError" in span.attrs["error"]

    def test_record_synthesizes_parented_span(self):
        tracer = Tracer()
        with tracer.span("parent", "t") as parent:
            pass
        tracer.record("child", "t", 0.25, parent_id=parent.span_id, steps=3)
        child = [s for s in tracer.spans() if s.name == "child"][0]
        assert child.parent_id == parent.span_id
        assert child.duration_s == pytest.approx(0.25)
        assert child.attrs["steps"] == 3

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", "t", k="v"):
            pass
        path = tmp_path / "trace.jsonl"
        count = tracer.dump(path)
        assert count == 1
        doc = json.loads(path.read_text().strip())
        assert doc["name"] == "a"
        assert doc["component"] == "t"
        assert doc["attrs"] == {"k": "v"}
        assert doc["parent_id"] is None

    def test_null_tracer_is_inert(self, tmp_path):
        tracer = NullTracer()
        with tracer.span("x", "t") as span:
            span.set(ignored=True)
        assert tracer.spans() == []
        assert tracer.current_span_id() is None
        assert tracer.dump(tmp_path / "empty.jsonl") == 0


class TestMetrics:
    def test_counter_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("hits", host="a").inc()
        registry.counter("hits", host="a").inc(2)
        registry.counter("hits", host="b").inc()
        doc = registry.to_json()
        assert doc["counters"][metric_name("hits", host="a")] == 3
        assert doc["counters"][metric_name("hits", host="b")] == 1

    def test_histogram_buckets_are_deterministic(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", edges=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0, 0.5):
            hist.observe(value)
        doc = registry.to_json()["histograms"]["lat"]
        assert doc["buckets"] == [1, 2, 1]
        assert doc["count"] == 4
        assert doc["sum"] == pytest.approx(6.05)

    def test_merge_sums_elementwise(self):
        docs = []
        for values in ((0.05, 0.5), (5.0,)):
            registry = MetricsRegistry()
            registry.counter("n").inc(len(values))
            hist = registry.histogram("lat", edges=(0.1, 1.0))
            for value in values:
                hist.observe(value)
            docs.append(registry.to_json())
        merged = merge_metric_docs(docs)
        assert merged["counters"]["n"] == 3
        assert merged["histograms"]["lat"]["buckets"] == [1, 1, 1]
        assert merged["histograms"]["lat"]["count"] == 3

    def test_merge_rejects_mismatched_edges(self):
        a = MetricsRegistry()
        a.histogram("lat", edges=(0.1,)).observe(1)
        b = MetricsRegistry()
        b.histogram("lat", edges=(0.2,)).observe(1)
        with pytest.raises(ValueError):
            merge_metric_docs([a.to_json(), b.to_json()])

    def test_render_is_stable_text(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        text = render_metrics(registry.to_json())
        assert text.index("a 2") < text.index("b 1")


class TestRuntime:
    def test_disabled_by_default(self):
        assert OBS.enabled is False
        assert isinstance(OBS.tracer, NullTracer)
        assert OBS.metrics.enabled is False

    def test_enable_is_idempotent(self):
        enable_tracing()
        tracer = OBS.tracer
        enable_tracing()
        assert OBS.tracer is tracer
        assert OBS.enabled is True

    def test_metrics_only_still_null_tracer(self):
        enable_metrics()
        assert OBS.enabled is True
        assert isinstance(OBS.tracer, NullTracer)
        assert OBS.metrics.enabled is True


class TestKernelAndMonitorSpans:
    def _simulate(self, cycles=150):
        system = PciSystemModel(1, 1, seed=11)
        harness = AbvHarness(system.simulator, system.clock, system.letter)
        harness.add_monitors(
            [build_monitor(d) for d in pci_safety_properties(1, 1)[:3]]
        )
        system.run_cycles(cycles)
        harness.finish()
        return system

    def test_kernel_span_carries_delta_counters(self):
        enable_tracing()
        self._simulate()
        runs = [s for s in OBS.tracer.spans() if s.name == "sysc.kernel.run"]
        assert runs
        span = runs[0]
        assert span.component == "sysc.kernel"
        assert span.attrs["delta_cycles"] > 0
        assert span.attrs["process_runs"] > 0
        assert 0.0 <= span.attrs["livelock_proximity"] <= 1.0

    def test_monitor_spans_attribute_properties_under_kernel(self):
        enable_tracing()
        system = self._simulate()
        spans = OBS.tracer.spans()
        kernel_id = system.simulator.last_run_span_id
        monitor_spans = [s for s in spans if s.component == "psl.monitor"]
        assert len(monitor_spans) == 3
        for span in monitor_spans:
            assert span.parent_id == kernel_id
            assert span.attrs["property"]
            assert span.attrs["steps"] > 0
            assert span.attrs["verdict"]

    def test_monitor_step_counts_disabled_path_untouched(self):
        system = self._simulate()
        assert system.simulator.last_run_span_id is None


class TestDigestInvariance:
    CYCLES = 120
    COUNT = 6

    def _serial_digest(self):
        specs = build_specs(count=self.COUNT, cycles=self.CYCLES)
        return RegressionRunner(specs, workers=1).run().digest()

    def test_serial_tracing_and_metrics(self):
        plain = self._serial_digest()
        enable_tracing()
        enable_metrics()
        assert self._serial_digest() == plain
        assert OBS.tracer.spans()

    def test_sharded_dispatch_with_tracing(self):
        plain = self._serial_digest()
        enable_tracing()
        enable_metrics()
        specs = build_specs(count=self.COUNT, cycles=self.CYCLES)
        outcome = ShardDispatcher(specs, shards=3).run()
        assert outcome.report.digest() == plain
        names = {s.name for s in OBS.tracer.spans()}
        assert "dispatch.run" in names
        assert any(name.startswith("dispatch.shard/") for name in names)

    def test_http_hosts_with_metrics(self):
        plain = self._serial_digest()
        workers = [start_worker(), start_worker()]
        try:
            hosts = parse_hosts(
                ",".join(w.address for w in workers), timeout=30.0
            )
            enable_tracing()
            enable_metrics()
            specs = build_specs(count=self.COUNT, cycles=self.CYCLES)
            outcome = ShardDispatcher(specs, shards=2, hosts=hosts).run()
        finally:
            for worker in workers:
                worker.stop()
        assert outcome.report.digest() == plain
        assert outcome.host_metrics
        merged = merge_metric_docs(outcome.host_metrics.values())
        assert merged["counters"]["worker.scenarios_run"] == self.COUNT

    def test_close_coverage_session_digest(self):
        registry = default_registry()

        def run_close(trace):
            if trace:
                enable_tracing()
                enable_metrics()
            try:
                bench = Workbench(registry.get("master_slave"), seed=2005)
                bench.close_coverage(rounds=1, cycles=140)
                return bench.report()
            finally:
                runtime.disable()

        plain = run_close(False)
        traced = run_close(True)
        assert traced.digest() == plain.digest()
        assert "metrics" in traced.observability
        assert plain.observability == {}


class TestCliFlags:
    def test_trace_and_metrics_flags(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        trace_path = tmp_path / "run.jsonl"
        code = repro_main(
            ["regress", "--model", "pci", "--scenarios", "3",
             "--cycles", "100", "--workers", "1", "--json",
             "--trace", str(trace_path), "--metrics"]
        )
        captured = capsys.readouterr()
        assert code == 0
        doc = json.loads(captured.out)  # stdout is exactly one report
        assert "metrics" in doc["observability"]
        assert "trace:" in captured.err
        assert "=== metrics ===" in captured.err
        assert trace_path.exists()
        lines = trace_path.read_text().strip().splitlines()
        assert all(json.loads(line)["span_id"] for line in lines)
        # the scope tears down: the next command must start clean
        assert OBS.enabled is False

    def test_scenarios_cli_accepts_flags(self, tmp_path, capsys):
        from repro.scenarios.regression import main as regression_main

        trace_path = tmp_path / "scen.jsonl"
        code = regression_main(
            ["--scenarios", "3", "--cycles", "100", "--workers", "1",
             "--json", "--trace", str(trace_path)]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["digest"]
        assert trace_path.exists()

    def test_dispatch_facts_in_regress_json(self, capsys):
        from repro.cli import main as repro_main

        code = repro_main(
            ["regress", "--model", "pci", "--scenarios", "4",
             "--cycles", "100", "--shards", "2", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        facts = doc["stages"][0]["metrics"]["dispatch"]
        assert facts["schedule"] == "stealing"
        assert facts["duplicates"] == 0
        assert sum(facts["host_loads"].values()) == 2
        assert facts["failures"] == {}


class TestTraceReport:
    def _spans(self):
        return [
            {"span_id": 1, "parent_id": None, "name": "run",
             "component": "sysc.kernel", "start_s": 0.0, "duration_s": 1.0,
             "attrs": {}},
            {"span_id": 2, "parent_id": 1, "name": "psl.monitor/p",
             "component": "psl.monitor", "start_s": 0.1, "duration_s": 0.7,
             "attrs": {"property": "p", "steps": 42}},
        ]

    def test_self_time_subtracts_children(self, tmp_path):
        trace_report = self._trace_report()
        path = tmp_path / "t.jsonl"
        path.write_text(
            "\n".join(json.dumps(s) for s in self._spans()) + "\n"
        )
        report = trace_report.fold(trace_report.load_spans([str(path)]))
        by_name = {row["name"]: row for row in report["components"]}
        assert by_name["sysc.kernel"]["self_s"] == pytest.approx(0.3)
        assert by_name["psl.monitor"]["self_s"] == pytest.approx(0.7)
        # ranked by self time: the monitor leads
        assert report["components"][0]["name"] == "psl.monitor"
        (prop,) = report["properties"]
        assert prop["name"] == "p"
        assert prop["steps"] == 42

    def test_multi_file_ids_do_not_collide(self, tmp_path):
        trace_report = self._trace_report()
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        for path in (a, b):
            path.write_text(
                "\n".join(json.dumps(s) for s in self._spans()) + "\n"
            )
        spans = trace_report.load_spans([str(a), str(b)])
        assert len({s["span_id"] for s in spans}) == 4
        report = trace_report.fold(spans)
        by_name = {row["name"]: row for row in report["components"]}
        assert by_name["sysc.kernel"]["count"] == 2
        assert by_name["sysc.kernel"]["self_s"] == pytest.approx(0.6)

    _trace_report = staticmethod(_trace_report)


class TestFailureTaxonomy:
    def test_kind_table_is_closed(self):
        assert "refused" in FAILURE_KINDS
        assert "digest-mismatch" in FAILURE_KINDS
        failure = HostFailure("h", "s", "reason")
        assert failure.kind == "transport"

    def test_transport_kind_classification(self):
        import socket
        import urllib.error

        assert _transport_kind(ConnectionRefusedError()) == "refused"
        assert _transport_kind(ConnectionResetError()) == "reset"
        assert _transport_kind(socket.timeout()) == "timeout"
        assert (
            _transport_kind(urllib.error.URLError(ConnectionRefusedError()))
            == "refused"
        )
        assert _transport_kind(OSError("weird")) == "transport"

    def test_failure_counts_aggregate_per_host(self):
        class FlakyThenGood:
            """Fails its first shard with a classified kind, then works."""

            name = "flaky"

            def __init__(self):
                self.calls = 0

            def run_shard(self, work):
                self.calls += 1
                if self.calls == 1:
                    raise HostFailure(
                        self.name, work.shard.label, "boom", kind="reset"
                    )
                from repro.dispatch.hosts import InProcessHost

                return InProcessHost(name=self.name).run_shard(work)

        specs = build_specs(count=4, cycles=100)
        outcome = ShardDispatcher(
            specs, shards=2, hosts=[FlakyThenGood()], max_attempts=3
        ).run()
        counts = outcome.failure_counts()
        assert counts == {"flaky": {"reset": 1}}
        assert outcome.report.ok
        assert any("failure kinds" in line for line in outcome.log_lines())


class TestWorkerMetricsEndpoint:
    def test_metrics_shape_and_isolation(self):
        worker = start_worker()
        try:
            specs = build_specs(count=2, cycles=100)
            (host,) = parse_hosts(worker.address, timeout=30.0)
            outcome = ShardDispatcher(specs, hosts=[host], shards=1).run()
            with urllib.request.urlopen(
                f"http://{worker.address}/metrics", timeout=10
            ) as response:
                doc = json.loads(response.read())
        finally:
            worker.stop()
        assert doc["ok"] is True
        counters = doc["metrics"]["counters"]
        assert counters["worker.shards_served"] == 1
        assert counters["worker.scenarios_run"] == 2
        assert "worker.shard_seconds" in doc["metrics"]["histograms"]
        # the daemon's registry is its own: the process-global one
        # (disabled here) saw nothing
        assert OBS.metrics.to_json() == {"counters": {}, "histograms": {}}
        assert outcome.host_metrics[host.name]["counters"][
            "worker.shards_served"
        ] == 1


class TestFleetObservability:
    def test_session_report_fleet_section(self):
        workers = [start_worker(), start_worker()]
        try:
            hosts = parse_hosts(
                ",".join(w.address for w in workers), timeout=30.0
            )
            enable_metrics()
            registry = default_registry()
            bench = Workbench(registry.get("pci"), seed=2005)
            bench.regress(scenarios=6, cycles=100, hosts=hosts)
            report = bench.report()
        finally:
            for worker in workers:
                worker.stop()
        fleet = report.observability["fleet_metrics"]
        assert fleet and fleet[0]["stage"] == "regress"
        aggregate = fleet[0]["aggregate"]
        assert aggregate["counters"]["worker.scenarios_run"] == 6
        doc = report.to_json()
        assert "observability" in doc
        # and the digest ignores all of it
        assert report.digest() == report.digest()
