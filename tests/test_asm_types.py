"""Unit tests for AsmL basic types (rule R1's left column)."""

import pytest

from repro.asm import Bit, BitVector, Byte, DomainError, TypeMismatchError
from repro.asm.types import bounded_int_range, ensure_in_range


class TestBit:
    def test_values(self):
        assert Bit(0).value == 0
        assert Bit(1).value == 1
        assert Bit(True).value == 1
        assert Bit("0").value == 0

    def test_rejects_out_of_range(self):
        with pytest.raises(DomainError):
            Bit(2)
        with pytest.raises(DomainError):
            Bit("x")

    def test_boolean_algebra(self):
        assert (Bit(1) & Bit(0)) == Bit(0)
        assert (Bit(1) | Bit(0)) == Bit(1)
        assert (Bit(1) ^ Bit(1)) == Bit(0)
        assert ~Bit(0) == Bit(1)

    def test_equality_with_ints(self):
        assert Bit(1) == 1
        assert Bit(0) == False  # noqa: E712 -- exercising the comparison

    def test_hashable(self):
        assert len({Bit(0), Bit(1), Bit(0)}) == 2

    def test_truthiness(self):
        assert Bit(1)
        assert not Bit(0)


class TestBitVector:
    def test_from_int_with_width(self):
        vector = BitVector(0b1010, 4)
        assert vector.to_unsigned() == 10
        assert vector.width == 4
        assert vector.to_binary_string() == "1010"

    def test_from_binary_string(self):
        assert BitVector("0011").to_unsigned() == 3
        assert BitVector("0011").width == 4

    def test_from_bits(self):
        assert BitVector([1, 0, 1]).to_binary_string() == "101"

    def test_width_inference(self):
        assert BitVector(5).width == 3

    def test_value_too_wide(self):
        with pytest.raises(DomainError):
            BitVector(16, 4)

    def test_negative_rejected(self):
        with pytest.raises(DomainError):
            BitVector(-1)

    def test_indexing_msb_first(self):
        vector = BitVector("1010")
        assert vector[0] == Bit(1)
        assert vector[1] == Bit(0)

    def test_slicing(self):
        assert BitVector("110011")[0:3] == BitVector("110")

    def test_arithmetic_wraps(self):
        assert (BitVector("1111") + 1).to_unsigned() == 0
        assert (BitVector("0000") - 1).to_unsigned() == 15
        assert (BitVector("0011") * 2).to_unsigned() == 6

    def test_bitwise_requires_same_width(self):
        with pytest.raises(TypeMismatchError):
            BitVector("11") & BitVector("111")

    def test_bitwise_ops(self):
        assert (BitVector("1100") & BitVector("1010")) == BitVector("1000")
        assert (BitVector("1100") | BitVector("1010")) == BitVector("1110")
        assert (BitVector("1100") ^ BitVector("1010")) == BitVector("0110")
        assert ~BitVector("1100") == BitVector("0011")

    def test_shifts_preserve_width(self):
        assert (BitVector("0110") << 1) == BitVector("1100")
        assert (BitVector("0110") >> 1) == BitVector("0011")

    def test_concat(self):
        assert BitVector("10").concat(BitVector("01")) == BitVector("1001")

    def test_count_ones_and_onehot(self):
        assert BitVector("1010").count_ones() == 2
        assert BitVector("0100").is_onehot()
        assert not BitVector("0110").is_onehot()
        assert BitVector("0000").is_onehot0()
        assert not BitVector("0011").is_onehot0()

    def test_signed_interpretation(self):
        assert BitVector("1111").to_signed() == -1
        assert BitVector("0111").to_signed() == 7

    def test_comparisons(self):
        assert BitVector("0011") < BitVector("0100")
        assert BitVector("0011") <= 3
        assert BitVector("1000") > 7

    def test_equality_with_string(self):
        assert BitVector("101") == "101"

    def test_hashable(self):
        assert len({BitVector("01"), BitVector("01"), BitVector("10")}) == 2

    def test_iteration(self):
        assert [int(b) for b in BitVector("101")] == [1, 0, 1]


class TestByte:
    def test_range(self):
        assert Byte(0) == 0
        assert Byte(255) == 255

    def test_rejects_out_of_range(self):
        with pytest.raises(DomainError):
            Byte(256)
        with pytest.raises(DomainError):
            Byte(-1)

    def test_is_int(self):
        assert Byte(7) + 1 == 8


class TestRanges:
    def test_bounded_int_range_inclusive(self):
        assert list(bounded_int_range(1, 3)) == [1, 2, 3]

    def test_empty_range_rejected(self):
        with pytest.raises(DomainError):
            bounded_int_range(3, 1)

    def test_ensure_in_range(self):
        assert ensure_in_range(2, 0, 3) == 2
        with pytest.raises(DomainError):
            ensure_in_range(5, 0, 3, "index")
