"""Tests for the PCI ASM model, including the Figure 4 arbiter."""

import pytest

from repro.asm import ActionCall, RequirementFailure
from repro.explorer import ExplorationConfig, check_eventually, explore
from repro.psl import AssertionProperty
from repro.models.pci import (
    MasterState,
    TargetState,
    build_pci_model,
    grant_goal,
    pci_coarse_actions,
    pci_domains,
    pci_init_call,
    pci_letter_from_model,
    request_trigger,
)
from repro.models.pci.asm_model import PciArbiter, PciBus, PciMaster, PciTarget
from repro.models.pci.properties import (
    pci_invariant_properties,
    pci_timed_properties,
)


def init(model):
    model.execute(ActionCall("system", "init"))
    return model


class TestFigure4Arbiter:
    def test_update_m_req_requires_system_init(self):
        model = build_pci_model(1, 1)
        ok, _ = model.try_execute(ActionCall("arbiter", "update_m_req"))
        assert not ok  # SystemInit = false

    def test_update_m_req_requires_pending_request(self):
        model = init(build_pci_model(1, 1))
        ok, _ = model.try_execute(ActionCall("arbiter", "update_m_req"))
        assert not ok

    def test_min_id_master_selected(self):
        model = init(build_pci_model(3, 1))
        model.execute(ActionCall("master2", "request"))
        model.execute(ActionCall("master1", "request"))
        model.execute(ActionCall("arbiter", "update_m_req"))
        arbiter = model.machine("arbiter")
        assert arbiter.m_ActiveMaster == 1  # min id | m_req
        assert arbiter.m_req is True

    def test_no_double_latch(self):
        model = init(build_pci_model(2, 1))
        model.execute(ActionCall("master0", "request"))
        model.execute(ActionCall("arbiter", "update_m_req"))
        ok, _ = model.try_execute(ActionCall("arbiter", "update_m_req"))
        assert not ok  # me.m_req = false violated

    def test_grant_consumed_by_transaction_start(self):
        model = init(build_pci_model(1, 1))
        model.execute(ActionCall("master0", "request"))
        model.execute(ActionCall("arbiter", "update_m_req"))
        model.execute(ActionCall("arbiter", "grant"))
        arbiter = model.machine("arbiter")
        assert arbiter.m_gnt
        model.execute(ActionCall("master0", "start_transaction", (0, 1)))
        # FRAME# assertion consumes the grant (no stale-grant reuse)
        assert arbiter.m_ActiveMaster == -1 and not arbiter.m_gnt
        ok, _ = model.try_execute(ActionCall("arbiter", "reclaim"))
        assert not ok  # nothing left to reclaim

    def test_reclaim_after_aborted_grant(self):
        model = init(build_pci_model(2, 1))
        model.execute(ActionCall("master0", "request"))
        model.execute(ActionCall("arbiter", "update_m_req"))
        model.execute(ActionCall("arbiter", "grant"))
        # master0 never starts; simulate its request disappearing via a
        # full transaction of... instead directly check reclaim guard:
        # reclaim only fires when the latched master no longer requests
        ok, _ = model.try_execute(ActionCall("arbiter", "reclaim"))
        assert not ok  # master0 still requesting

    def test_hidden_arbitration(self):
        """Arbitration proceeds while master0's transaction still runs."""
        model = init(build_pci_model(2, 1))
        model.execute(ActionCall("master0", "request"))
        model.execute(ActionCall("arbiter", "update_m_req"))
        model.execute(ActionCall("arbiter", "grant"))
        model.execute(ActionCall("master0", "start_transaction", (0, 1)))
        model.execute(ActionCall("master1", "request"))
        bus = model.machine("bus")
        assert bus.m_frame  # transaction in progress
        model.execute(ActionCall("arbiter", "update_m_req"))
        model.execute(ActionCall("arbiter", "grant"))
        assert model.machine("arbiter").m_ActiveMaster == 1


class TestTransactionLifecycle:
    def run_transaction(self, model, master="master0", target=0, burst=1):
        model.execute(ActionCall(master, "request"))
        model.execute(ActionCall("arbiter", "update_m_req"))
        model.execute(ActionCall("arbiter", "grant"))
        model.execute(ActionCall(master, "start_transaction", (target, burst)))
        model.execute(ActionCall(f"target{target}", "claim"))
        model.execute(ActionCall(f"target{target}", "ready"))
        model.execute(ActionCall(master, "assert_irdy"))
        for _ in range(burst):
            model.execute(ActionCall(master, "data_phase"))
        model.execute(ActionCall(master, "finish"))
        model.execute(ActionCall(f"target{target}", "complete"))

    def test_full_read_cycle(self):
        model = init(build_pci_model(1, 1))
        self.run_transaction(model, burst=2)
        master = model.machine("master0")
        bus = model.machine("bus")
        target = model.machine("target0")
        assert master.m_state is MasterState.IDLE
        assert bus.m_owner == -1 and not bus.m_frame and not bus.m_irdy
        assert target.m_state is TargetState.IDLE

    def test_frame_drops_on_last_data_phase(self):
        model = init(build_pci_model(1, 1))
        model.execute(ActionCall("master0", "request"))
        model.execute(ActionCall("arbiter", "update_m_req"))
        model.execute(ActionCall("arbiter", "grant"))
        model.execute(ActionCall("master0", "start_transaction", (0, 2)))
        model.execute(ActionCall("target0", "claim"))
        model.execute(ActionCall("target0", "ready"))
        model.execute(ActionCall("master0", "assert_irdy"))
        bus = model.machine("bus")
        model.execute(ActionCall("master0", "data_phase"))
        assert bus.m_frame  # one word left
        model.execute(ActionCall("master0", "data_phase"))
        assert not bus.m_frame  # FRAME# falls with the last word

    def test_stop_and_retry(self):
        model = init(build_pci_model(1, 1))
        model.execute(ActionCall("master0", "request"))
        model.execute(ActionCall("arbiter", "update_m_req"))
        model.execute(ActionCall("arbiter", "grant"))
        model.execute(ActionCall("master0", "start_transaction", (0, 1)))
        model.execute(ActionCall("target0", "claim"))
        model.execute(ActionCall("target0", "stop_transaction"))
        target = model.machine("target0")
        assert target.m_stop and target.m_state is TargetState.STOPPED
        model.execute(ActionCall("master0", "handle_stop"))
        master = model.machine("master0")
        assert master.m_state is MasterState.IDLE
        assert master.m_retries == 1
        # target clears STOP# only after FRAME# released
        model.execute(ActionCall("target0", "clear_stop"))
        assert not target.m_stop and target.m_state is TargetState.IDLE

    def test_data_phase_requires_trdy(self):
        model = init(build_pci_model(1, 1))
        model.execute(ActionCall("master0", "request"))
        model.execute(ActionCall("arbiter", "update_m_req"))
        model.execute(ActionCall("arbiter", "grant"))
        model.execute(ActionCall("master0", "start_transaction", (0, 1)))
        model.execute(ActionCall("master0", "assert_irdy"))
        ok, _ = model.try_execute(ActionCall("master0", "data_phase"))
        assert not ok  # no DEVSEL/TRDY yet

    def test_second_master_cannot_steal_bus(self):
        model = init(build_pci_model(2, 1))
        model.execute(ActionCall("master0", "request"))
        model.execute(ActionCall("arbiter", "update_m_req"))
        model.execute(ActionCall("arbiter", "grant"))
        model.execute(ActionCall("master0", "start_transaction", (0, 1)))
        model.execute(ActionCall("master1", "request"))
        model.execute(ActionCall("arbiter", "update_m_req"))
        model.execute(ActionCall("arbiter", "grant"))
        ok, _ = model.try_execute(
            ActionCall("master1", "start_transaction", (0, 1))
        )
        assert not ok  # bus busy


class TestRuleCompliance:
    def test_init_verifies_instantiation(self):
        model = build_pci_model(2, 2)
        model.execute(ActionCall("system", "init"))
        assert model.get_global("system_init") is True

    def test_init_rejects_double_run(self):
        model = init(build_pci_model(1, 1))
        ok, _ = model.try_execute(ActionCall("system", "init"))
        assert not ok

    def test_rule_checker_clean(self):
        from repro.explorer import check_rules

        model = build_pci_model(2, 2)
        config = ExplorationConfig(
            domains=pci_domains(2), init_action=pci_init_call()
        )
        errors = [f for f in check_rules(model, config) if f.level == "error"]
        assert errors == []


class TestExploration:
    def explore_pci(self, masters, targets, coarse=True, props=True):
        model = build_pci_model(masters, targets)
        properties = []
        if props:
            properties = [
                AssertionProperty(
                    d.prop, extractor=pci_letter_from_model, name=d.prop.name
                )
                for d in pci_invariant_properties(masters, targets)
            ]
        config = ExplorationConfig(
            domains=pci_domains(targets),
            init_action=pci_init_call(),
            actions=pci_coarse_actions(masters, targets) if coarse else None,
            properties=properties,
            max_states=50_000,
            max_transitions=500_000,
        )
        return explore(model, config)

    def test_invariants_hold_1m_1s(self):
        result = self.explore_pci(1, 1)
        assert result.ok and result.stats.completed

    def test_invariants_hold_2m_2s(self):
        result = self.explore_pci(2, 2)
        assert result.ok and result.stats.completed

    def test_fsm_grows_with_masters(self):
        small = self.explore_pci(1, 1, props=False)
        bigger = self.explore_pci(2, 1, props=False)
        assert bigger.fsm.state_count() > small.fsm.state_count()

    def test_fsm_grows_with_targets(self):
        small = self.explore_pci(1, 1, props=False)
        bigger = self.explore_pci(1, 2, props=False)
        assert bigger.fsm.state_count() > small.fsm.state_count()

    def test_fine_exploration_is_larger(self):
        coarse = self.explore_pci(1, 1, coarse=True, props=False)
        fine = self.explore_pci(1, 1, coarse=False, props=False)
        assert fine.fsm.state_count() > coarse.fsm.state_count()

    def test_liveness_every_request_granted(self):
        result = self.explore_pci(2, 1, props=False)
        liveness = check_eventually(
            result.fsm, request_trigger(0), grant_goal(0), "grant0"
        )
        assert liveness.holds

    def test_liveness_starvation_found_for_low_priority(self):
        """Fixed-priority PCI arbitration can starve master1 -- the
        liveness result only model checking can produce."""
        result = self.explore_pci(2, 1, props=False)
        liveness = check_eventually(
            result.fsm, request_trigger(1), grant_goal(1), "grant1"
        )
        assert not liveness.holds
        assert liveness.violation is not None
