"""Differential tests: compiled (table-driven) vs interpreted monitors.

The compiled engine's whole contract is *byte-identical verdicts*: any
property, any trace, every cycle, both engines must agree.  This suite
drives both engines in lockstep over

* every property the two bus models ship (invariants, timed, covers),
* a seeded corpus of randomly generated SEREs and suffix implications,

and additionally checks the redesigned ``compile_properties`` API
surface (bindings, engine selection, the deprecation shim, cache
counters) and the kernel fast path the compiled engine rides on.
"""

import random
import warnings

import pytest

from repro.models.master_slave.properties import (
    ms_cover_properties,
    ms_invariant_properties,
    ms_timed_properties,
)
from repro.models.pci.properties import (
    pci_cover_properties,
    pci_safety_properties,
)
from repro.psl import (
    BooleanInvariantMonitor,
    Verdict,
    compile_properties,
    parse_formula,
)
from repro.psl.compiled import (
    ENGINE_ENV_VAR,
    CompiledProperty,
    clear_compile_caches,
    compile_cache_stats,
    compile_property,
    default_engine,
    property_digest,
    set_default_engine,
    shared_automaton,
)
from repro.psl.parser import parse_sere


# ---------------------------------------------------------------------------
# lockstep driving
# ---------------------------------------------------------------------------


def random_trace(variables, cycles: int, seed: int, bias: float = 0.5):
    """A seeded boolean trace over ``variables`` (sorted for stability)."""
    rng = random.Random(seed)
    names = sorted(variables) or ["p"]
    return [
        {name: rng.random() < bias for name in names} for _ in range(cycles)
    ]


def lockstep(source, trace, *, bindings=None):
    """Step both engines over ``trace``; assert per-cycle agreement.

    Returns the shared verdict sequence so callers can make additional
    assertions about the trace itself.
    """
    compiled, = compile_properties([source], bindings=bindings, engine="compiled")
    interpreted, = compile_properties(
        [source], bindings=bindings, engine="interpreted"
    )
    assert compiled.variables() == interpreted.variables()
    compiled.reset()
    interpreted.reset()
    verdicts = []
    for cycle, letter in enumerate(trace):
        got = compiled.step(letter)
        want = interpreted.step(letter)
        assert got is want, (
            f"engines diverge at cycle {cycle} for {source!r}: "
            f"compiled={got} interpreted={want}"
        )
        assert compiled.verdict() is interpreted.verdict()
        verdicts.append(got)
    return verdicts


MODEL_SUITES = {
    "ms_invariants": lambda: ms_invariant_properties(2, 2),
    "ms_timed": lambda: ms_timed_properties(2, 2, [True, False]),
    "ms_covers": lambda: ms_cover_properties(2, 2),
    "pci_safety": lambda: pci_safety_properties(2, 2),
    "pci_covers": lambda: pci_cover_properties(2, 2),
}


class TestModelProperties:
    """Every shipped model property agrees across engines."""

    @pytest.mark.parametrize("suite", sorted(MODEL_SUITES), ids=str)
    def test_random_traces_agree(self, suite):
        directives = MODEL_SUITES[suite]()
        assert directives, f"suite {suite} is empty"
        for directive in directives:
            monitor, = compile_properties([directive], engine="compiled")
            for seed in (1, 2, 3):
                trace = random_trace(monitor.variables(), 40, seed)
                lockstep(directive, trace)

    @pytest.mark.parametrize("suite", sorted(MODEL_SUITES), ids=str)
    def test_quiet_traces_agree(self, suite):
        """All-false and all-true letters: the degenerate corners."""
        for directive in MODEL_SUITES[suite]():
            monitor, = compile_properties([directive], engine="compiled")
            names = sorted(monitor.variables())
            for value in (False, True):
                trace = [{name: value for name in names}] * 12
                lockstep(directive, trace)


# ---------------------------------------------------------------------------
# random formula corpus
# ---------------------------------------------------------------------------

ATOMS = ("a", "b", "c")


def random_sere(rng: random.Random, depth: int = 0) -> str:
    atom = rng.choice(ATOMS)
    if depth >= 2:
        return atom
    pick = rng.randrange(7)
    if pick == 0:
        return atom
    if pick == 1:
        return f"{random_sere(rng, depth + 1)} ; {random_sere(rng, depth + 1)}"
    if pick == 2:
        return f"{{{random_sere(rng, depth + 1)}}} | {{{random_sere(rng, depth + 1)}}}"
    if pick == 3:
        return f"{atom}[*]"
    if pick == 4:
        return f"{atom}[+]"
    if pick == 5:
        lo = rng.randrange(0, 3)
        return f"{atom}[*{lo}:{lo + rng.randrange(1, 3)}]"
    return f"({atom} && {rng.choice(ATOMS)})"


def random_formula(rng: random.Random) -> str:
    shape = rng.randrange(6)
    if shape == 0:
        return f"always {{{random_sere(rng)}}} |=> {{{random_sere(rng)}}}"
    if shape == 1:
        return f"always {{{random_sere(rng)}}} |-> {{{random_sere(rng)}}}"
    if shape == 2:
        return f"never {{{random_sere(rng)}}}"
    if shape == 3:
        return f"always ({rng.choice(ATOMS)} -> {rng.choice(ATOMS)})"
    if shape == 4:
        return f"{rng.choice(ATOMS)} until {rng.choice(ATOMS)}"
    return f"eventually! {rng.choice(ATOMS)}"


class TestRandomCorpus:
    def test_generated_formulas_agree(self):
        rng = random.Random(20050307)
        for index in range(60):
            text = random_formula(rng)
            trace = random_trace(ATOMS, 30, seed=index, bias=rng.choice((0.3, 0.7)))
            lockstep(text, trace)

    def test_generated_covers_agree(self):
        rng = random.Random(77)
        for index in range(30):
            text = f"cover {{{random_sere(rng)}}};"
            trace = random_trace(ATOMS, 25, seed=1000 + index)
            lockstep(text, trace)


# ---------------------------------------------------------------------------
# snapshot / restore
# ---------------------------------------------------------------------------


class TestSnapshotRestore:
    CASES = [
        "always {a} |=> {b ; c}",
        "always {a ; a} |-> {b[*1:3] ; c}",
        "never {a ; b}",
        "a until b",
        "eventually! c",
        "cover {a ; b ; c};",
    ]

    @pytest.mark.parametrize("engine", ["compiled", "interpreted"])
    @pytest.mark.parametrize("text", CASES, ids=range(len(CASES)))
    def test_mid_stream_round_trip(self, engine, text):
        """Restoring a mid-trace snapshot replays the identical tail."""
        trace = random_trace(ATOMS, 30, seed=sum(text.encode()))
        monitor, = compile_properties([text], engine=engine)
        monitor.reset()
        for letter in trace[:11]:
            monitor.step(letter)
        snap = monitor.snapshot()
        tail = [monitor.step(letter) for letter in trace[11:]]
        monitor.restore(snap)
        replayed = [monitor.step(letter) for letter in trace[11:]]
        assert replayed == tail

    def test_snapshot_is_inert(self):
        """Stepping after a snapshot does not mutate the snapshot."""
        monitor, = compile_properties(["always {a} |=> {b}"], engine="compiled")
        monitor.reset()
        monitor.step({"a": True, "b": False})
        snap = monitor.snapshot()
        monitor.step({"a": False, "b": False})  # consequent fails
        assert monitor.verdict() is Verdict.FAILS
        monitor.restore(snap)
        assert monitor.verdict() is not Verdict.FAILS
        monitor.step({"a": False, "b": True})
        assert monitor.verdict() is not Verdict.FAILS


# ---------------------------------------------------------------------------
# API surface
# ---------------------------------------------------------------------------


class TestCompileApi:
    def test_engine_validation(self):
        with pytest.raises(ValueError, match="unknown PSL engine"):
            compile_properties(["always p"], engine="jit")
        with pytest.raises(ValueError, match="unknown PSL engine"):
            set_default_engine("turbo")

    def test_default_engine_round_trip(self):
        previous = set_default_engine("interpreted")
        try:
            assert default_engine() == "interpreted"
            monitor, = compile_properties(["always p"])
            assert not isinstance(monitor, CompiledProperty)
        finally:
            set_default_engine(previous)

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "interpreted")
        assert default_engine() == "interpreted"
        monkeypatch.setenv(ENGINE_ENV_VAR, "warp")
        with pytest.raises(ValueError, match="unknown PSL engine"):
            default_engine()

    def test_bindings_rename_signals(self):
        monitor, = compile_properties(
            ["always {req} |=> {gnt}"],
            bindings={"req": "want0", "gnt": "owner0"},
        )
        assert monitor.variables() == frozenset({"want0", "owner0"})
        monitor.reset()
        monitor.step({"want0": True, "owner0": False})
        monitor.step({"want0": False, "owner0": True})
        assert monitor.verdict() is not Verdict.FAILS

    def test_bindings_and_engines_agree(self):
        bindings = {"a": "x", "b": "y"}
        trace = random_trace(("x", "y"), 20, seed=9)
        lockstep("always {a} |=> {b}", trace, bindings=bindings)

    def test_source_forms_are_interchangeable(self):
        text = "always {a} |=> {b}"
        formula = parse_formula(text)
        from_text, = compile_properties([text])
        from_ast, = compile_properties([formula])
        assert type(from_text) is type(from_ast)
        assert property_digest(text) == property_digest(formula)

    def test_rejects_unknown_source_type(self):
        with pytest.raises(TypeError, match="cannot compile"):
            compile_property(42)

    def test_unsupported_patterns_fall_back(self):
        """Patterns outside the table engine run interpreted -- silently."""
        monitor, = compile_properties(["always (always a)"], engine="compiled")
        assert not isinstance(monitor, CompiledProperty)
        trace = random_trace(("a",), 10, seed=3)
        lockstep("always (always a)", trace)


class TestDeprecationShim:
    def test_direct_construction_warns(self):
        with pytest.warns(DeprecationWarning, match="direct Monitor construction"):
            BooleanInvariantMonitor(parse_formula("p").expr, True, "inv")

    def test_compile_properties_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            compile_properties(["always p"], engine="interpreted")
            compile_properties(["always p"], engine="compiled")


# ---------------------------------------------------------------------------
# caches
# ---------------------------------------------------------------------------


class TestCompileCaches:
    def test_plan_cache_hits_on_repeat(self):
        clear_compile_caches()
        try:
            compile_properties(["always {a} |=> {b}"] * 3)
            stats = compile_cache_stats()
            assert stats["plan_misses"] == 1
            assert stats["plan_hits"] == 2
        finally:
            clear_compile_caches()

    def test_bindings_are_part_of_the_cache_key(self):
        clear_compile_caches()
        try:
            compile_properties(["always {a} |=> {b}"])
            compile_properties(["always {a} |=> {b}"], bindings={"a": "x"})
            stats = compile_cache_stats()
            assert stats["plan_misses"] == 2
        finally:
            clear_compile_caches()

    def test_automata_are_shared_across_monitors(self):
        clear_compile_caches()
        try:
            item = parse_sere("a ; b[*] ; c")
            first = shared_automaton(item)
            second = shared_automaton(item)
            assert first is second
            stats = compile_cache_stats()
            assert stats["automaton_hits"] >= 1
        finally:
            clear_compile_caches()


# ---------------------------------------------------------------------------
# kernel fast path
# ---------------------------------------------------------------------------


class TestKernelFastPath:
    def build(self, cycles=60):
        from repro.models.master_slave.scenario import MsScenarioSystem
        from repro.scenarios import sequence_for_profile

        system = MsScenarioSystem(
            1, 1, 2, sequence_for_profile("default"), seed=2005
        )
        system.run_cycles(cycles)
        return system

    def test_fast_path_dominates_plain_scenarios(self):
        system = self.build()
        stats = system.simulator.stats
        assert stats.fast_path_instants > 0
        assert stats.fast_path_instants > stats.full_path_instants

    def test_fast_path_preserves_results(self):
        fast = self.build()
        report = fast.check()
        assert report.ok

    def test_hooks_force_full_path(self):
        from repro.models.master_slave.scenario import MsScenarioSystem
        from repro.scenarios import sequence_for_profile

        system = MsScenarioSystem(
            1, 1, 2, sequence_for_profile("default"), seed=2005
        )
        system.simulator.on_delta.append(lambda sim: None)
        system.run_cycles(20)
        stats = system.simulator.stats
        assert stats.fast_path_instants == 0
        assert stats.full_path_instants > 0
