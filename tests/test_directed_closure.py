"""Directed residue closure: planner, lowering, loop, and the e2e
comparison against PR 2's profile re-biasing."""

import json

import pytest

from repro.asm.machine import ActionCall
from repro.explorer.goal_planner import (
    GoalPlanner,
    residue_label,
    walk_fsm_events,
)
from repro.models.master_slave.asm_model import BLOCKING_BURST
from repro.models.master_slave.scenario import (
    lower_path_to_goals as ms_lower,
)
from repro.models.pci.scenario import lower_path_to_goals as pci_lower
from repro.scenarios.directed import (
    DirectedClosureLoop,
    DirectedSequence,
    TransactionGoal,
)
from repro.scenarios.random_ import ScenarioRng
from repro.scenarios.regression import (
    RegressionRunner,
    ScenarioSpec,
    ScenarioVerdict,
    run_scenario,
)
from repro.scenarios.sequences import StimulusContext
from repro.workbench import SerialEngine, ShardedEngine, Workbench


@pytest.fixture(scope="module")
def ms_workbench():
    """One explored master_slave session shared by the module."""
    workbench = Workbench("master_slave")
    workbench.explore()
    return workbench


@pytest.fixture(scope="module")
def ms_fsm(ms_workbench):
    return ms_workbench._exploration.fsm


class TestGoalPlanner:
    def test_plans_end_on_their_target_edge(self, ms_fsm):
        planner = GoalPlanner(ms_fsm)
        uncovered = [residue_label(t) for t in ms_fsm.transitions]
        plans = planner.plan(uncovered)
        assert plans
        for plan in plans:
            assert residue_label(plan.transitions[-1]) == plan.target_edge
            # the path starts at the initial state
            assert plan.transitions[0].source == ms_fsm.initial_states()[0].index

    def test_greedy_dedup_covers_every_edge_once(self, ms_fsm):
        planner = GoalPlanner(ms_fsm)
        uncovered = [residue_label(t) for t in ms_fsm.transitions]
        plans = planner.plan(uncovered)
        covered = set()
        for plan in plans:
            # a plan is only kept for a target no earlier plan covered
            assert plan.target_edge not in covered
            covered.update(plan.edge_labels())
        assert covered == set(uncovered)
        assert len(plans) < len(uncovered)  # riders were absorbed

    def test_planning_is_deterministic(self, ms_fsm):
        uncovered = [residue_label(t) for t in ms_fsm.transitions]
        first = GoalPlanner(ms_fsm).plan(uncovered)
        second = GoalPlanner(ms_fsm).plan(uncovered)
        assert [p.target_edge for p in first] == [p.target_edge for p in second]
        assert [p.edge_labels() for p in first] == [p.edge_labels() for p in second]

    def test_unknown_edges_are_reported_not_planned(self, ms_fsm):
        planner = GoalPlanner(ms_fsm)
        plans = planner.plan(["s0 --warp.core()--> s99"])
        assert plans == []
        assert planner.unknown_edges == ("s0 --warp.core()--> s99",)


class TestEventWalk:
    def test_valid_stream_walks_and_credits(self, ms_fsm):
        events = [
            ("master0", "request", ()),
            ("arbiter", "grant_and_transfer", (0, True)),
        ]
        walk = walk_fsm_events(ms_fsm, events)
        assert walk.steps_walked == 2
        assert walk.off_path == 0
        assert len(walk.exercised) == 2
        assert len(walk.visited_states) == 3

    def test_off_path_stream_stops_crediting(self, ms_fsm):
        events = [
            ("master0", "request", ()),
            ("master0", "request", ()),  # no such edge: already WANT
            ("arbiter", "grant_and_transfer", (0, True)),
        ]
        walk = walk_fsm_events(ms_fsm, events)
        assert walk.steps_walked == 1
        assert walk.off_path == 2  # the bad event and everything after

    def test_empty_stream_claims_nothing(self, ms_fsm):
        walk = walk_fsm_events(ms_fsm, [])
        assert walk.exercised == ()
        assert walk.visited_states == ()


class TestWireForms:
    def test_transaction_goal_round_trips(self):
        goal = TransactionGoal(unit=1, target=0, is_write=True, burst=2, idle=3)
        assert TransactionGoal.from_json(goal.to_json()) == goal

    def test_directed_spec_round_trips_through_json(self):
        spec = ScenarioSpec(
            model="master_slave",
            seed=77,
            topology=(1, 1, 2),
            profile="directed",
            cycles=140,
            goals=(
                TransactionGoal(unit=0, target=1, is_write=False, burst=2),
                TransactionGoal(unit=1, target=0, is_write=True, burst=1, idle=2),
            ),
            track_fsm=True,
        )
        clone = ScenarioSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert clone == spec

    def test_verdict_fsm_events_round_trip(self):
        spec = ScenarioSpec(
            model="master_slave",
            seed=5,
            topology=(1, 1, 2),
            profile="directed",
            cycles=120,
            goals=(TransactionGoal(unit=0, target=0, is_write=True, burst=2),),
            track_fsm=True,
        )
        verdict = run_scenario(spec)
        assert verdict.fsm_events  # the run reconstructed its events
        clone = ScenarioVerdict.from_json(
            json.loads(json.dumps(verdict.to_json()))
        )
        assert clone.fsm_events == verdict.fsm_events
        assert clone.spec == spec

    def test_untracked_spec_ships_no_events(self):
        spec = ScenarioSpec(
            model="master_slave", seed=5, topology=(1, 1, 2), cycles=120
        )
        assert run_scenario(spec).fsm_events == ()


class TestDirectedSequence:
    def test_for_unit_filters_goals_in_plan_order(self):
        goals = (
            TransactionGoal(unit=0, target=1, is_write=True, burst=2),
            TransactionGoal(unit=1, target=0, is_write=False, burst=1),
            TransactionGoal(unit=0, target=0, is_write=False, burst=2),
        )
        ctx = StimulusContext(n_targets=2, min_burst=1, max_burst=2)
        rng = ScenarioRng(9, "master0")
        items = list(DirectedSequence(goals).for_unit(0).items(rng, ctx))
        assert [(i.target, i.is_write) for i in items] == [(1, True), (0, False)]

    def test_goal_randomization_derives_from_goal_index(self):
        goals = (
            TransactionGoal(unit=0, target=0, is_write=True, burst=2),
            TransactionGoal(unit=0, target=1, is_write=True, burst=2),
        )
        ctx = StimulusContext(n_targets=2, min_burst=1, max_burst=2)

        def payloads():
            rng = ScenarioRng(42, "master0")
            return [
                i.payload
                for i in DirectedSequence(goals).for_unit(0).items(rng, ctx)
            ]

        assert payloads() == payloads()  # (seed, goal_index) determinism


class TestMsLowering:
    def test_transfer_goes_to_choose_min_winner(self):
        calls = [
            ActionCall("master0", "request"),
            ActionCall("master1", "request"),
            ActionCall("arbiter", "grant_and_transfer", (1, True)),
        ]
        goals = ms_lower(calls, 1, 1, 2)
        transfer = goals[0]
        assert transfer.unit == 0  # min(pending), the ASM arbitration
        assert (transfer.target, transfer.is_write) == (1, True)
        assert transfer.burst == BLOCKING_BURST  # master0 is blocking
        # master1 was left pending: it gets a drain goal
        assert goals[-1].unit == 1
        assert goals[-1].burst == 1  # non-blocking mode

    def test_ascending_requests_post_simultaneously(self):
        calls = [
            ActionCall("master0", "request"),
            ActionCall("master1", "request"),
            ActionCall("arbiter", "grant_and_transfer", (0, False)),
        ]
        goals = ms_lower(calls, 1, 1, 2)
        assert all(g.idle == 0 for g in goals)

    def test_inverted_request_order_gets_a_warmup(self):
        calls = [
            ActionCall("master1", "request"),
            ActionCall("master0", "request"),
            ActionCall("arbiter", "grant_and_transfer", (0, True)),
        ]
        goals = ms_lower(calls, 1, 1, 2)
        # warm-up transaction for the winner precedes the plan, and the
        # early higher-index requester aims into its transfer window
        assert goals[0].unit == 0 and goals[0].idle == 0
        assert any(g.unit == 1 and g.idle > 0 for g in goals)

    def test_unlowerable_actions_return_none(self):
        assert ms_lower([ActionCall("master0", "teleport")], 1, 1, 2) is None
        assert (
            ms_lower([ActionCall("arbiter", "grant_and_transfer", (0, True))], 1, 1, 2)
            is None  # transfer with nobody pending
        )


class TestPciLowering:
    def test_explicit_attribution_and_drains(self):
        calls = [
            ActionCall("master0", "request"),
            ActionCall("master1", "request"),
            ActionCall("arbiter", "update_m_req"),
            ActionCall("arbiter", "grant"),
            ActionCall("master0", "start_transaction", (1, 2)),
            ActionCall("target1", "respond"),
            ActionCall("master0", "run_data_phases"),
            ActionCall("target1", "complete"),
        ]
        goals = pci_lower(calls, 2, 2)
        assert goals[0].unit == 0
        assert goals[0].target == 1 and goals[0].burst == 2
        assert goals[-1].unit == 1  # pending master1 drains

    def test_stop_paths_are_unlowerable(self):
        calls = [
            ActionCall("master0", "request"),
            ActionCall("arbiter", "update_m_req"),
            ActionCall("arbiter", "grant"),
            ActionCall("master0", "start_transaction", (0, 1)),
            ActionCall("target0", "stop_transaction"),
            ActionCall("master0", "handle_stop"),
        ]
        assert pci_lower(calls, 1, 1) is None


class TestClosureLoop:
    def test_folds_achieved_edges_and_goes_dry(self):
        plans = []

        def plan_round(edges, round_index):
            plans.append(tuple(edges))
            return [f"goal:{e}" for e in edges]

        def run_round(planned, round_index):
            # first round closes edge "a", later rounds close nothing
            return ["a"] if round_index == 0 else []

        loop = DirectedClosureLoop(["a", "b"], plan_round, run_round, max_rounds=4)
        rounds = loop.run()
        assert [r.achieved_edges for r in rounds] == [("a",), ()]
        assert loop.remaining == ("b",)
        assert loop.went_dry
        assert plans == [("a", "b"), ("b",)]

    def test_empty_plan_ends_the_loop(self):
        loop = DirectedClosureLoop(
            ["x"], lambda edges, r: [], lambda planned, r: [], max_rounds=5
        )
        assert loop.run() == []
        assert loop.went_dry


class TestCloseCoverageStage:
    def test_ms_closure_beats_bias_rebias_at_the_same_budget(self):
        """The acceptance criterion: directed goals exercise residue
        transitions that 4 rounds of PR 2's profile re-biasing leave
        unhit at the same scenario budget."""
        workbench = Workbench("master_slave")
        workbench.explore()
        fsm = workbench._exploration.fsm

        # -- the PR 2 leg: 4 rounds of residue-biased constrained-random
        #    regression (pressure profiles), same per-scenario budget
        from repro.scenarios.regression import build_specs

        biased_covered = set()
        for round_index in range(4):
            specs = [
                spec
                for spec in build_specs(
                    models=["master_slave"],
                    count=12,
                    base_seed=2005 + 1000 * round_index,
                    cycles=140,
                    profiles=("bursty", "edges"),
                    track_fsm=True,
                )
                if spec.topology == (1, 1, 2)
            ]
            report = RegressionRunner(specs, engine=SerialEngine()).run()
            for verdict in report.verdicts:
                biased_covered.update(
                    walk_fsm_events(fsm, verdict.fsm_events).exercised
                )

        # -- the directed leg
        result = workbench.close_coverage(rounds=2, cycles=140)
        assert result.ok, result.summary
        closed = set(result.data["closed_transitions"])

        missed_by_bias = closed - biased_covered
        assert missed_by_bias, (
            "directed closure must reach residue transitions the biased "
            f"regression left unhit; bias covered {len(biased_covered)}, "
            f"directed closed {len(closed)}"
        )

    def test_close_coverage_digest_is_engine_invariant(self):
        def digest_with(**kwargs):
            workbench = Workbench("master_slave")
            result = workbench.close_coverage(rounds=1, cycles=140, **kwargs)
            return result.digest(), result.data["achieved"]

        serial = digest_with(workers=1)
        multiprocessing = digest_with(workers=2)
        sharded = digest_with(shards=2)
        assert serial == multiprocessing == sharded
        assert serial[1] > 0

    def test_closure_folds_into_the_session_residue(self):
        workbench = Workbench("master_slave")
        workbench.explore()
        before = workbench.residue
        result = workbench.close_coverage(rounds=2, cycles=140)
        after = workbench.residue
        assert result.ok
        assert len(after.uncovered_transitions) < len(before.uncovered_transitions)
        assert after.transition_coverage > before.transition_coverage
        # stage appears in the session report and its digest is stable
        report = workbench.report()
        assert report.stage("close_coverage") is result

    def test_pci_closure_achieves_goals(self):
        workbench = Workbench("pci", n_masters=1, n_targets=1)
        result = workbench.close_coverage(rounds=1, cycles=200)
        assert result.ok, result.summary
        assert result.data["achieved"] > 0
        # STOP#-family edges are not expressible as transaction goals
        assert result.data["unlowerable_edges"]

    def test_close_without_scenario_binding_errors(self):
        from repro.workbench import DUV
        from repro.explorer.config import ExplorationConfig

        def model_factory():
            from tests.conftest import Counter  # type: ignore[import]

            raise AssertionError("unused")

        duv = DUV(name="toy", model_factory=model_factory)
        workbench = Workbench(duv)
        result = workbench.close_coverage()
        assert result.status.value == "error"


class TestDirectedSharding:
    def test_directed_specs_survive_the_shard_wire(self, tmp_path):
        """A directed spec list round-trips through the spec file and a
        sharded run's merged digest matches the serial one."""
        from repro.scenarios.regression import load_specs, save_specs

        goals = (
            TransactionGoal(unit=0, target=0, is_write=True, burst=2),
            TransactionGoal(unit=1, target=1, is_write=False, burst=1, idle=1),
        )
        specs = [
            ScenarioSpec(
                model="master_slave",
                seed=100 + index,
                topology=(1, 1, 2),
                profile="directed",
                cycles=120,
                goals=goals,
                track_fsm=True,
            )
            for index in range(4)
        ]
        path = tmp_path / "directed_specs.json"
        save_specs(specs, str(path))
        assert load_specs(str(path)) == specs

        serial = RegressionRunner(specs, engine=SerialEngine()).run()
        sharded = RegressionRunner(specs, engine=ShardedEngine(2)).run()
        assert serial.digest() == sharded.digest()
        assert all(v.fsm_events for v in sharded.verdicts)
