"""Unit tests for machines, actions, update-set semantics and models."""

import pytest

from repro.asm import (
    ActionCall,
    AsmError,
    AsmMachine,
    AsmModel,
    Domain,
    InconsistentUpdateError,
    ModelRuleViolation,
    NoChoiceError,
    RequirementFailure,
    SEQUENTIAL,
    StateVar,
    action,
    choose_any,
    choose_max,
    choose_min,
    exists_where,
    for_all,
    require,
)
from conftest import Counter, ToyArbiter, ToyMaster


class TestStateVar:
    def test_default_values(self):
        counter = Counter()
        assert counter.value == 0
        assert counter.limit == 3

    def test_free_write_outside_action(self):
        counter = Counter()
        counter.value = 7
        assert counter.value == 7

    def test_values_are_frozen(self):
        class Holder(AsmMachine):
            items = StateVar([])

        holder = Holder()
        holder.items = [1, 2]
        assert hash(holder.items) is not None  # Seq, hashable

    def test_domain_enforced_on_write(self):
        class Limited(AsmMachine):
            mode = StateVar("off", domain=Domain.of("modes", "off", "on"))

        machine = Limited()
        machine.mode = "on"
        with pytest.raises(Exception):
            machine.mode = "blink"

    def test_declared_state_vars(self):
        assert set(Counter.declared_state_vars()) == {"value", "limit"}


class TestActions:
    def test_action_applies_on_success(self):
        counter = Counter()
        counter.tick()
        assert counter.value == 1

    def test_failed_require_rolls_back(self):
        counter = Counter()
        counter.value = 3
        with pytest.raises(RequirementFailure):
            counter.tick()
        assert counter.value == 3

    def test_parallel_reads_see_prestate(self):
        class Swap(AsmMachine):
            a = StateVar(1)
            b = StateVar(2)

            @action
            def swap(self):
                self.a = self.b
                self.b = self.a

        machine = Swap()
        machine.swap()
        assert (machine.a, machine.b) == (2, 1)

    def test_parallel_conflict_detected(self):
        class Conflict(AsmMachine):
            x = StateVar(0)

            @action
            def clash(self):
                self.x = 1
                self.x = 2

        with pytest.raises(InconsistentUpdateError):
            Conflict().clash()

    def test_parallel_duplicate_update_allowed(self):
        class Duplicate(AsmMachine):
            x = StateVar(0)

            @action
            def same(self):
                self.x = 5
                self.x = 5

        machine = Duplicate()
        machine.same()
        assert machine.x == 5

    def test_sequential_mode_reads_own_writes(self):
        class Accumulate(AsmMachine):
            total = StateVar(0)

            @action(mode=SEQUENTIAL)
            def add_twice(self):
                self.total = self.total + 1
                self.total = self.total + 1

        machine = Accumulate()
        machine.add_twice()
        assert machine.total == 2

    def test_sequential_rollback_on_failure(self):
        class Guarded(AsmMachine):
            total = StateVar(0)

            @action(mode=SEQUENTIAL)
            def bump_then_fail(self):
                self.total = self.total + 1
                require(False, "always fails")

        machine = Guarded()
        with pytest.raises(RequirementFailure):
            machine.bump_then_fail()
        assert machine.total == 0

    def test_nested_action_shares_step(self):
        class Outer(AsmMachine):
            a = StateVar(0)
            b = StateVar(0)

            @action
            def inner(self):
                self.b = 10

            @action
            def outer(self):
                self.a = 1
                self.inner()

        machine = Outer()
        machine.outer()
        assert (machine.a, machine.b) == (1, 10)

    def test_action_metadata(self):
        info = Counter.declared_actions()["tick"]
        assert info.name == "tick"
        assert info.params == ()

    def test_unknown_domain_param_rejected(self):
        with pytest.raises(AsmError):
            class Bad(AsmMachine):  # noqa: F841
                @action(params={"nope": Domain.boolean()})
                def act(self):
                    pass


class TestModel:
    def test_registration_and_lookup(self, arbiter_model):
        assert set(arbiter_model.machines) == {"m0", "m1", "arbiter"}
        assert isinstance(arbiter_model.machine("arbiter"), ToyArbiter)
        assert len(arbiter_model.machines_of(ToyMaster)) == 2

    def test_duplicate_names_disambiguated(self):
        model = AsmModel()
        first = Counter(model=model)
        second = Counter(model=model)
        assert first.name != second.name

    def test_register_after_seal_rejected(self, counter_model):
        with pytest.raises(ModelRuleViolation):
            Counter(model=counter_model)

    def test_invalid_machine_name_rejected(self):
        model = AsmModel()
        with pytest.raises(AsmError):
            Counter(model=model, name="$reserved")

    def test_execute_call(self, counter_model):
        result_ok, _ = counter_model.try_execute(ActionCall("counter", "tick"))
        assert result_ok
        assert counter_model.machine("counter").value == 1

    def test_try_execute_disabled(self, counter_model):
        counter_model.machine("counter").value = 3
        ok, _ = counter_model.try_execute(ActionCall("counter", "tick"))
        assert not ok
        assert counter_model.machine("counter").value == 3

    def test_execute_non_action_rejected(self, counter_model):
        with pytest.raises(AsmError):
            counter_model.execute(ActionCall("counter", "state_items"))

    def test_snapshot_restore_roundtrip(self, arbiter_model):
        before = arbiter_model.full_state()
        arbiter_model.execute(ActionCall("m0", "request"))
        arbiter_model.execute(ActionCall("arbiter", "grant"))
        assert arbiter_model.full_state() != before
        arbiter_model.restore(before)
        assert arbiter_model.full_state() == before

    def test_reset_returns_to_seal_state(self, counter_model):
        counter_model.execute(ActionCall("counter", "tick"))
        counter_model.reset()
        assert counter_model.machine("counter").value == 0

    def test_state_key_uses_selected_vars_only(self, counter_model):
        key = counter_model.state_key()
        names = [loc.variable for loc, _ in key.items()]
        assert "value" in names
        assert "limit" not in names  # state_variable=False

    def test_globals_in_state(self):
        model = AsmModel()
        Counter(model=model)
        model.set_global("flag", True)
        model.seal()
        assert model.get_global("flag") is True
        state = model.full_state()
        assert state.get("$globals", "flag") is True
        model.set_global("flag", False)
        model.restore(state)
        assert model.get_global("flag") is True

    def test_globals_update_inside_action_buffered(self):
        class Init(AsmMachine):
            @action
            def init(self):
                self.model.set_global("ready", True)
                require(False, "abort after global write")

        model = AsmModel()
        Init(model=model, name="init")
        model.seal()
        ok, _ = model.try_execute(ActionCall("init", "init"))
        assert not ok
        assert model.get_global("ready") is None

    def test_candidate_calls_with_domains(self, counter_model):
        calls = list(counter_model.candidate_calls())
        labels = {c.label() for c in calls}
        assert "counter.tick()" in labels
        assert "counter.reset()" in labels

    def test_candidate_calls_missing_domain_raises(self):
        class Param(AsmMachine):
            @action
            def act(self, amount):
                pass

        model = AsmModel()
        Param(model=model, name="p")
        model.seal()
        with pytest.raises(ModelRuleViolation):
            list(model.candidate_calls())

    def test_candidate_calls_domain_override(self):
        class Param(AsmMachine):
            @action
            def act(self, amount):
                require(amount >= 0)

        model = AsmModel()
        Param(model=model, name="p")
        model.seal()
        calls = list(
            model.candidate_calls(
                extra_domains={"amount": Domain.int_range("amt", 0, 2)}
            )
        )
        assert [c.args for c in calls] == [(0,), (1,), (2,)]

    def test_action_filter_by_name(self, arbiter_model):
        calls = list(arbiter_model.candidate_calls(actions=["arbiter.grant"]))
        assert all(c.action == "grant" for c in calls)

    def test_action_groups(self):
        class Grouped(AsmMachine):
            @action(group="fast")
            def quick(self):
                pass

            @action(group="slow")
            def slow(self):
                pass

        model = AsmModel()
        Grouped(model=model, name="g")
        model.seal()
        calls = list(model.candidate_calls(groups=["fast"]))
        assert [c.action for c in calls] == ["quick"]


class TestChooseHelpers:
    def test_choose_min_max(self):
        assert choose_min([3, 1, 2]) == 1
        assert choose_max([3, 1, 2]) == 3
        assert choose_min([3, 1, 2], where=lambda x: x > 1) == 2

    def test_choose_any_deterministic(self):
        assert choose_any([5, 6, 7], where=lambda x: x % 2 == 0) == 6

    def test_choose_raises_when_empty(self):
        with pytest.raises(NoChoiceError):
            choose_min([], where=lambda x: True)
        with pytest.raises(NoChoiceError):
            choose_any([1], where=lambda x: x > 5)

    def test_quantifiers(self):
        assert exists_where([1, 2, 3], lambda x: x == 2)
        assert not exists_where([1, 3], lambda x: x == 2)
        assert for_all([2, 4], lambda x: x % 2 == 0)
        assert not for_all([2, 3], lambda x: x % 2 == 0)
