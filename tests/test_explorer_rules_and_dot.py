"""Tests for R-FSM rule checking, DOT export, and exploration stats."""

import pytest

from repro.asm import AsmMachine, AsmModel, Domain, StateVar, action, require
from repro.explorer import (
    ExplorationConfig,
    Filter,
    RuleFinding,
    assert_rules,
    check_rules,
    counterexample_to_dot,
    explore,
    fsm_to_dot,
    violation_filter,
)
from repro.asm.errors import ModelRuleViolation
from conftest import ToyMaster


class TestRuleChecker:
    def test_empty_model_is_r1_error(self):
        model = AsmModel("empty")
        model.seal()
        findings = check_rules(model)
        assert any(f.rule == "R1_FSM" and f.level == "error" for f in findings)

    def test_missing_init_action_is_r2_warning(self, arbiter_model):
        findings = check_rules(arbiter_model)
        assert any(f.rule == "R2_FSM" and f.level == "warning" for f in findings)

    def test_bad_init_action_is_r2_error(self, arbiter_model):
        config = ExplorationConfig(init_action="ghost.init")
        findings = check_rules(arbiter_model, config)
        assert any(f.rule == "R2_FSM" and f.level == "error" for f in findings)

    def test_init_action_must_be_action(self, arbiter_model):
        config = ExplorationConfig(init_action="m0.state_items")
        findings = check_rules(arbiter_model, config)
        assert any(f.rule == "R2_FSM" and f.level == "error" for f in findings)

    def test_action_without_require_is_r3_warning(self):
        class Unguarded(AsmMachine):
            x = StateVar(0)

            @action
            def anything(self):
                self.x = 1

        model = AsmModel()
        Unguarded(model=model, name="u")
        model.seal()
        findings = check_rules(model)
        assert any(f.rule == "R3_FSM" for f in findings)

    def test_missing_domain_is_r4_error(self):
        class Param(AsmMachine):
            @action
            def act(self, much):
                require(True)

        model = AsmModel()
        Param(model=model, name="p")
        model.seal()
        findings = check_rules(model)
        assert any(f.rule == "R4_FSM" and f.level == "error" for f in findings)

    def test_huge_domain_is_r4_warning(self):
        class Wide(AsmMachine):
            @action(params={"v": Domain.int_range("v", 0, 5000)})
            def act(self, v):
                require(True)

        model = AsmModel()
        Wide(model=model, name="w")
        model.seal()
        findings = check_rules(model)
        assert any(f.rule == "R4_FSM" and f.level == "warning" for f in findings)

    def test_assert_rules_raises_on_error(self):
        model = AsmModel("empty")
        model.seal()
        with pytest.raises(ModelRuleViolation):
            assert_rules(model)

    def test_clean_model_with_init(self, arbiter_model):
        findings = check_rules(
            arbiter_model, ExplorationConfig(init_action="m0.request")
        )
        assert not [f for f in findings if f.level == "error"]

    def test_finding_str(self):
        finding = RuleFinding("R1_FSM", "error", "boom")
        assert "R1_FSM" in str(finding) and "error" in str(finding)


class TestDotExport:
    def test_fsm_dot_structure(self, arbiter_model):
        result = explore(arbiter_model)
        dot = fsm_to_dot(result.fsm)
        assert dot.startswith("digraph")
        assert "s0" in dot
        assert "->" in dot
        assert "doublecircle" in dot  # initial state marker

    def test_violation_state_highlighted(self, broken_arbiter_model):
        from test_explorer_engine import MutexProperty

        result = explore(
            broken_arbiter_model,
            ExplorationConfig(properties=[MutexProperty()]),
        )
        dot = fsm_to_dot(result.fsm, highlight=result.counterexample)
        assert "ffdddd" in dot  # violation fill colour
        assert "color=red" in dot

    def test_counterexample_dot(self, broken_arbiter_model):
        from test_explorer_engine import MutexProperty

        result = explore(
            broken_arbiter_model,
            ExplorationConfig(properties=[MutexProperty()]),
        )
        dot = counterexample_to_dot(result.counterexample)
        assert dot.count("->") == result.counterexample.length

    def test_label_escaping(self, arbiter_model):
        result = explore(arbiter_model)
        dot = fsm_to_dot(result.fsm)
        assert '\\"' not in dot.replace('\\\\"', "")  # parse sanity


class TestStatsAndSummaries:
    def test_summary_mentions_bounds(self, arbiter_model):
        result = explore(arbiter_model, ExplorationConfig(max_states=2))
        assert "state-bound" in result.stats.summary()

    def test_enabled_ratio(self, counter_model):
        result = explore(counter_model)
        assert 0 < result.stats.enabled_ratio <= 1

    def test_exploration_result_summary(self, counter_model):
        result = explore(counter_model)
        assert "[PASS]" in result.summary()

    def test_filter_name_in_terminal_reason(self, counter_model):
        low = Filter("low", lambda m: m.machine("counter").value < 1)
        result = explore(counter_model, ExplorationConfig(filters=[low]))
        reasons = {
            s.terminal_reason
            for s in result.fsm.terminal_states()
            if s.terminal_reason
        }
        assert "filter:low" in reasons

    def test_violation_filter_name(self):
        filt = violation_filter([])
        assert filt.name == "no-violation(none)"
