"""Tests for the UML layer, centred on the paper's Figure 2 diagram."""

import pytest

from repro.psl import Verdict, verdict
from repro.uml import (
    DiagramValidationError,
    MappingError,
    Message,
    SequenceDiagram,
    SequenceOp,
    TemporalOp,
    figure2_diagram,
    instantiate,
    sequence_to_property,
)


class TestDiagramConstruction:
    def test_lifelines_and_messages(self):
        diagram = figure2_diagram()
        assert set(diagram.lifelines) == {"master", "bus", "arbiter", "slave"}
        assert len(diagram) == 7
        assert diagram.clock == "clk"

    def test_duplicate_lifeline_rejected(self):
        diagram = SequenceDiagram("d")
        diagram.add_lifeline("a")
        with pytest.raises(Exception):
            diagram.add_lifeline("a")

    def test_validation_catches_unknown_lifeline(self):
        diagram = SequenceDiagram("d")
        diagram.add_lifeline("a")
        diagram.message("a", "ghost", "call")
        assert any("ghost" in f for f in diagram.validate())

    def test_validation_catches_bad_annotations(self):
        diagram = SequenceDiagram("d")
        diagram.add_lifeline("a")
        diagram.message("a", "a", "m1", duration=0)
        diagram.message("a", "a", "m2", temporal=TemporalOp.UNTIL)
        findings = "\n".join(diagram.validate())
        assert "duration" in findings
        assert "condition" in findings

    def test_check_raises_on_invalid(self):
        diagram = SequenceDiagram("d")
        with pytest.raises(DiagramValidationError):
            diagram.check()

    def test_message_label_renders_annotations(self):
        message = Message(
            "a", "b", "read", start_offset=2, duration=4,
            temporal=TemporalOp.UNTIL, until_condition="done", clock="clk",
        )
        label = message.label()
        assert "[2]" in label and "$4" in label and "U(done)" in label and "@clk" in label

    def test_replace_message_feedback_edge(self):
        diagram = figure2_diagram()
        original = diagram.messages[1]
        diagram.replace_message(1, start_offset=2)
        assert diagram.messages[1].start_offset == 2
        assert diagram.messages[1].method == original.method


class TestFigure2ToPsl:
    def test_property_shape(self):
        prop = sequence_to_property(figure2_diagram())
        text = str(prop.formula)
        assert text.startswith("always")
        assert "|=>" in text
        assert "bus.new_request" in text
        assert "[->1]" in text  # the eventual slave notification

    def test_report_collects_text_outputs(self):
        prop = sequence_to_property(figure2_diagram())
        assert "released" in prop.report
        assert "forwarded" in prop.report

    def test_property_holds_on_conforming_trace(self):
        prop = sequence_to_property(figure2_diagram())
        names = [
            "bus.new_request", "arbiter.notify", "arbiter.arbitrate",
            "bus.send", "bus.release", "bus.notify_done",
            "master.forward_notification",
        ]

        def letter(*active):
            return {n: n in active for n in names}

        trace = [
            letter("bus.new_request"),
            letter("arbiter.notify", "arbiter.arbitrate"),
            letter("bus.send"),
            letter("bus.release"),
            letter(),  # idle gap before the eventual notification
            letter("bus.notify_done"),
            letter("master.forward_notification"),
        ]
        assert verdict(prop.formula, trace) is not Verdict.FAILS

    def test_property_fails_when_notification_not_forwarded(self):
        prop = sequence_to_property(figure2_diagram())
        names = [
            "bus.new_request", "arbiter.notify", "arbiter.arbitrate",
            "bus.send", "bus.release", "bus.notify_done",
            "master.forward_notification",
        ]

        def letter(*active):
            return {n: n in active for n in names}

        trace = [
            letter("bus.new_request"),
            letter("arbiter.notify", "arbiter.arbitrate"),
            letter("bus.send"),
            letter("bus.release"),
            letter("bus.notify_done"),
            letter(),  # forward_notification missing in the next cycle
        ]
        assert verdict(prop.formula, trace) is Verdict.FAILS

    def test_clock_wrapper_optional(self):
        clocked = sequence_to_property(figure2_diagram(), apply_clock=True)
        assert "@" in str(clocked.formula)
        unclocked = sequence_to_property(figure2_diagram())
        assert "@" not in str(unclocked.formula)


class TestMappingRules:
    def build(self, *messages) -> SequenceDiagram:
        diagram = SequenceDiagram("t")
        diagram.add_lifeline("a")
        diagram.add_lifeline("b")
        for message in messages:
            diagram.add_message(message)
        return diagram

    def test_offset_padding(self):
        diagram = self.build(
            Message("a", "b", "go"),
            Message("a", "b", "done", start_offset=3),
        )
        text = str(sequence_to_property(diagram).formula)
        assert "True[*2]" in text or "true[*2]" in text.lower()

    def test_duration_repeats(self):
        diagram = self.build(
            Message("a", "b", "go"),
            Message("a", "b", "busy", duration=4),
        )
        text = str(sequence_to_property(diagram).formula)
        assert "[*4]" in text

    def test_fusion_on_zero_offset(self):
        diagram = self.build(
            Message("a", "b", "go"),
            Message("a", "b", "x"),
            Message("a", "b", "y", start_offset=0),
        )
        text = str(sequence_to_property(diagram).formula)
        assert ":" in text

    def test_first_consequent_fusion_rejected(self):
        diagram = self.build(
            Message("a", "b", "go"),
            Message("a", "b", "x", start_offset=0),
        )
        with pytest.raises(MappingError):
            sequence_to_property(diagram)

    def test_until_condition(self):
        diagram = self.build(
            Message("a", "b", "go"),
            Message(
                "a", "b", "busy",
                temporal=TemporalOp.UNTIL, until_condition="b.done",
            ),
        )
        text = str(sequence_to_property(diagram).formula)
        assert "b.done" in text

    def test_always_message_becomes_invariant_conjunct(self):
        diagram = self.build(
            Message("a", "b", "go"),
            Message("a", "b", "ok", temporal=TemporalOp.ALWAYS),
            Message("a", "b", "done"),
        )
        text = str(sequence_to_property(diagram).formula)
        assert text.count("always") >= 2

    def test_trigger_only_diagram_degenerates_to_coverage(self):
        diagram = self.build(Message("a", "b", "go"))
        prop = sequence_to_property(diagram)
        assert "always" in str(prop.formula)

    def test_custom_observation_expression(self):
        diagram = self.build(
            Message("a", "b", "go", observe="a.req && !a.busy"),
            Message("a", "b", "done"),
        )
        assert "a.req" in str(sequence_to_property(diagram).formula)


class TestInstantiation:
    def test_lifelines_renamed(self):
        inst = instantiate(figure2_diagram(), {"master": "master0"})
        assert "master0" in inst.lifelines
        assert "master" not in inst.lifelines

    def test_observations_rewritten(self):
        inst = instantiate(
            figure2_diagram(), {"master": "master0", "slave": "slave1"}
        )
        prop = sequence_to_property(inst)
        variables = prop.variables()
        assert "master0.forward_notification" in variables
        assert all(not v.startswith("slave.") for v in variables)

    def test_unbound_roles_kept(self):
        inst = instantiate(figure2_diagram(), {"master": "m0"})
        prop = sequence_to_property(inst)
        assert "bus.new_request" in prop.variables()
