"""The design-for-verification static analyzer (``repro.analyze``).

Covers the three passes behind the findings pipeline -- the
delta-cycle race detector on planted fixture sources, the property
linter on planted vacuous/contradictory/unreachable properties, and
the witnessed-kernel cross-check on a real two-writer race -- plus the
contracts the rest of the repo leans on: shipped models analyze clean,
report digests are byte-identical across runs and with the witness on
or off, the ``analyze`` workbench stage keeps session digests
engine-invariant, and analyzer counters flow through ``repro.obs``
without touching any digest.
"""

import json

import pytest

from repro.analyze import (
    AnalysisReport,
    DeltaWitness,
    Finding,
    analyze_duv,
    analyze_models,
    analyze_sources,
    apply_suppressions,
    lint_properties,
)
from repro.cli import main as repro_main
from repro.obs import OBS, enable_metrics, metric_name, runtime
from repro.sysc.kernel import Simulator
from repro.sysc.signal import Signal
from repro.workbench import (
    StageCall,
    StageStatus,
    VerificationPlan,
    Workbench,
    default_registry,
)
from repro.workbench.plan import STAGE_NAMES

# A planted model exercising every static race rule: two module
# classes driving ``req`` (multi-driver), a write-then-read of ``ack``
# with no yield between (read-after-write), and a while loop that can
# never suspend (wait-free-loop).
RACY_FIXTURE = '''\
from repro.sysc.signal import Signal
from repro.sysc.module import Module


class Wires:
    def __init__(self, sim):
        self.req = Signal(False, "req", sim)
        self.ack = Signal(False, "ack", sim)
        self.gnt = Signal(False, "gnt", sim)


class PushMaster(Module):
    def __init__(self, name, sim, wires):
        super().__init__(name, sim)
        self.wires = wires
        self.thread(self.run)

    def run(self):
        req = self.wires.req
        while True:
            req.write(True)
            yield 10


class PullMaster(Module):
    def __init__(self, name, sim, wires):
        super().__init__(name, sim)
        self.wires = wires
        self.thread(self.run)

    def run(self):
        req = self.wires.req
        while True:
            req.write(False)
            yield 10


class Echo(Module):
    def __init__(self, name, sim, wires):
        super().__init__(name, sim)
        self.wires = wires
        self.thread(self.run)

    def run(self):
        ack = self.wires.ack
        while True:
            ack.write(True)
            if ack.read():
                pass
            yield 10


class Spinner(Module):
    def __init__(self, name, sim, wires):
        super().__init__(name, sim)
        self.wires = wires
        self.thread(self.run)

    def run(self):
        gnt = self.wires.gnt
        yield 10
        while gnt.read():
            pass


class System:
    def __init__(self, sim):
        wires = Wires(sim)
        self.push = PushMaster("push", sim, wires)
        self.pull = PullMaster("pull", sim, wires)
        self.echo = Echo("echo", sim, wires)
        self.spin = Spinner("spin", sim, wires)
'''


def _rules(findings):
    return {f.rule for f in findings}


class TestRaceDetector:
    def _findings(self, source=RACY_FIXTURE):
        findings, _ = analyze_sources(
            {"fixture.py": source}, "fixture.py", model="fixture"
        )
        return findings

    def test_planted_multi_driver_detected(self):
        findings = [
            f for f in self._findings() if f.rule == "race.multi-driver"
        ]
        assert len(findings) == 1
        finding = findings[0]
        assert finding.severity == "error"
        assert "'req'" in finding.message
        assert "PushMaster" in finding.message
        assert "PullMaster" in finding.message
        # anchored at the declaration line of the racy signal
        assert finding.line == RACY_FIXTURE.splitlines().index(
            '        self.req = Signal(False, "req", sim)'
        ) + 1

    def test_planted_read_after_write_detected(self):
        findings = [
            f for f in self._findings() if f.rule == "race.read-after-write"
        ]
        assert len(findings) == 1
        assert "'ack'" in findings[0].message
        assert "no yield" in findings[0].message

    def test_planted_wait_free_loop_detected(self):
        findings = [
            f for f in self._findings() if f.rule == "race.wait-free-loop"
        ]
        assert len(findings) == 1
        assert "Spinner.run" in findings[0].message

    def test_single_writer_class_is_not_flagged(self):
        # Turn the second driver into a reader: the remaining rules
        # still fire, the multi-driver one does not.
        source = RACY_FIXTURE.replace("req.write(False)", "req.read()")
        assert _rules(self._findings(source)) == {
            "race.read-after-write",
            "race.wait-free-loop",
        }

    def test_inline_suppression_allows_a_finding(self):
        source = RACY_FIXTURE.replace(
            '        self.req = Signal(False, "req", sim)',
            "        # repro: allow[race.multi-driver] fixture exercises"
            " the suppression syntax\n"
            '        self.req = Signal(False, "req", sim)',
        )
        findings, _ = analyze_sources(
            {"fixture.py": source}, "fixture.py", model="fixture"
        )
        findings = apply_suppressions(
            findings, {"fixture.py": source.splitlines()}
        )
        suppressed = [f for f in findings if f.rule == "race.multi-driver"]
        assert len(suppressed) == 1
        assert suppressed[0].suppressed is True
        assert "suppression syntax" in suppressed[0].suppression_reason
        report = AnalysisReport(findings=suppressed)
        assert report.ok


class TestPropertyLinter:
    def test_vacuous_implication_detected(self):
        rules = _rules(lint_properties(["assert always {a && !a} |-> {b};"]))
        assert "prop.vacuity" in rules
        assert "prop.dead-atom" in rules

    def test_unreachable_automaton_state_detected(self):
        rules = _rules(lint_properties(["assert never {a ; (a && !a) ; b};"]))
        assert "prop.unreachable-state" in rules

    def test_tautological_never_detected(self):
        assert "prop.tautology" in _rules(
            lint_properties(["assert never {a && !a};"])
        )

    def test_boolean_tautology_and_contradiction(self):
        assert _rules(lint_properties(["assert always (b || !b);"])) == {
            "prop.tautology"
        }
        assert _rules(lint_properties(["assert never (b && !b);"])) == {
            "prop.tautology"
        }

    def test_uncoverable_cover_is_a_contradiction(self):
        assert "prop.contradiction" in _rules(
            lint_properties(["cover {a && !a};"])
        )

    def test_unknown_signal_needs_a_namespace(self):
        text = "assert never (zzz && a);"
        assert _rules(lint_properties([text])) == set()
        findings = lint_properties([text], namespace={"a"})
        assert _rules(findings) == {"prop.unknown-signal"}
        assert "zzz" in findings[0].message

    def test_healthy_property_is_clean(self):
        assert lint_properties(
            ["assert always {req} |-> {gnt};"], namespace={"req", "gnt"}
        ) == []


class TestDeltaWitness:
    def _racy_simulator(self):
        sim = Simulator("witness-test")
        sig = Signal(False, "shared", sim)

        def writer_a():
            while True:
                sig.write(True)
                yield 10

        def writer_b():
            while True:
                sig.write(False)
                yield 10

        sim.thread(writer_a, "writer_a")
        sim.thread(writer_b, "writer_b")
        return sim

    def test_witness_catches_same_delta_two_writer_race(self):
        sim = self._racy_simulator()
        with DeltaWitness(sim) as witness:
            sim.run(50)
        assert [name for name, _ in witness.conflict_summaries()] == ["shared"]
        _, writers = witness.conflict_summaries()[0]
        assert "writer_a" in writers and "writer_b" in writers
        stats = witness.stats.to_json()
        assert stats["deltas"] > 0
        assert stats["writes"] >= 2 * stats["deltas"]

    def test_witness_restores_kernel_and_signal_seams(self):
        sim = self._racy_simulator()
        original_read, original_write = Signal.read, Signal.write
        with DeltaWitness(sim):
            assert sim.witness is not None
            assert Signal.read is not original_read
        assert Signal.read is original_read
        assert Signal.write is original_write
        assert sim.witness is None
        assert not sim.on_delta

    def test_witness_is_exclusive(self):
        sim = self._racy_simulator()
        with DeltaWitness(sim):
            with pytest.raises(RuntimeError):
                DeltaWitness(Simulator("other")).__enter__()


class TestShippedModelsAndDigests:
    def test_shipped_models_analyze_clean(self):
        report = analyze_models()
        assert report.ok, report.render()
        # the shipped findings exist but every one carries a justified
        # suppression
        assert report.findings
        assert all(f.suppressed for f in report.findings)
        assert all(f.suppression_reason for f in report.findings)

    def test_digest_is_stable_across_runs(self):
        first = analyze_models()
        second = analyze_models()
        assert first.digest() == second.digest()
        assert json.dumps(first.to_json()["findings"]) == json.dumps(
            second.to_json()["findings"]
        )

    @pytest.mark.slow
    def test_witness_mode_keeps_the_digest(self):
        static = analyze_models()
        witnessed = analyze_models(witness=True, witness_cycles=50)
        assert static.digest() == witnessed.digest()
        # the witness leaves its trace in the (non-digested) facts
        for facts in witnessed.facts["models"].values():
            assert "witness" in facts
            assert facts["witness"]["deltas"] > 0

    def test_report_findings_are_canonically_sorted(self):
        report = analyze_models()
        keys = [f.sort_key() for f in report.findings]
        assert keys == sorted(keys)


class TestWorkbenchStage:
    def test_analyze_is_a_planable_stage(self):
        assert "analyze" in STAGE_NAMES

    def test_analyze_stage_passes_on_shipped_model(self):
        result = Workbench("master_slave", seed=7).analyze()
        assert result.status is StageStatus.PASSED
        assert result.data["unsuppressed"] == 0
        assert result.data["findings_digest"]
        assert "race.multi-driver" in result.data["rules"]
        # witness stats and passes live in metrics, outside the digest
        assert "facts" in result.metrics

    @pytest.mark.slow
    def test_session_digest_invariant_with_analyze_stage(self):
        plan = VerificationPlan(
            name="analyze-then-regress",
            stages=(
                StageCall.of("analyze"),
                StageCall.of("regress", scenarios=2, cycles=150),
            ),
        )
        digests = set()
        for workers in (1, 2):
            staged = VerificationPlan(
                name=plan.name,
                stages=(
                    plan.stages[0],
                    StageCall.of("regress", scenarios=2, cycles=150,
                                 workers=workers),
                ),
            )
            report = Workbench("master_slave", seed=11).run_plan(staged)
            assert report.ok, report.summary()
            digests.add(report.digest())
        assert len(digests) == 1


class TestCliAndMetrics:
    def test_cli_analyze_json_gates_clean(self, capsys):
        assert repro_main(["analyze", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["digest"]
        assert {f["model"] for f in doc["findings"]} == {"master_slave", "pci"}

    def test_cli_analyze_single_model_renders(self, capsys):
        assert repro_main(["analyze", "--model", "pci"]) == 0
        out = capsys.readouterr().out
        assert "allowed" in out

    def test_finding_counters_flow_through_obs(self):
        try:
            enable_metrics()
            duv = default_registry().get("master_slave")
            report = analyze_duv(duv)
            counters = OBS.metrics.to_json()["counters"]
            key = metric_name(
                "analyze.findings", rule="race.multi-driver",
                model="master_slave",
            )
            assert counters[key] == float(
                report.rule_counts()["race.multi-driver"]
            )
        finally:
            runtime.disable()

    @pytest.mark.slow
    def test_witness_counters_flow_through_obs(self):
        try:
            enable_metrics()
            duv = default_registry().get("master_slave")
            analyze_duv(duv, witness=True, witness_cycles=50)
            counters = OBS.metrics.to_json()["counters"]
            deltas = counters[
                metric_name("analyze.witness.deltas", model="master_slave")
            ]
            assert deltas > 0
        finally:
            runtime.disable()

    def test_metrics_never_touch_the_findings_digest(self):
        baseline = analyze_models(names=["master_slave"]).digest()
        try:
            enable_metrics()
            instrumented = analyze_models(names=["master_slave"]).digest()
        finally:
            runtime.disable()
        assert instrumented == baseline


class TestFindingPrimitives:
    def test_finding_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            Finding(rule="x", severity="fatal", path="p.py", line=1,
                    message="m")

    def test_report_round_trips_to_json(self):
        finding = Finding(rule="race.multi-driver", severity="error",
                          path="p.py", line=3, message="two drivers")
        report = AnalysisReport(findings=[finding])
        doc = report.to_json()
        assert doc["ok"] is False
        assert doc["rules"] == {"race.multi-driver": 1}
        assert doc["findings"][0]["path"] == "p.py"
        assert doc["findings"][0]["line"] == 3
        assert finding.location() == "p.py:3"
