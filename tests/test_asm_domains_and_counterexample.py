"""Tests for finite domains (rule R4) and counterexample objects."""

import pytest

from repro.asm import ActionCall, Domain, DomainError, cartesian_product
from repro.asm.state import Location, StateKey
from repro.explorer import Counterexample, CounterexampleStep, ExplorationConfig, explore


class TestDomain:
    def test_of_and_membership(self):
        domain = Domain.of("cmd", "READ", "WRITE")
        assert domain.is_static
        assert domain.contains("READ")
        assert not domain.contains("ERASE")
        assert domain.size() == 2

    def test_int_range(self):
        domain = Domain.int_range("idx", 0, 3)
        assert list(domain.values()) == [0, 1, 2, 3]

    def test_boolean(self):
        assert tuple(Domain.boolean().values()) == (False, True)

    def test_empty_rejected(self):
        with pytest.raises(DomainError):
            Domain.of("none")
        with pytest.raises(DomainError):
            Domain.int_range("bad", 5, 2)

    def test_needs_exactly_one_source(self):
        with pytest.raises(DomainError):
            Domain("both", values=[1], provider=lambda m: [1])
        with pytest.raises(DomainError):
            Domain("neither")

    def test_dynamic_domain_uses_model(self):
        domain = Domain.dynamic("owners", lambda model: range(model["n"]))
        assert list(domain.values({"n": 2})) == [0, 1]
        assert not domain.is_static

    def test_restrict_static(self):
        domain = Domain.int_range("idx", 0, 5).restrict(lambda v: v % 2 == 0)
        assert list(domain.values()) == [0, 2, 4]

    def test_restrict_to_empty_rejected(self):
        with pytest.raises(DomainError):
            Domain.int_range("idx", 1, 3).restrict(lambda v: v > 10)

    def test_restrict_dynamic(self):
        domain = Domain.dynamic("d", lambda m: range(4)).restrict(
            lambda v: v < 2
        )
        assert list(domain.values(None)) == [0, 1]

    def test_cartesian_product(self):
        product = cartesian_product(
            [Domain.int_range("a", 0, 1), Domain.of("b", "x", "y")]
        )
        assert product == [(0, "x"), (0, "y"), (1, "x"), (1, "y")]

    def test_cartesian_product_empty_domain_list(self):
        assert cartesian_product([]) == [()]

    def test_repr_preview(self):
        text = repr(Domain.int_range("big", 0, 100))
        assert "..." in text


class TestCounterexampleObject:
    def make(self) -> Counterexample:
        key0 = StateKey([(Location("m", "x"), 0)])
        key1 = StateKey([(Location("m", "x"), 1)])
        key2 = StateKey([(Location("m", "x"), 2)])
        return Counterexample(
            property_name="p",
            steps=(
                CounterexampleStep(None, key0),
                CounterexampleStep(ActionCall("m", "step", (1,)), key1),
                CounterexampleStep(ActionCall("m", "step", (2,)), key2),
            ),
        )

    def test_length_counts_transitions(self):
        assert self.make().length == 2

    def test_calls_skip_initial(self):
        calls = self.make().calls()
        assert [c.args for c in calls] == [(1,), (2,)]

    def test_final_state(self):
        assert self.make().final_state().value("m", "x") == 2

    def test_describe_mentions_property_and_steps(self):
        text = self.make().describe()
        assert "property 'p'" in text
        assert "m.step(1)" in text
        assert "(initial)" in text

    def test_replay_on_real_model(self, broken_arbiter_model):
        from test_explorer_engine import MutexProperty

        result = explore(
            broken_arbiter_model,
            ExplorationConfig(properties=[MutexProperty()]),
        )
        cex = result.counterexample
        assert cex is not None
        # replay resets first, so replaying twice is idempotent
        cex.replay(broken_arbiter_model)
        first = broken_arbiter_model.full_state()
        cex.replay(broken_arbiter_model)
        assert broken_arbiter_model.full_state() == first

    def test_empty_counterexample_length(self):
        key0 = StateKey([(Location("m", "x"), 0)])
        cex = Counterexample("p", (CounterexampleStep(None, key0),))
        assert cex.length == 0
        assert cex.calls() == []
