"""The parallel regression runner and its flow-pipeline stage."""

import pytest

from repro.asm import AsmModel
from repro.flow import DesignFlow
from repro.psl import Property, parse_formula
from repro.scenarios.regression import (
    MODELS,
    RegressionRunner,
    ScenarioSpec,
    build_specs,
    run_scenario,
)
from repro.scenarios.scoreboard import FaultPlan
from conftest import ToyArbiter, ToyMaster


class TestSpecs:
    def test_build_specs_is_deterministic(self):
        assert build_specs(count=30) == build_specs(count=30)

    def test_build_specs_spreads_models_and_profiles(self):
        specs = build_specs(count=30)
        assert {s.model for s in specs} == set(MODELS)
        assert len({s.profile for s in specs}) > 1
        assert len({s.topology for s in specs}) > 2
        assert len({s.seed for s in specs}) == 30

    def test_spec_label(self):
        spec = ScenarioSpec("pci", 9, (2, 2), "bursty", 100)
        assert spec.label == "pci[2x2]#9/bursty"


class TestRunScenario:
    def test_verdict_ok_and_digests_stable(self):
        spec = ScenarioSpec("master_slave", 77, (1, 1, 2), "default", 250)
        first = run_scenario(spec)
        second = run_scenario(spec)
        assert first.ok, first.summary()
        assert first.transactions > 10
        assert first.stream_digest == second.stream_digest
        assert first.scoreboard_digest == second.scoreboard_digest
        assert dict(first.bin_hits) == dict(second.bin_hits)

    def test_verdict_with_monitors(self):
        spec = ScenarioSpec("pci", 5, (2, 2), "default", 250, with_monitors=True)
        verdict = run_scenario(spec)
        assert verdict.ok, verdict.summary()
        assert verdict.failed_assertions == ()

    def test_faulty_spec_fails(self):
        spec = ScenarioSpec(
            "master_slave", 5, (1, 1, 2), "default", 250,
            fault=FaultPlan("corrupt-read", unit=0, nth=2),
        )
        verdict = run_scenario(spec)
        assert not verdict.ok
        assert "data" in verdict.mismatch_kinds

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            run_scenario(ScenarioSpec("vme", 1, (1, 1), "default", 10))


class TestRunner:
    def test_two_worker_smoke_matches_inline_digest(self):
        specs = build_specs(count=8, cycles=150)
        inline = RegressionRunner(specs, workers=1).run()
        fanned = RegressionRunner(specs, workers=2).run()
        assert inline.ok, inline.summary()
        assert fanned.ok, fanned.summary()
        assert inline.digest() == fanned.digest()
        assert fanned.workers == 2
        assert fanned.throughput > 0

    def test_fail_fast_stops_early_inline(self):
        bad = ScenarioSpec(
            "master_slave", 3, (1, 1, 2), "default", 200,
            fault=FaultPlan("drop", unit=0, nth=1),
        )
        good = [
            ScenarioSpec("master_slave", 100 + i, (1, 1, 2), "default", 200)
            for i in range(5)
        ]
        report = RegressionRunner([bad] + good, workers=1, fail_fast=True).run()
        assert not report.ok
        assert report.stopped_early
        assert len(report.verdicts) == 1

    def test_fail_fast_under_multiprocessing(self):
        specs = [
            ScenarioSpec(
                "master_slave", 200 + i, (1, 1, 2), "default", 150,
                fault=FaultPlan("drop", unit=0, nth=1),
            )
            for i in range(6)
        ]
        report = RegressionRunner(specs, workers=2, fail_fast=True).run()
        assert not report.ok
        assert report.failed

    def test_report_aggregates(self):
        specs = build_specs(count=6, cycles=150)
        report = RegressionRunner(specs, workers=1).run()
        assert report.transactions == sum(v.transactions for v in report.verdicts)
        assert report.bin_totals()
        assert "scenario regression" in report.summary()


@pytest.mark.slow
class TestAtScale:
    def test_200_scenarios_across_both_models_multiprocessing(self):
        """Acceptance criterion: >= 200 seeded scenarios over both
        models under multiprocessing with zero scoreboard mismatches."""
        specs = build_specs(models=list(MODELS), count=200, cycles=120)
        assert {s.model for s in specs} == set(MODELS)
        report = RegressionRunner(specs, workers=4).run()
        assert len(report.verdicts) == 200
        assert report.ok, report.summary()
        assert sum(len(v.mismatches) for v in report.verdicts) == 0
        assert report.transactions > 2000


class TestFlowStage:
    """The regression stage rides behind any design's Figure 1 flow;
    a toy arbiter keeps the formal and ABV legs fast."""

    def _flow(self, specs):
        def factory() -> AsmModel:
            model = AsmModel("toy")
            ToyMaster(model=model, name="m0")
            ToyMaster(model=model, name="m1")
            ToyArbiter(model=model, name="arbiter")
            model.seal()
            return model

        mutex = Property("mutex", parse_formula("never (m0.m_gnt && m1.m_gnt)"))
        # the shim's deprecation warning is asserted, never leaked (the
        # pytest filterwarnings config errors on a bare one)
        with pytest.warns(DeprecationWarning, match="DesignFlow is deprecated"):
            return DesignFlow(
                model_factory=factory,
                directives=[mutex],
                scenario_specs=specs,
                scenario_workers=1,
            )

    def test_flow_runs_scenario_regression_stage(self):
        specs = build_specs(count=4, cycles=150)
        report = self._flow(specs).run(cycles=300)
        assert report.ok
        assert report.regression is not None
        assert report.regression.ok
        assert len(report.regression.verdicts) == 4
        assert "scenario regression" in report.summary()

    def test_flow_fails_when_regression_fails(self):
        specs = [
            ScenarioSpec(
                "master_slave", 1, (1, 1, 2), "default", 150,
                fault=FaultPlan("drop", unit=0, nth=1),
            )
        ]
        report = self._flow(specs).run(cycles=300)
        assert report.regression is not None
        assert not report.regression.ok
        assert not report.ok

    def test_flow_without_specs_skips_stage(self):
        report = self._flow(()).run(cycles=300)
        assert report.regression is None
        assert report.ok
