"""Tests for class diagrams, use cases, and UML -> ASM generation."""

import pytest

from repro.asm import ActionCall, AsmModel, Domain
from repro.explorer import ExplorationConfig, explore
from repro.uml import (
    Actor,
    Association,
    AssociationKind,
    Attribute,
    ClassDiagram,
    MappingError,
    Operation,
    Parameter,
    UmlClass,
    UmlError,
    UseCase,
    UseCaseDiagram,
    class_to_asm_source,
    diagram_to_asm_source,
    materialize,
)


def pci_like_diagram() -> ClassDiagram:
    diagram = ClassDiagram("pci")
    arbiter = diagram.new_class("Arbiter", stereotype="sc_module")
    arbiter.add_attribute(Attribute("m_req", "Boolean", False))
    arbiter.add_attribute(Attribute("m_gnt", "Boolean", False))
    arbiter.add_attribute(Attribute("m_active", "Integer", -1))
    arbiter.add_operation(
        Operation(
            "update_req",
            preconditions=("not self.m_req and not self.m_gnt",),
            doc="Figure 4's guarded update",
        )
    )
    arbiter.add_operation(
        Operation("grant", preconditions=("self.m_req and not self.m_gnt",))
    )
    master = diagram.new_class("Master")
    master.add_attribute(Attribute("m_req", "Boolean", False))
    master.add_operation(Operation("request", preconditions=("not self.m_req",)))
    diagram.add_association(
        Association("Master", "Arbiter", AssociationKind.ASSOCIATION, "1..*", "1")
    )
    return diagram


class TestClassDiagram:
    def test_construction(self):
        diagram = pci_like_diagram()
        assert len(diagram) == 2
        assert diagram.class_("Arbiter").attribute("m_req").type_name == "Boolean"
        assert diagram.class_("Arbiter").operation("grant").preconditions

    def test_duplicate_class_rejected(self):
        diagram = pci_like_diagram()
        with pytest.raises(UmlError):
            diagram.new_class("Arbiter")

    def test_duplicate_attribute_rejected(self):
        cls = UmlClass("C")
        cls.add_attribute(Attribute("x", "Integer"))
        with pytest.raises(UmlError):
            cls.add_attribute(Attribute("x", "Boolean"))

    def test_unknown_type_rejected(self):
        with pytest.raises(UmlError):
            Attribute("x", "Quaternion")

    def test_association_endpoints_checked(self):
        diagram = pci_like_diagram()
        with pytest.raises(UmlError):
            diagram.add_association(Association("Ghost", "Arbiter"))

    def test_generalization_query(self):
        diagram = pci_like_diagram()
        diagram.new_class("FastMaster").add_attribute(
            Attribute("m_turbo", "Boolean")
        )
        diagram.add_association(
            Association("FastMaster", "Master", AssociationKind.GENERALIZATION)
        )
        specials = diagram.specializations_of("Master")
        assert [c.name for c in specials] == ["FastMaster"]

    def test_rendering(self):
        text = str(pci_like_diagram())
        assert "<<sc_module>> Arbiter" in text
        assert "- m_req : Boolean" in text

    def test_validation_flags_empty_class(self):
        diagram = ClassDiagram("d")
        diagram.new_class("Empty")
        assert diagram.validate()


class TestUseCases:
    def test_structure_and_validation(self):
        diagram = UseCaseDiagram("verification")
        diagram.add_actor(Actor("Testbench"))
        diagram.add_use_case(UseCase("run_transaction", actors=["Testbench"]))
        diagram.add_use_case(
            UseCase("arbitrate", actors=["Testbench"], includes=["run_transaction"])
        )
        assert diagram.validate() == []

    def test_unknown_actor_rejected(self):
        diagram = UseCaseDiagram("v")
        with pytest.raises(UmlError):
            diagram.add_use_case(UseCase("u", actors=["Nobody"]))

    def test_missing_include_flagged(self):
        diagram = UseCaseDiagram("v")
        diagram.add_actor(Actor("T"))
        diagram.add_use_case(UseCase("u", actors=["T"], includes=["ghost"]))
        assert any("ghost" in f for f in diagram.validate())


class TestAsmSourceGeneration:
    def test_class_source_shape(self):
        source = class_to_asm_source(pci_like_diagram().class_("Arbiter"))
        assert "class Arbiter(AsmMachine):" in source
        assert "m_req = StateVar(False)" in source
        assert "@action" in source
        assert "require(not self.m_req and not self.m_gnt)" in source

    def test_diagram_source_compiles(self):
        source = diagram_to_asm_source(pci_like_diagram())
        namespace: dict = {}
        exec(compile(source, "<generated>", "exec"), namespace)  # noqa: S102
        assert "Arbiter" in namespace
        assert "Master" in namespace

    def test_empty_class_renders_pass(self):
        assert "pass" in class_to_asm_source(UmlClass("Empty"))


class TestMaterialization:
    def test_materialized_state_and_actions(self):
        classes = materialize(pci_like_diagram())
        model = AsmModel()
        arbiter = classes["Arbiter"](model=model, name="arbiter")
        model.seal()
        assert arbiter.m_req is False
        ok, _ = model.try_execute(ActionCall("arbiter", "update_req"))
        assert ok

    def test_preconditions_enforced(self):
        classes = materialize(pci_like_diagram())
        model = AsmModel()
        arbiter = classes["Arbiter"](model=model, name="arbiter")
        model.seal()
        arbiter.m_req = True
        ok, _ = model.try_execute(ActionCall("arbiter", "update_req"))
        assert not ok
        ok, _ = model.try_execute(ActionCall("arbiter", "grant"))
        assert ok

    def test_behavior_hook_dispatch(self):
        classes = materialize(pci_like_diagram())

        class RefinedArbiter(classes["Arbiter"]):
            def on_update_req(self):
                self.m_req = True
                return "refined"

        model = AsmModel()
        arbiter = RefinedArbiter(model=model, name="arbiter")
        model.seal()
        result = model.execute(ActionCall("arbiter", "update_req"))
        assert result == "refined"
        assert arbiter.m_req is True

    def test_invalid_precondition_rejected(self):
        cls = UmlClass("Bad")
        cls.add_operation(Operation("op", preconditions=("def )(",)))
        with pytest.raises(MappingError):
            materialize_one = __import__(
                "repro.uml.to_asm", fromlist=["materialize_class"]
            ).materialize_class(cls)

    def test_materialized_class_explorable(self):
        classes = materialize(pci_like_diagram())

        class LiveArbiter(classes["Arbiter"]):
            """Refined at the ASM level (the paper's refinement step)."""

            def on_update_req(self):
                self.m_req = True

            def on_grant(self):
                self.m_req = False
                self.m_gnt = True

        model = AsmModel("uml_generated")
        LiveArbiter(model=model, name="arbiter")
        classes["Master"](model=model, name="master0")
        model.seal()
        result = explore(model, ExplorationConfig(max_states=100))
        assert result.fsm.state_count() >= 3

    def test_operation_with_parameters(self):
        cls = UmlClass("Channel")
        cls.add_attribute(Attribute("m_last", "Integer", 0))
        cls.add_operation(
            Operation(
                "send",
                parameters=(Parameter("value", "Integer"),),
                preconditions=("value >= 0",),
            )
        )
        from repro.uml.to_asm import materialize_class

        machine_cls = materialize_class(cls)
        model = AsmModel()
        channel = machine_cls(model=model, name="ch")
        model.seal()
        calls = list(
            model.candidate_calls(
                extra_domains={"value": Domain.int_range("v", -1, 1)}
            )
        )
        enabled = [c for c in calls if model.try_execute(c)[0]]
        assert [c.args for c in enabled] == [(0,), (1,)]
