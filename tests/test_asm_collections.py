"""Unit tests for the immutable AsmL collections."""

import pytest

from repro.asm import AsmSet, Map, NoChoiceError, Seq, freeze


class TestSeq:
    def test_construction_and_equality(self):
        assert Seq([1, 2, 3]) == (1, 2, 3)
        assert Seq() == ()

    def test_add_is_functional(self):
        base = Seq([1])
        extended = base.add(2)
        assert base == (1,)
        assert extended == (1, 2)

    def test_prepend_concat(self):
        assert Seq([2]).prepend(1) == (1, 2)
        assert Seq([1]).concat([2, 3]) == (1, 2, 3)

    def test_replace_remove(self):
        assert Seq([1, 2, 3]).replace_at(1, 9) == (1, 9, 3)
        assert Seq([1, 2, 3]).remove_at(0) == (2, 3)
        assert Seq([1, 2, 1]).remove_value(1) == (2, 1)
        assert Seq([1]).remove_value(9) == (1,)

    def test_head_tail_last(self):
        items = Seq([1, 2, 3])
        assert items.head() == 1
        assert items.tail() == (2, 3)
        assert items.last() == 3

    def test_head_of_empty_raises(self):
        with pytest.raises(NoChoiceError):
            Seq().head()
        with pytest.raises(NoChoiceError):
            Seq().tail()

    def test_take_drop(self):
        assert Seq([1, 2, 3]).take(2) == (1, 2)
        assert Seq([1, 2, 3]).drop(2) == (3,)

    def test_indexof(self):
        assert Seq(["a", "b"]).indexof("b") == 1
        assert Seq(["a"]).indexof("z") == -1

    def test_where_select(self):
        assert Seq([1, 2, 3, 4]).where(lambda x: x % 2 == 0) == (2, 4)
        assert Seq([1, 2]).select(lambda x: x * 10) == (10, 20)

    def test_slice_returns_seq(self):
        sliced = Seq([1, 2, 3])[0:2]
        assert isinstance(sliced, Seq)

    def test_add_operator(self):
        assert isinstance(Seq([1]) + [2], Seq)

    def test_hashable(self):
        assert len({Seq([1]), Seq([1]), Seq([2])}) == 2


class TestAsmSet:
    def test_functional_updates(self):
        base = AsmSet({1, 2})
        assert base.add_element(3) == AsmSet({1, 2, 3})
        assert base.remove_element(1) == AsmSet({2})
        assert base == AsmSet({1, 2})

    def test_where_select(self):
        assert AsmSet({1, 2, 3}).where(lambda x: x > 1) == AsmSet({2, 3})
        assert AsmSet({1, 2}).select(lambda x: x * 2) == AsmSet({2, 4})

    def test_is_frozenset(self):
        assert isinstance(AsmSet({1}), frozenset)


class TestMap:
    def test_lookup(self):
        mapping = Map({1: "a", 2: "b"})
        assert mapping[1] == "a"
        assert len(mapping) == 2
        assert set(mapping) == {1, 2}

    def test_set_is_functional(self):
        base = Map({1: "a"})
        updated = base.set(2, "b")
        assert 2 not in base
        assert updated[2] == "b"

    def test_remove_merge(self):
        base = Map({1: "a", 2: "b"})
        assert 1 not in base.remove(1)
        assert base.merge({3: "c"})[3] == "c"
        assert base.remove(99) == base

    def test_equality_is_structural(self):
        assert Map({1: "a", 2: "b"}) == Map({2: "b", 1: "a"})
        assert Map({1: "a"}) == {1: "a"}

    def test_hash_stable_across_insertion_order(self):
        assert hash(Map({1: "a", 2: "b"})) == hash(Map({2: "b", 1: "a"}))


class TestFreeze:
    def test_freezes_nested_containers(self):
        frozen = freeze({"k": [1, {2, 3}, {"n": [4]}]})
        assert isinstance(frozen, Map)
        inner = frozen["k"]
        assert isinstance(inner, Seq)
        assert isinstance(inner[1], AsmSet)
        assert isinstance(inner[2], Map)
        assert isinstance(inner[2]["n"], Seq)

    def test_freeze_is_idempotent(self):
        once = freeze([1, 2])
        assert freeze(once) is once

    def test_scalars_pass_through(self):
        assert freeze(5) == 5
        assert freeze("text") == "text"

    def test_frozen_values_hashable(self):
        hash(freeze({"a": [1, 2], "b": {3}}))
