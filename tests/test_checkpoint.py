"""The differential checkpoint suite (this PR's CI gate).

The contract under test: ``restore(snapshot(T)) + k cycles`` is
*byte-identical* to ``run(T + k)`` -- same transaction stream, same
scoreboard, same monitor verdicts, same report digest -- for both
shipped scenario models, both PSL stepping engines, at any quiescent
snapshot boundary, whether the resumed run executes serially or in
fresh shard subprocesses.  Around it: the wire form's typed rejection
taxonomy (Hypothesis round trips included), crash-safe persistence,
and the frontier planner the directed-closure loop forks from.
"""

import json
import os
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import (
    SPILL_DIR_ENV,
    WIRE_VERSION,
    Checkpoint,
    CheckpointError,
    CheckpointFormatError,
    CheckpointIntegrityError,
    CheckpointStateError,
    CheckpointVersionError,
    UnknownCheckpointError,
    ensure_spill_dir,
    global_registry,
    load_checkpoint,
    reset_global_registry,
    restore_scenario,
    restore_system,
    save_checkpoint,
    snapshot_scenario_run,
    snapshot_system,
)
from repro.checkpoint.snapshot import WIRE_KIND
from repro.dispatch import ShardDispatcher
from repro.explorer.goal_planner import GoalPlanner, walk_fsm_events
from repro.psl.compiled import ENGINES
from repro.scenarios.regression import (
    RegressionRunner,
    ScenarioSpec,
    run_scenario,
)
from repro.workbench import SerialEngine, Workbench

CYCLES = 120

#: One monitored, fsm-tracked spec per shipped model: the differential
#: runs compare *everything* a verdict carries (stream, scoreboard,
#: monitor verdicts, reconstructed FSM events).
MONITORED_SPECS = {
    "master_slave": ScenarioSpec(
        "master_slave", 2005, (2, 2, 2), "bursty", CYCLES,
        None, True, (), True,
    ),
    "pci": ScenarioSpec(
        "pci", 2011, (2, 2), "default", CYCLES, None, True, (), True,
    ),
}


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Isolate every test from the process-global checkpoint registry."""
    reset_global_registry()
    yield
    reset_global_registry()


def _comparable(verdict):
    """A verdict's full wire form minus wall time and resume plumbing
    (the only fields allowed to differ between a resumed and an
    uninterrupted run)."""
    doc = verdict.to_json()
    doc.pop("wall_seconds")
    for key in ("resume_from", "checkpoint_at"):
        doc["spec"].pop(key, None)
    return doc


_BASELINES = {}


def _baseline(model, engine):
    """The uninterrupted run's verdict, cached per (model, engine)."""
    key = (model, engine)
    if key not in _BASELINES:
        _BASELINES[key] = _comparable(run_scenario(MONITORED_SPECS[model]))
    return _BASELINES[key]


class TestRestoreEquivalence:
    """snapshot at T -> restore -> run to T+k == uninterrupted run."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("model", sorted(MONITORED_SPECS))
    @pytest.mark.parametrize("snap_at", (1, 60, CYCLES - 1))
    def test_resume_matches_uninterrupted(
        self, model, snap_at, engine, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PSL_ENGINE", engine)
        spec = MONITORED_SPECS[model]
        checkpoint = snapshot_scenario_run(
            replace(spec, cycles=snap_at), snap_at
        )
        digest = global_registry().put(checkpoint)
        resumed = _comparable(run_scenario(replace(spec, resume_from=digest)))
        assert resumed == _baseline(model, engine)

    def test_snapshot_crosses_psl_engines(self, monkeypatch):
        """Monitor state travels as replayed letters, so a snapshot
        taken under one stepping engine restores under the other."""
        spec = MONITORED_SPECS["master_slave"]
        monkeypatch.setenv("REPRO_PSL_ENGINE", "compiled")
        checkpoint = snapshot_scenario_run(replace(spec, cycles=60), 60)
        digest = global_registry().put(checkpoint)
        monkeypatch.setenv("REPRO_PSL_ENGINE", "interpreted")
        resumed = _comparable(run_scenario(replace(spec, resume_from=digest)))
        assert resumed == _baseline("master_slave", "interpreted")

    def test_fresh_process_restore_serial_vs_sharded(
        self, tmp_path, monkeypatch
    ):
        """Resumed specs produce the baseline report digest both on the
        serial engine and across shard *subprocesses* that rebuild the
        checkpoints from the spilled wire files."""
        monkeypatch.setenv(SPILL_DIR_ENV, str(tmp_path / "spill"))
        reset_global_registry()
        resumed = []
        for model in sorted(MONITORED_SPECS):
            spec = MONITORED_SPECS[model]
            checkpoint = snapshot_scenario_run(replace(spec, cycles=60), 60)
            digest = global_registry().put(checkpoint)
            resumed.append(replace(spec, resume_from=digest))
        ensure_spill_dir()
        baseline = RegressionRunner(
            list(MONITORED_SPECS.values()), engine=SerialEngine()
        ).run()
        serial = RegressionRunner(resumed, engine=SerialEngine()).run()
        sharded = ShardDispatcher(resumed, shards=2).run().report
        assert serial.digest() == baseline.digest()
        assert sharded.digest() == baseline.digest()

    def test_directed_goals_resume_too(self):
        """A fork can swap the stimulus: resuming with *different* goals
        re-arms the sequence instead of replaying the original items."""
        from repro.scenarios.directed import TransactionGoal

        spec = ScenarioSpec(
            "master_slave", 2005, (1, 1, 2), "default", 80, track_fsm=True
        )
        checkpoint = snapshot_scenario_run(spec, 80)
        digest = global_registry().put(checkpoint)
        goals = (TransactionGoal(unit=0, target=0, is_write=True, burst=1),)
        forked = run_scenario(
            replace(
                spec, cycles=96, goals=goals, profile="directed",
                resume_from=digest,
            )
        )
        assert forked.ok
        assert forked.cycles == 96
        assert forked.fsm_events  # the forked stimulus actually drove


class TestRestoreGuards:
    """Typed refusals: a checkpoint never restores into the wrong run."""

    def _checkpoint(self):
        spec = ScenarioSpec("master_slave", 2005, (1, 1, 2), "default", 60)
        return spec, snapshot_scenario_run(replace(spec, cycles=30), 30)

    def test_pinned_field_mismatch_rejected(self):
        spec, checkpoint = self._checkpoint()
        with pytest.raises(CheckpointStateError, match="seed"):
            restore_scenario(replace(spec, seed=7), checkpoint)
        with pytest.raises(CheckpointStateError, match="topology"):
            restore_scenario(replace(spec, topology=(2, 1, 3)), checkpoint)

    def test_total_cycles_below_checkpoint_rejected(self):
        spec, checkpoint = self._checkpoint()
        with pytest.raises(CheckpointStateError, match="already ran"):
            restore_scenario(replace(spec, cycles=10), checkpoint)

    def test_unknown_digest_rejected(self):
        spec, checkpoint = self._checkpoint()
        global_registry().put(checkpoint)
        with pytest.raises(UnknownCheckpointError, match="unknown"):
            run_scenario(replace(spec, resume_from="0" * 64))


class TestWireTaxonomy:
    """Corrupt, truncated and stale wire forms are rejected, typed."""

    @pytest.fixture(scope="class")
    def checkpoint(self):
        return snapshot_scenario_run(
            ScenarioSpec("master_slave", 2005, (1, 1, 2), "default", 40), 40
        )

    def test_round_trip_preserves_the_digest(self, checkpoint):
        wire = json.loads(json.dumps(checkpoint.to_json()))
        again = Checkpoint.from_json(wire)
        assert again.digest == checkpoint.digest
        assert again.canonical_payload() == checkpoint.canonical_payload()

    def test_corrupt_payload_rejected(self, checkpoint):
        doc = checkpoint.to_json()
        doc["payload"]["txn_next"] += 1
        with pytest.raises(CheckpointIntegrityError, match="digest mismatch"):
            Checkpoint.from_json(doc)

    def test_truncated_payload_rejected(self, checkpoint):
        doc = checkpoint.to_json()
        del doc["payload"]["signals"]
        with pytest.raises(CheckpointFormatError, match="malformed"):
            Checkpoint.from_json(doc)

    def test_newer_version_rejected(self, checkpoint):
        doc = checkpoint.to_json()
        doc["version"] = WIRE_VERSION + 1
        with pytest.raises(CheckpointVersionError, match="newer"):
            Checkpoint.from_json(doc)

    def test_non_checkpoint_documents_rejected(self):
        with pytest.raises(CheckpointFormatError, match="object"):
            Checkpoint.from_json([1, 2, 3])
        with pytest.raises(CheckpointFormatError, match="kind"):
            Checkpoint.from_json({"kind": "something-else"})
        with pytest.raises(CheckpointFormatError, match="version"):
            Checkpoint.from_json({"kind": WIRE_KIND, "version": "1"})
        with pytest.raises(CheckpointFormatError, match="payload"):
            Checkpoint.from_json(
                {"kind": WIRE_KIND, "version": WIRE_VERSION}
            )

    def test_every_rejection_is_one_taxonomy(self):
        for klass in (
            CheckpointFormatError,
            CheckpointVersionError,
            CheckpointIntegrityError,
            CheckpointStateError,
            UnknownCheckpointError,
        ):
            assert issubclass(klass, CheckpointError)


class TestAtomicPersistence:
    """Satellite fix: a crash mid-write never leaves a half-checkpoint
    that restore would accept."""

    def _checkpoints(self):
        spec = ScenarioSpec("master_slave", 2005, (1, 1, 2), "default", 40)
        return (
            snapshot_scenario_run(replace(spec, cycles=20), 20),
            snapshot_scenario_run(spec, 40),
        )

    def test_crash_before_rename_keeps_the_old_file(
        self, tmp_path, monkeypatch
    ):
        old, new = self._checkpoints()
        path = str(tmp_path / "run.ckpt")
        save_checkpoint(old, path)
        with monkeypatch.context() as patch:
            def crash(src, dst):
                raise OSError("disk went away before rename")

            patch.setattr(os, "replace", crash)
            with pytest.raises(OSError, match="went away"):
                save_checkpoint(new, path)
        # the old file is intact and no tempfile litter remains
        assert load_checkpoint(path).digest == old.digest
        leftovers = [
            name
            for name in os.listdir(tmp_path)
            if name.startswith(".checkpoint-")
        ]
        assert leftovers == []

    def test_half_written_file_is_rejected_not_restored(self, tmp_path):
        old, _ = self._checkpoints()
        text = json.dumps(old.to_json())
        path = tmp_path / "torn.ckpt"
        path.write_text(text[: len(text) // 2], encoding="utf-8")
        with pytest.raises(CheckpointFormatError, match="cannot read"):
            load_checkpoint(str(path))

    def test_registry_spill_round_trips_across_reset(self, tmp_path):
        from repro.checkpoint import CheckpointRegistry

        old, _ = self._checkpoints()
        first = CheckpointRegistry(spill_dir=str(tmp_path))
        digest = first.put(old)
        # a second registry over the same directory (= a fresh worker
        # process) resolves the digest purely from disk
        second = CheckpointRegistry(spill_dir=str(tmp_path))
        assert second.get(digest).digest == digest
        with pytest.raises(UnknownCheckpointError):
            second.get("f" * 64)


class TestHypothesisRoundTrip:
    """Random prefixes: wire round trip and re-snapshot identity."""

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        prefix=st.integers(min_value=1, max_value=48),
        model=st.sampled_from(sorted(MONITORED_SPECS)),
    )
    def test_random_prefix_round_trips(self, seed, prefix, model):
        topology = (1, 1, 2) if model == "master_slave" else (1, 1)
        spec = ScenarioSpec(model, seed, topology, "default", prefix)
        checkpoint = snapshot_scenario_run(spec, prefix)
        wire = json.loads(json.dumps(checkpoint.to_json()))
        again = Checkpoint.from_json(wire)
        assert again.digest == checkpoint.digest
        # restoring the parsed wire form and re-snapshotting at the
        # same boundary reproduces the identical payload bytes
        system, harness = restore_system(again)
        resnap = snapshot_system(
            system, again.spec, again.cycles_run, harness=harness
        )
        assert resnap.digest == checkpoint.digest


@pytest.fixture(scope="module")
def ms_workbench():
    """One explored Master/Slave workbench shared by the planner tests."""
    workbench = Workbench("master_slave")
    workbench.explore()
    return workbench


class TestFrontierPlanning:
    """The planner side of frontier forking: origin choice, fallback,
    and the event walk's final-state bookkeeping."""

    def _planner(self, ms_workbench):
        fsm = ms_workbench._exploration.fsm
        edges = ms_workbench._residue.uncovered_transitions
        return fsm, GoalPlanner(fsm), edges

    def test_frontier_origin_wins_only_when_strictly_shorter(
        self, ms_workbench
    ):
        _, planner, edges = self._planner(ms_workbench)
        from_reset = {p.target_edge: p for p in planner.plan(edges)}
        plans = planner.plan(edges, frontier=[3, 5])
        forked = [p for p in plans if p.origin_state is not None]
        assert forked, "no plan adopted a frontier origin"
        for plan in forked:
            assert plan.origin_state in (3, 5)
            assert f"from s{plan.origin_state}" in plan.describe()
            baseline = from_reset.get(plan.target_edge)
            if baseline is not None:
                # a fork is only taken when strictly shorter than the
                # from-reset path, whose length it records
                assert len(plan.transitions) < len(baseline.transitions)
                assert plan.initial_steps == len(baseline.transitions)
        # goals that kept the initial origin plan the same path (the
        # greedy dedup may give the two rosters different edges, so
        # compare only the shared ones)
        for plan in plans:
            if plan.origin_state is None and plan.target_edge in from_reset:
                assert (
                    plan.transitions
                    == from_reset[plan.target_edge].transitions
                )

    def test_forked_plans_sort_after_from_reset_plans(self, ms_workbench):
        """Longest-first ordering pushes the (short) forked plans to the
        tail -- the property the workbench's max_goals exemption relies
        on."""
        _, planner, edges = self._planner(ms_workbench)
        plans = planner.plan(edges, frontier=[3, 5])
        lengths = [len(p.transitions) for p in plans]
        assert lengths == sorted(lengths, reverse=True)
        first_fork = next(
            i for i, p in enumerate(plans) if p.origin_state is not None
        )
        assert all(p.origin_state is not None for p in plans[first_fork:])

    def test_replan_from_initial_recovers_an_undrivable_fork(
        self, ms_workbench
    ):
        _, planner, edges = self._planner(ms_workbench)
        plans = planner.plan(edges, frontier=[3, 5])
        forked = [p for p in plans if p.origin_state is not None][0]
        fallback = planner.replan_from_initial(forked)
        assert fallback is not None
        assert fallback.origin_state is None
        assert fallback.target_edge == forked.target_edge
        assert fallback.initial_steps == len(fallback.transitions)
        assert fallback.transitions[-1].label() == (
            forked.transitions[-1].label()
        )

    def test_walk_final_state_tracks_the_frontier(self, ms_workbench):
        fsm, _, _ = self._planner(ms_workbench)
        initial = fsm.initial_states()[0].index
        assert walk_fsm_events(fsm, []).final_state == initial
        transition = next(
            t
            for t in fsm.outgoing(initial)
            if sum(
                1
                for o in fsm.outgoing(initial)
                if o.label() == t.label()
            )
            == 1
        )
        call = transition.call
        walk = walk_fsm_events(
            fsm, [(call.machine, call.action, tuple(call.args))]
        )
        assert walk.final_state == transition.target
        assert walk.steps_walked == 1

    def test_close_coverage_frontier_forks_and_saves_cycles(self):
        """End to end: with frontier forking on, later rounds fork
        checkpointed states and bank real cycle savings."""
        workbench = Workbench("master_slave")
        workbench.explore()
        result = workbench.close_coverage(
            rounds=2, cycles=160, max_goals=6, frontier=True
        )
        data = result.data
        assert data["frontier"] is True
        assert len(data["frontier_states"]) >= 1
        assert data["forked_goals"] >= 1
        assert data["cycles_saved"] > 0
        assert data["achieved"] >= 1
