"""Unit tests for the PSL lexer and parser."""

import pytest

from repro.psl import (
    DirectiveKind,
    FlAbort,
    FlAlways,
    FlAnd,
    FlBefore,
    FlClocked,
    FlEventually,
    FlIff,
    FlImplies,
    FlNever,
    FlNext,
    FlNextA,
    FlNextE,
    FlNextEvent,
    FlSere,
    FlSuffixImpl,
    FlUntil,
    PslParseError,
    SereAnd,
    SereConcat,
    SereFusion,
    SereGoto,
    SereNonConsec,
    SereOr,
    SereRepeat,
    parse_bool,
    parse_directive,
    parse_formula,
    parse_sere,
    parse_vunit,
)
from repro.psl.lexer import tokenize


class TestLexer:
    def test_merges_strong_suffix(self):
        tokens = tokenize("eventually! next! until!")
        assert [t.text for t in tokens] == ["eventually!", "next!", "until!"]

    def test_merges_inclusive_suffix(self):
        tokens = tokenize("until!_ a until_ b")
        assert tokens[0].text == "until!_"
        assert tokens[2].text == "until_"

    def test_identifier_with_underscore_not_mangled(self):
        tokens = tokenize("until_x")
        assert tokens[0].kind == "ident"
        assert tokens[0].text == "until_x"

    def test_multichar_operators(self):
        tokens = tokenize("|-> |=> <-> [* [+] [-> [=")
        assert [t.text for t in tokens] == ["|->", "|=>", "<->", "[*", "[+]", "[->", "[="]

    def test_comments_skipped(self):
        tokens = tokenize("a // line comment\n/* block */ b")
        assert [t.text for t in tokens] == ["a", "b"]

    def test_strings(self):
        tokens = tokenize('report "hello world"')
        assert tokens[1].kind == "string"
        assert tokens[1].text == "hello world"

    def test_position_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_bad_character(self):
        with pytest.raises(PslParseError):
            tokenize("a ` b")

    def test_dotted_names(self):
        tokens = tokenize("master0.m_req")
        assert tokens[0].text == "master0.m_req"


class TestFormulaParsing:
    def test_always_suffix_implication(self):
        formula = parse_formula("always {req} |=> {gnt}")
        assert isinstance(formula, FlAlways)
        assert isinstance(formula.operand, FlSuffixImpl)
        assert not formula.operand.overlapping

    def test_overlapping_implication(self):
        formula = parse_formula("{req} |-> {gnt}")
        assert isinstance(formula, FlSuffixImpl)
        assert formula.overlapping

    def test_implication_right_associative(self):
        formula = parse_formula("a -> b -> c")
        assert isinstance(formula, FlImplies)
        assert isinstance(formula.right, FlImplies)

    def test_iff(self):
        assert isinstance(parse_formula("always a <-> b"), FlIff) or True
        formula = parse_formula("(a) <-> (b)")
        assert isinstance(formula, FlIff)

    def test_until_family(self):
        f1 = parse_formula("busy until done")
        assert isinstance(f1, FlUntil) and not f1.strong and not f1.inclusive
        f2 = parse_formula("busy until! done")
        assert f2.strong
        f3 = parse_formula("busy until!_ done")
        assert f3.strong and f3.inclusive

    def test_before_family(self):
        formula = parse_formula("a before! b")
        assert isinstance(formula, FlBefore) and formula.strong

    def test_next_variants(self):
        assert isinstance(parse_formula("next a"), FlNext)
        strong = parse_formula("next! a")
        assert strong.strong
        counted = parse_formula("next[3] a")
        assert counted.count == 3
        window_a = parse_formula("next_a[1:4] a")
        assert isinstance(window_a, FlNextA)
        assert (window_a.low, window_a.high) == (1, 4)
        window_e = parse_formula("next_e![2:5] a")
        assert isinstance(window_e, FlNextE) and window_e.strong

    def test_next_event(self):
        formula = parse_formula("next_event(b)[2](p)")
        assert isinstance(formula, FlNextEvent)
        assert formula.count == 2

    def test_eventually_strong_only(self):
        assert isinstance(parse_formula("eventually! done"), FlEventually)

    def test_never(self):
        assert isinstance(parse_formula("never (a && b)"), FlNever)

    def test_abort(self):
        formula = parse_formula("(always p) abort reset")
        assert isinstance(formula, FlAbort)

    def test_clock_operator(self):
        formula = parse_formula("always p @ clk")
        assert isinstance(formula, FlClocked)

    def test_strong_sere_formula(self):
        formula = parse_formula("{a ; b}!")
        assert isinstance(formula, FlSere) and formula.strong

    def test_unary_binds_rightward(self):
        formula = parse_formula("always a -> b")
        assert isinstance(formula, FlAlways)
        assert isinstance(formula.operand, FlImplies)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(PslParseError):
            parse_formula("always p p")

    def test_fl_conjunction_of_temporal(self):
        formula = parse_formula("(always a) && (never b)")
        assert isinstance(formula, FlAnd)


class TestSereParsing:
    def test_concat(self):
        item = parse_sere("a ; b ; c")
        assert isinstance(item, SereConcat)
        assert len(item.parts) == 3

    def test_fusion(self):
        assert isinstance(parse_sere("a : b"), SereFusion)

    def test_or_and(self):
        assert isinstance(parse_sere("a | b"), SereOr)
        # between plain booleans, && binds at the Boolean layer (as in
        # real PSL); between braced sequences it is the SERE operator
        from repro.psl import And, SereBool

        boolean_and = parse_sere("a && b")
        assert isinstance(boolean_and, SereBool)
        assert isinstance(boolean_and.expr, And)
        both = parse_sere("{a ; b} && {c[*]}")
        assert isinstance(both, SereAnd) and both.length_matching
        loose = parse_sere("{a ; b} & c")
        assert isinstance(loose, SereAnd) and not loose.length_matching

    def test_repeat_forms(self):
        star = parse_sere("a[*]")
        assert isinstance(star, SereRepeat) and star.low == 0 and star.high is None
        plus = parse_sere("a[+]")
        assert plus.low == 1 and plus.high is None
        exact = parse_sere("a[*3]")
        assert exact.low == exact.high == 3
        ranged = parse_sere("a[*1:4]")
        assert (ranged.low, ranged.high) == (1, 4)
        unbounded = parse_sere("a[*2:inf]")
        assert unbounded.high is None

    def test_goto_and_nonconsec(self):
        goto = parse_sere("a[->2]")
        assert isinstance(goto, SereGoto) and goto.low == 2
        nc = parse_sere("a[=1:3]")
        assert isinstance(nc, SereNonConsec) and (nc.low, nc.high) == (1, 3)

    def test_goto_on_sequence_rejected(self):
        with pytest.raises(PslParseError):
            parse_sere("{a ; b}[->2]")

    def test_within_sugar(self):
        item = parse_sere("{a} within {c[*]}")
        assert isinstance(item, SereAnd)

    def test_nested_braces(self):
        item = parse_sere("{ {a ; b} | c }")
        assert isinstance(item, SereOr)


class TestBoolParsing:
    def test_precedence(self):
        expr = parse_bool("a || b && c")
        # && binds tighter than ||
        from repro.psl import Or

        assert isinstance(expr, Or)

    def test_comparison_and_arith(self):
        expr = parse_bool("count + 1 == limit * 2")
        from repro.psl import Compare

        assert isinstance(expr, Compare)

    def test_builtins(self):
        for text in ("rose(a)", "fell(a)", "stable(a)", "prev(a, 2)",
                     "countones(v)", "onehot(v)", "isunknown(a)"):
            parse_bool(text)

    def test_posedge_sugar(self):
        expr = parse_bool("posedge clk")
        assert str(expr) == "rose(clk)"

    def test_index(self):
        expr = parse_bool("v[3]")
        from repro.psl import Index

        assert isinstance(expr, Index)

    def test_unknown_builtin_rejected(self):
        with pytest.raises(Exception):
            parse_bool("frobnicate(a)")


class TestVunitParsing:
    SOURCE = """
    vunit pci_checks {
      property no_double_grant = never (gnt0 && gnt1);
      assert no_double_grant;
      assert always {req} |=> {gnt} report "grant must follow";
      assume never reset;
      cover {req ; gnt};
      restrict {!reset[*]};
    }
    """

    def test_structure(self):
        unit = parse_vunit(self.SOURCE)
        assert unit.name == "pci_checks"
        assert len(unit) == 5
        assert len(unit.asserts()) == 2
        assert len(unit.assumes()) == 1
        assert len(unit.covers()) == 1
        assert len(unit.restricts()) == 1

    def test_report_string_attached(self):
        unit = parse_vunit(self.SOURCE)
        named = [d for d in unit if d.prop.report]
        assert named and named[0].prop.report == "grant must follow"

    def test_named_property_reference(self):
        unit = parse_vunit(self.SOURCE)
        assert unit.get("no_double_grant").kind == DirectiveKind.ASSERT

    def test_unknown_reference_rejected(self):
        with pytest.raises(PslParseError):
            parse_vunit("vunit v { assert missing_name; }")

    def test_vunit_ops(self):
        from repro.psl import Property, parse_formula as pf

        unit = parse_vunit(self.SOURCE)
        original_len = len(unit)
        removed = unit.remove("no_double_grant")
        assert removed.name == "no_double_grant"
        assert len(unit) == original_len - 1
        unit.add(removed)
        unit.update("no_double_grant", Property("no_double_grant", pf("never gnt0")))
        assert "gnt1" not in str(unit.get("no_double_grant").prop.formula)

    def test_directive_single(self):
        directive = parse_directive("assert always p;")
        assert directive.kind == DirectiveKind.ASSERT


class TestRoundTrip:
    CASES = [
        "always ({req} |=> ({gnt}))",
        "never (gnt0 && gnt1)",
        "eventually! (done)",
        "(busy) until! (done)",
        "always ((rose(frame)) -> (next_e[1:4] (devsel)))",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_str_reparses_equal(self, text):
        first = parse_formula(text)
        second = parse_formula(str(first))
        assert first == second
