"""Remote HTTP dispatch: worker daemon, HttpHost transport, work stealing.

The contract under test is the same one ``test_dispatch.py`` enforces
for subprocess hosts, extended across a network boundary: the merged
report digest is byte-identical to a serial run through any pattern of
worker death, garbage responses, retries and steal races that still
lets every shard complete somewhere.
"""

import json
import socket
import struct
import sys
import threading
import urllib.error
import urllib.request
from dataclasses import replace

import pytest

from repro.checkpoint import (
    UnknownCheckpointError,
    global_registry,
    snapshot_scenario_run,
)
from repro.dispatch import (
    DispatchError,
    HostFailure,
    HttpHost,
    InProcessHost,
    LocalSubprocessHost,
    ShardDispatcher,
    ShardQueue,
    ShardWork,
    parse_hosts,
    plan_shards,
    shards_for_hosts,
)
from repro.dispatch.worker import (
    CheckpointCache,
    UnknownCheckpointDigestError,
    WorkerError,
    run_shard_request,
    start_worker,
    store_checkpoint_request,
)
from repro.scenarios.regression import (
    RegressionRunner,
    ScenarioSpec,
    build_specs,
)
from repro.workbench import SerialEngine, Workbench

SPECS = build_specs(count=6, cycles=120)


@pytest.fixture(scope="module")
def serial_report():
    return RegressionRunner(SPECS, engine=SerialEngine()).run()


@pytest.fixture()
def worker():
    handle = start_worker()
    yield handle
    handle.stop()


@pytest.fixture()
def worker_pair():
    first, second = start_worker(), start_worker()
    yield first, second
    first.stop()
    second.stop()


def _shard_body(specs, index=0, of=1, workers=1):
    shard = plan_shards(specs, of)[index]
    return {
        "version": 1,
        "shard": {
            "index": shard.index,
            "of": shard.of,
            "specs": [spec.to_json() for spec in shard.specs],
        },
        "workers": workers,
    }


class TestWorkerProtocol:
    """The /run + /healthz wire contract, with and without HTTP."""

    def test_run_shard_request_matches_serial(self, serial_report):
        doc = run_shard_request(_shard_body(SPECS))
        assert doc["digest"] == serial_report.digest()
        assert doc["scenarios"] == len(SPECS)
        assert doc["shard"] == {"index": 0, "of": 1}

    def test_run_shard_request_rejects_malformed_bodies(self):
        with pytest.raises(WorkerError, match="JSON object"):
            run_shard_request([1, 2, 3])
        with pytest.raises(WorkerError, match='"shard"'):
            run_shard_request({"version": 1})
        with pytest.raises(WorkerError, match="unparseable spec"):
            run_shard_request({"shard": {"specs": [{"model": "pci"}]}})
        with pytest.raises(WorkerError, match="wire version"):
            run_shard_request(_shard_body(SPECS) | {"version": 99})
        # a non-integer version is a 400-class refusal, not a 500 crash
        with pytest.raises(WorkerError, match="must be an integer"):
            run_shard_request(_shard_body(SPECS) | {"version": "2"})

    def test_healthz_counts_served_shards(self, worker):
        def probe():
            with urllib.request.urlopen(
                f"http://{worker.address}/healthz", timeout=5
            ) as response:
                return json.loads(response.read())

        import repro

        doc = probe()
        # the liveness document's full shape: version and uptime for
        # fleet dashboards, serving counters for dispatch forensics
        assert set(doc) == {
            "ok",
            "version",
            "uptime_seconds",
            "shards_served",
            "spec_cache_entries",
            "checkpoint_cache_entries",
            "psl_engine",
            "compile_cache",
        }
        assert doc["ok"] is True
        assert doc["version"] == repro.__version__
        assert doc["uptime_seconds"] >= 0
        assert doc["shards_served"] == 0
        assert doc["spec_cache_entries"] == 0
        assert doc["checkpoint_cache_entries"] == 0
        assert doc["psl_engine"] in ("compiled", "interpreted")
        assert {"plan_hits", "plan_misses", "automaton_hits", "automaton_misses"} <= set(
            doc["compile_cache"]
        )
        HttpHost(worker.address).run_shard(
            ShardWork(shard=plan_shards(SPECS[:2], 1)[0], spec_file="")
        )
        after = probe()
        assert after["shards_served"] == 1
        assert after["uptime_seconds"] >= doc["uptime_seconds"]

    def test_unknown_paths_and_garbage_bodies_get_json_errors(self, worker):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"http://{worker.address}/nope", timeout=5)
        assert excinfo.value.code == 404
        request = urllib.request.Request(
            f"http://{worker.address}/run", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400
        assert "error" in json.loads(excinfo.value.read())

    def test_parse_hosts(self):
        hosts = parse_hosts("127.0.0.1:8421, example.org:9000")
        assert [h.address for h in hosts] == [
            "127.0.0.1:8421",
            "example.org:9000",
        ]
        for bad in ("", "no-port", "h:badport", "h:0", "h:70000"):
            with pytest.raises(ValueError):
                parse_hosts(bad)

    def test_parse_hosts_names_the_bad_token(self):
        """Satellite fix: rejection messages say which entry is wrong."""
        with pytest.raises(ValueError, match="at least one host"):
            parse_hosts("  ,  ,  ")
        with pytest.raises(ValueError, match=r"entry 2 of 3 is empty"):
            parse_hosts("a:1,,b:2")
        with pytest.raises(ValueError, match=r"entry 2.*1-65535.*70000"):
            parse_hosts("a:1,b:70000")
        with pytest.raises(ValueError, match=r"entry 1.*'no-port'"):
            parse_hosts("no-port,b:2")


class TestHttpDispatch:
    """ShardDispatcher over real worker daemons."""

    def test_two_worker_dispatch_matches_serial(self, worker_pair, serial_report):
        hosts = [HttpHost(w.address) for w in worker_pair]
        shards = shards_for_hosts(len(hosts), len(SPECS))
        outcome = ShardDispatcher(SPECS, shards=shards, hosts=hosts).run()
        assert outcome.report.ok
        assert outcome.report.digest() == serial_report.digest()
        assert sum(outcome.host_loads().values()) == shards
        assert outcome.schedule == "stealing"

    def test_workbench_regress_over_http_hosts(self, worker_pair):
        hosts = [HttpHost(w.address) for w in worker_pair]
        workbench = Workbench("master_slave")
        result = workbench.regress(scenarios=4, cycles=120, hosts=hosts)
        assert result.status.name == "PASSED"
        assert result.metrics["engine"] == "sharded"
        assert result.metrics["dispatch"]["schedule"] == "stealing"
        specs = build_specs(
            models=["master_slave"], count=4, base_seed=2005, cycles=120
        )
        serial = RegressionRunner(specs, engine=SerialEngine()).run()
        assert result.data["regression_digest"] == serial.digest()

    def test_dead_worker_address_is_retried_elsewhere(self, worker, serial_report):
        # nothing listens on the dead address: connection refused on
        # every attempt, so every shard it takes moves to the live one
        dead = HttpHost(_dead_address(), name="dead")
        live = HttpHost(worker.address, name="live")
        outcome = ShardDispatcher(
            SPECS, shards=2, hosts=[dead, live], max_attempts=3
        ).run()
        assert outcome.report.digest() == serial_report.digest()
        assert all(run.host == "live" for run in outcome.runs)
        failed = [reason for run in outcome.runs for reason in run.failures]
        assert all("transport failed" in reason for reason in failed)

    def test_worker_dying_mid_run_is_recovered(self, worker_pair, serial_report):
        """A worker daemon that goes down between shards: its next POST
        hits a closed port, the shard is retried on the survivor and
        the merged digest never notices."""
        dying, surviving = worker_pair

        class _DiesBeforeFirstPost(HttpHost):
            killed = False

            def run_shard(self, work):
                if not type(self).killed:
                    type(self).killed = True
                    dying.stop()
                return super().run_shard(work)

        hosts = [
            _DiesBeforeFirstPost(dying.address, name="dying"),
            HttpHost(surviving.address, name="surviving"),
        ]
        outcome = ShardDispatcher(
            SPECS, shards=3, hosts=hosts, max_attempts=4
        ).run()
        assert outcome.report.digest() == serial_report.digest()
        assert outcome.retries >= 1
        assert all(run.host == "surviving" for run in outcome.runs)


class _MisbehavingServer:
    """A TCP server that accepts /run connections and misbehaves.

    ``mode="reset"`` hard-closes the connection after the first bytes
    (what a worker daemon dying mid-shard looks like from the client);
    ``mode="garbage"`` answers a well-formed HTTP 200 whose body is not
    JSON.
    """

    def __init__(self, mode: str):
        self.mode = mode
        self._listener = socket.socket()
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(4)
        self.address = "127.0.0.1:%d" % self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return
            with connection:
                if self.mode == "reset":
                    connection.recv(1024)
                    # SO_LINGER 0 turns close() into a hard RST
                    connection.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_LINGER,
                        struct.pack("ii", 1, 0),
                    )
                else:
                    self._drain_request(connection)
                    body = b"this is not json"
                    connection.sendall(
                        b"HTTP/1.1 200 OK\r\n"
                        b"Content-Type: text/plain\r\n"
                        b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
                    )

    @staticmethod
    def _drain_request(connection):
        """Read headers + declared body so the client finishes sending."""
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = connection.recv(65536)
            if not chunk:
                return
            data += chunk
        headers, _, seen = data.partition(b"\r\n\r\n")
        length = 0
        for line in headers.split(b"\r\n"):
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
        while len(seen) < length:
            chunk = connection.recv(65536)
            if not chunk:
                return
            seen += chunk

    def stop(self):
        self._listener.close()


class TestTransportFailureTaxonomy:
    """Every transport mishap is a HostFailure, and retry heals it."""

    @pytest.fixture()
    def shard_work(self):
        return ShardWork(shard=plan_shards(SPECS[:1], 1)[0], spec_file="")

    def test_connection_reset_mid_shard_is_a_host_failure(self, shard_work):
        server = _MisbehavingServer("reset")
        try:
            with pytest.raises(HostFailure, match="transport failed"):
                HttpHost(server.address).run_shard(shard_work)
        finally:
            server.stop()

    def test_malformed_json_response_is_a_host_failure(self, shard_work):
        server = _MisbehavingServer("garbage")
        try:
            with pytest.raises(HostFailure, match="unparseable shard report"):
                HttpHost(server.address).run_shard(shard_work)
        finally:
            server.stop()

    def test_connection_refused_is_a_host_failure(self, shard_work):
        with pytest.raises(HostFailure, match="transport failed"):
            HttpHost(_dead_address(), timeout=5).run_shard(shard_work)

    def test_misbehaving_host_in_pool_never_drifts_the_digest(
        self, worker, serial_report
    ):
        for mode in ("reset", "garbage"):
            server = _MisbehavingServer(mode)
            try:
                outcome = ShardDispatcher(
                    SPECS,
                    shards=2,
                    hosts=[
                        HttpHost(server.address, name="bad"),
                        HttpHost(worker.address, name="good"),
                    ],
                    max_attempts=3,
                ).run()
                assert outcome.report.digest() == serial_report.digest(), mode
                assert all(run.host == "good" for run in outcome.runs)
            finally:
                server.stop()


class TestCheckpointTransport:
    """``POST /checkpoints`` + by-digest resume: the same 400/404
    taxonomy as the spec cache, extended to checkpoint wire forms."""

    def _resume_setup(self):
        """A monitored spec, its cycle-60 checkpoint (registered in the
        local registry) and the spec resuming from it."""
        spec = ScenarioSpec(
            "master_slave", 2005, (2, 2, 2), "bursty", 120,
            None, True, (), True,
        )
        checkpoint = snapshot_scenario_run(replace(spec, cycles=60), 60)
        digest = global_registry().put(checkpoint)
        return spec, checkpoint, replace(spec, resume_from=digest)

    def test_store_checkpoint_request_taxonomy(self):
        """The pure request handler: every malformed upload is a typed
        WorkerError (-> 400), a cache miss is the 404-class error."""
        cache = CheckpointCache()
        _, checkpoint, _ = self._resume_setup()
        with pytest.raises(WorkerError, match='"checkpoint" object'):
            store_checkpoint_request({"version": 1}, cache)
        corrupt = checkpoint.to_json()
        corrupt["payload"]["txn_next"] += 1
        with pytest.raises(WorkerError, match="rejected checkpoint upload"):
            store_checkpoint_request(
                {"version": 1, "checkpoint": corrupt}, cache
            )
        newer = checkpoint.to_json()
        newer["version"] = 99
        with pytest.raises(WorkerError, match="rejected checkpoint upload"):
            store_checkpoint_request(
                {"version": 1, "checkpoint": newer}, cache
            )
        accepted = store_checkpoint_request(
            {"version": 1, "checkpoint": checkpoint.to_json()}, cache
        )
        assert accepted["ok"] is True
        assert accepted["digest"] == checkpoint.digest
        assert cache.get(checkpoint.digest).digest == checkpoint.digest
        with pytest.raises(
            UnknownCheckpointDigestError, match="unknown checkpoint"
        ):
            cache.get("0" * 64)

    def test_resume_over_http_matches_uninterrupted(self, worker):
        """The host ships the checkpoint, the worker resumes from it,
        and the report digest equals the uninterrupted serial run."""
        spec, _, resume_spec = self._resume_setup()
        base = RegressionRunner([spec], engine=SerialEngine()).run()
        report = HttpHost(worker.address).run_shard(
            ShardWork(shard=plan_shards([resume_spec], 1)[0], spec_file="")
        )
        assert report.digest() == base.digest()

    def test_worker_that_never_saw_the_digest_answers_404(self, worker):
        spec, _, _ = self._resume_setup()
        ghost = replace(spec, resume_from="0" * 64)
        body = {
            "version": 1,
            "shard": {"index": 0, "of": 1, "specs": [ghost.to_json()]},
            "workers": 1,
        }
        request = urllib.request.Request(
            f"http://{worker.address}/run",
            data=json.dumps(body).encode("utf-8"),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 404
        assert "unknown checkpoint" in json.loads(excinfo.value.read())[
            "error"
        ]

    def test_corrupt_upload_is_a_400_not_a_crash(self, worker):
        _, checkpoint, _ = self._resume_setup()
        doc = checkpoint.to_json()
        doc["payload"]["cycles_run"] += 1
        request = urllib.request.Request(
            f"http://{worker.address}/checkpoints",
            data=json.dumps({"version": 1, "checkpoint": doc}).encode(
                "utf-8"
            ),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert "digest mismatch" in json.loads(excinfo.value.read())["error"]

    def test_missing_local_checkpoint_surfaces_client_side(self, worker):
        """A resume digest nobody registered fails in the *client's*
        registry lookup before anything crosses the wire."""
        spec, _, _ = self._resume_setup()
        ghost = replace(spec, resume_from="f" * 64)
        with pytest.raises(UnknownCheckpointError, match="unknown"):
            HttpHost(worker.address).run_shard(
                ShardWork(shard=plan_shards([ghost], 1)[0], spec_file="")
            )


class _SlowHost:
    """In-process host that sleeps before every shard (runtime skew)."""

    def __init__(self, name, delay):
        self.name = name
        self.delay = delay
        self._inner = InProcessHost(name)

    def run_shard(self, work):
        import time

        time.sleep(self.delay)
        return self._inner.run_shard(work)


class TestWorkStealing:
    """The scheduler itself: rebalance, retry exclusion, dedupe."""

    def test_fast_host_steals_the_tail(self, serial_report):
        """With one deliberately slow host, the fast host must complete
        most of the queue instead of half of it (static round-robin
        would pin 3 of 6 shards to the slow host)."""
        slow = _SlowHost("slow", delay=0.5)
        fast = InProcessHost("fast")
        outcome = ShardDispatcher(SPECS, shards=6, hosts=[slow, fast]).run()
        assert outcome.report.digest() == serial_report.digest()
        loads = outcome.host_loads()
        assert loads["fast"] >= 4, loads
        assert loads["slow"] + loads["fast"] == 6

    def test_single_flaky_host_pool_recovers_via_exclusion_reset(
        self, serial_report
    ):
        """When every host has failed a shard once the exclusions reset,
        so a flaky-but-alive single-host pool still finishes."""

        class _FlakyOnce:
            name = "only"
            calls = 0

            def run_shard(self, work):
                type(self).calls += 1
                if type(self).calls == 1:
                    raise HostFailure(self.name, work.shard.label, "hiccup")
                return InProcessHost(self.name).run_shard(work)

        outcome = ShardDispatcher(
            SPECS, shards=2, hosts=[_FlakyOnce()], max_attempts=3
        ).run()
        assert outcome.report.digest() == serial_report.digest()
        assert outcome.retries == 1

    def test_exhausted_attempts_abort_the_dispatch(self):
        class _AlwaysDown:
            def __init__(self, name):
                self.name = name

            def run_shard(self, work):
                raise HostFailure(self.name, work.shard.label, "down")

        with pytest.raises(DispatchError, match="failed on every host"):
            ShardDispatcher(
                SPECS, shards=2, hosts=[_AlwaysDown("a"), _AlwaysDown("b")]
            ).run()

    def test_duplicate_completion_is_dropped_not_merged(self, serial_report):
        """The queue's idempotence invariant: a completion for a shard
        that already completed elsewhere is counted and discarded.
        Today's blocking transports can't produce this through the
        dispatcher (a thread fails or completes, never both) -- the
        invariant is what keeps a late-completing future transport, or
        a direct ShardQueue user, from double-merging verdicts."""
        live = plan_shards(SPECS, 2)
        queue = ShardQueue(live, ["a", "b"], max_attempts=4)
        host = InProcessHost("a")
        first = queue.take("a")
        second = queue.take("b")
        report_one = host.run_shard(ShardWork(shard=first.shard, spec_file=""))
        report_two = host.run_shard(ShardWork(shard=second.shard, spec_file=""))
        assert queue.complete(first, "a", report_one) is True
        # the same shard completes again on the other host: dropped
        assert queue.complete(first, "b", report_one) is False
        assert queue.complete(second, "b", report_two) is True
        assert queue.duplicates == 1
        results = queue.results([shard for shard in live])
        assert len(results) == 2
        from repro.dispatch import merge_reports

        merged = merge_reports([report for _, report in results])
        assert merged.digest() == serial_report.digest()

    def test_duplicate_host_names_are_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            ShardDispatcher(
                SPECS,
                shards=2,
                hosts=[InProcessHost("same"), InProcessHost("same")],
            )

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            ShardDispatcher(SPECS, shards=2, schedule="quantum")

    def test_shards_for_hosts_oversubscribes_but_never_exceeds_specs(self):
        assert shards_for_hosts(2, 100) == 4
        assert shards_for_hosts(3, 100, factor=3) == 9
        assert shards_for_hosts(4, 3) == 3      # capped by the spec count
        assert shards_for_hosts(1, 0) == 1      # degenerate empty regression
        with pytest.raises(ValueError):
            shards_for_hosts(0, 10)


class TestSubprocessReaping:
    """Satellite fix: HostFailure exits must never leak a child process."""

    def test_timed_out_child_is_killed_and_reaped(self):
        host = LocalSubprocessHost("slowpoke", timeout=0.5)
        host._command = lambda work: [
            sys.executable,
            "-c",
            "import time; time.sleep(60)",
        ]
        seen = {}
        host._started = lambda process: seen.setdefault("process", process)
        shard = plan_shards(SPECS[:1], 1)[0]
        with pytest.raises(HostFailure, match="timed out"):
            host.run_shard(ShardWork(shard=shard, spec_file=""))
        process = seen["process"]
        # reaped: the exit status has been collected, no zombie left
        assert process.returncode is not None

    def test_crashed_startup_hook_still_reaps_the_child(self):
        host = LocalSubprocessHost("hooked", timeout=30)
        host._command = lambda work: [
            sys.executable,
            "-c",
            "import time; time.sleep(60)",
        ]
        seen = {}

        def exploding_hook(process):
            seen["process"] = process
            raise RuntimeError("hook went sideways")

        host._started = exploding_hook
        shard = plan_shards(SPECS[:1], 1)[0]
        with pytest.raises(RuntimeError, match="sideways"):
            host.run_shard(ShardWork(shard=shard, spec_file=""))
        assert seen["process"].returncode is not None


class TestCliHosts:
    """--hosts flag plumbing on both CLIs."""

    def test_scenarios_cli_hosts_matches_serial(self, worker_pair, capsys):
        from repro.scenarios.regression import main

        addresses = ",".join(w.address for w in worker_pair)
        code = main(
            ["--scenarios", "6", "--cycles", "120", "--hosts", addresses, "--json"]
        )
        captured = capsys.readouterr()
        assert code == 0
        doc = json.loads(captured.out)
        serial = RegressionRunner(
            build_specs(count=6, cycles=120), engine=SerialEngine()
        ).run()
        assert doc["digest"] == serial.digest()
        assert "stealing schedule" in captured.err

    def test_repro_cli_hosts_matches_serial(self, worker_pair, capsys):
        from repro.cli import main

        addresses = ",".join(w.address for w in worker_pair)
        code = main(
            [
                "regress",
                "--model",
                "master_slave",
                "--scenarios",
                "4",
                "--cycles",
                "120",
                "--hosts",
                addresses,
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        doc = json.loads(captured.out)
        regress = [s for s in doc["stages"] if s["stage"] == "regress"][0]
        specs = build_specs(
            models=["master_slave"], count=4, base_seed=2005, cycles=120
        )
        serial = RegressionRunner(specs, engine=SerialEngine()).run()
        assert regress["data"]["regression_digest"] == serial.digest()

    def test_hosts_conflicts_with_shard_and_merge(self):
        from repro.cli import main as repro_main
        from repro.scenarios.regression import main as scenarios_main

        with pytest.raises(SystemExit) as excinfo:
            scenarios_main(["--hosts", "127.0.0.1:8421", "--shard", "1/2"])
        assert excinfo.value.code == 2       # parser.error: usage + exit 2
        with pytest.raises(SystemExit) as excinfo:
            repro_main(
                [
                    "regress",
                    "--model",
                    "pci",
                    "--hosts",
                    "127.0.0.1:8421",
                    "--shard",
                    "1/2",
                ]
            )
        assert excinfo.value.code == 2       # same behaviour on both CLIs

    def test_bad_hosts_string_rejected(self):
        from repro.scenarios.regression import main

        with pytest.raises(SystemExit):
            main(["--hosts", "nonsense", "--scenarios", "2"])


def _dead_address() -> str:
    """An address nothing listens on (bound then immediately closed)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"127.0.0.1:{port}"
