"""Tests for the Master/Slave ASM model (Table 2's subject)."""

import pytest

from repro.asm import ActionCall
from repro.explorer import ExplorationConfig, check_eventually, explore
from repro.psl import AssertionProperty
from repro.models.master_slave import (
    BLOCKING_BURST,
    MsMasterState,
    build_master_slave_model,
    master_slave_domains,
    master_slave_init_call,
    ms_coarse_actions,
    ms_invariant_properties,
    ms_letter_from_model,
    want_trigger,
)
from repro.models.master_slave.asm_model import MsArbiter, MsMaster, MsSlave
from repro.models.master_slave.properties import served_goal


def init(model):
    model.execute(ActionCall("system", "init"))
    return model


class TestConstruction:
    def test_mixed_masters(self):
        model = build_master_slave_model(2, 3, 2)
        masters = model.machines_of(MsMaster)
        assert len(masters) == 5
        assert sum(1 for m in masters if m.m_blocking) == 2
        assert sum(1 for m in masters if not m.m_blocking) == 3

    def test_init_checks_instances(self):
        model = build_master_slave_model(1, 1, 1)
        model.execute(ActionCall("system", "init"))
        assert model.get_global("system_init") is True

    def test_slave_memory_not_in_state_key(self):
        model = build_master_slave_model(1, 0, 1)
        locations = {str(l) for l in model.state_variables()}
        assert not any("m_memory" in l for l in locations)
        assert any("m_busy" in l for l in locations)


class TestTransferLifecycle:
    def serve(self, model, master="master0", slave=0, write=True):
        model.execute(ActionCall(master, "request"))
        model.execute(ActionCall("arbiter", "grant"))
        model.execute(ActionCall(master, "start_transfer", (slave, write)))
        machine = model.machine(master)
        while machine.m_words_left > 0:
            model.execute(ActionCall(master, "transfer_word"))
        model.execute(ActionCall("arbiter", "release"))

    def test_blocking_master_moves_burst(self):
        model = init(build_master_slave_model(1, 0, 1))
        self.serve(model)
        slave = model.machine("slave0")
        assert slave.m_writes == BLOCKING_BURST
        assert len(slave.m_memory) == BLOCKING_BURST

    def test_non_blocking_master_moves_one_word(self):
        model = init(build_master_slave_model(0, 1, 1))
        self.serve(model)
        assert model.machine("slave0").m_writes == 1

    def test_read_direction(self):
        model = init(build_master_slave_model(0, 1, 1))
        self.serve(model, write=False)
        slave = model.machine("slave0")
        assert slave.m_reads == 1 and slave.m_writes == 0

    def test_grant_picks_lowest_want(self):
        model = init(build_master_slave_model(1, 1, 1))
        model.execute(ActionCall("master1", "request"))
        model.execute(ActionCall("master0", "request"))
        model.execute(ActionCall("arbiter", "grant"))
        assert model.machine("arbiter").m_owner == 0
        assert model.machine("master0").m_state is MsMasterState.OWNER

    def test_no_grant_while_owned(self):
        model = init(build_master_slave_model(1, 1, 1))
        model.execute(ActionCall("master0", "request"))
        model.execute(ActionCall("arbiter", "grant"))
        model.execute(ActionCall("master1", "request"))
        ok, _ = model.try_execute(ActionCall("arbiter", "grant"))
        assert not ok

    def test_busy_slave_rejects_second_transfer(self):
        model = init(build_master_slave_model(2, 0, 1))
        model.execute(ActionCall("master0", "request"))
        model.execute(ActionCall("arbiter", "grant"))
        model.execute(ActionCall("master0", "start_transfer", (0, True)))
        ok, _ = model.try_execute(
            ActionCall("master1", "start_transfer", (0, True))
        )
        assert not ok  # master1 does not own the bus anyway

    def test_release_requires_done(self):
        model = init(build_master_slave_model(1, 0, 1))
        model.execute(ActionCall("master0", "request"))
        model.execute(ActionCall("arbiter", "grant"))
        ok, _ = model.try_execute(ActionCall("arbiter", "release"))
        assert not ok


class TestCoarseAction:
    def test_grant_and_transfer_is_atomic(self):
        model = init(build_master_slave_model(1, 1, 2))
        model.execute(ActionCall("master0", "request"))
        model.execute(ActionCall("arbiter", "grant_and_transfer", (1, True)))
        assert model.machine("master0").m_state is MsMasterState.IDLE
        assert model.machine("arbiter").m_owner == -1
        assert model.machine("slave1").m_writes == BLOCKING_BURST

    def test_non_blocking_atomic_moves_one(self):
        model = init(build_master_slave_model(0, 1, 1))
        model.execute(ActionCall("master0", "request"))
        model.execute(ActionCall("arbiter", "grant_and_transfer", (0, True)))
        assert model.machine("slave0").m_writes == 1

    def test_requires_pending_want(self):
        model = init(build_master_slave_model(1, 0, 1))
        ok, _ = model.try_execute(
            ActionCall("arbiter", "grant_and_transfer", (0, True))
        )
        assert not ok


class TestExploration:
    def explore_ms(self, blocking, non_blocking, slaves, coarse=True):
        model = build_master_slave_model(blocking, non_blocking, slaves)
        n_masters = blocking + non_blocking
        properties = [
            AssertionProperty(
                d.prop, extractor=ms_letter_from_model, name=d.prop.name
            )
            for d in ms_invariant_properties(n_masters, slaves)
        ]
        config = ExplorationConfig(
            domains=master_slave_domains(slaves),
            init_action=master_slave_init_call(),
            actions=ms_coarse_actions(n_masters) if coarse else None,
            properties=properties,
            max_states=30_000,
            max_transitions=300_000,
        )
        return explore(model, config)

    def test_invariants_hold_coarse(self):
        result = self.explore_ms(1, 1, 2)
        assert result.ok and result.stats.completed

    def test_invariants_hold_fine(self):
        result = self.explore_ms(1, 1, 2, coarse=False)
        assert result.ok and result.stats.completed

    def test_nodes_constant_across_slaves(self):
        nodes = [
            self.explore_ms(1, 1, s).fsm.state_count() for s in (2, 3, 4)
        ]
        assert nodes[0] == nodes[1] == nodes[2]

    def test_transitions_grow_with_slaves(self):
        transitions = [
            self.explore_ms(1, 1, s).fsm.transition_count() for s in (2, 3)
        ]
        assert transitions[0] < transitions[1]

    def test_nodes_exponential_in_masters(self):
        two = self.explore_ms(1, 1, 2).fsm.state_count()
        four = self.explore_ms(2, 2, 2).fsm.state_count()
        assert four >= 3 * two

    def test_liveness_lowest_priority_served(self):
        """Min-id arbitration serves master0 whenever it wants."""
        result = self.explore_ms(1, 1, 2)
        liveness = check_eventually(
            result.fsm, want_trigger(0), served_goal(0), "served0"
        )
        assert liveness.holds

    def test_liveness_highest_index_can_starve(self):
        result = self.explore_ms(1, 1, 2)
        liveness = check_eventually(
            result.fsm, want_trigger(1), served_goal(1), "served1"
        )
        # master1 starves when master0 keeps requesting
        assert not liveness.holds
