"""Tests for PSL rewriting: simplification and negation normal form.

The key property (hypothesis-checked): every rewrite preserves the
four-valued verdict on every trace.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.psl import (
    Const,
    FlAlways,
    FlAnd,
    FlBool,
    FlEventually,
    FlNever,
    FlNext,
    FlNot,
    Not,
    SereBool,
    SereConcat,
    SereRepeat,
    Var,
    parse_formula,
    parse_sere,
    verdict,
)
from repro.psl.rewrite import (
    negation_normal_form,
    simplify,
    simplify_expr,
    simplify_sere,
)
from repro.psl.sere import Matcher

from test_psl_properties_hypothesis import formulas, traces


class TestExprSimplify:
    def test_double_negation(self):
        assert simplify_expr(Not(Not(Var("a")))) == Var("a")

    def test_and_units(self):
        a = Var("a")
        assert simplify_expr(parse := (a & Const(True))) == a
        assert simplify_expr(a & Const(False)) == Const(False)
        assert simplify_expr(Const(True) & a) == a

    def test_or_units(self):
        a = Var("a")
        assert simplify_expr(a | Const(False)) == a
        assert simplify_expr(a | Const(True)) == Const(True)

    def test_idempotence_law(self):
        a = Var("a")
        assert simplify_expr(a & a) == a
        assert simplify_expr(a | a) == a


class TestSereSimplify:
    def test_single_repeat_unwrapped(self):
        assert simplify_sere(parse_sere("a[*1]")) == parse_sere("a")

    def test_concat_flattening(self):
        nested = SereConcat((parse_sere("{a ; b}"), parse_sere("c")))
        flat = simplify_sere(nested)
        assert isinstance(flat, SereConcat)
        assert len(flat.parts) == 3

    def test_epsilon_dropped_from_concat(self):
        item = SereConcat((SereRepeat(SereBool(Const(True)), 0, 0), parse_sere("a")))
        assert simplify_sere(item) == parse_sere("a")

    def test_nested_stars_collapse(self):
        item = SereRepeat(parse_sere("a[*]"), 0, None)
        simplified = simplify_sere(item)
        assert simplified == parse_sere("a[*]")

    def test_plus_inside_star(self):
        item = SereRepeat(parse_sere("a[+]"), 0, None)
        assert simplify_sere(item) == parse_sere("a[*]")

    @settings(max_examples=100, deadline=None)
    @given(traces)
    def test_language_preserved_on_samples(self, trace):
        for text in ("a[*1]", "{ {a ; b} ; c }", "{a[*]}[*]", "a | a"):
            original = parse_sere(text)
            rewritten = simplify_sere(original)
            matcher = Matcher(trace)
            assert matcher.match_ends(original, 0) == matcher.match_ends(
                rewritten, 0
            ), text


class TestFlSimplify:
    def test_gg_collapse(self):
        formula = FlAlways(FlAlways(FlBool(Var("p"))))
        assert simplify(formula) == FlAlways(FlBool(Var("p")))

    def test_ff_collapse(self):
        formula = FlEventually(FlEventually(FlBool(Var("p"))))
        assert simplify(formula) == FlEventually(FlBool(Var("p")))

    def test_always_distributes_over_and(self):
        # explicit FL-level conjunction (the parser folds "p && q" into
        # the Boolean layer, which needs no distribution)
        formula = FlAlways(FlAnd(FlBool(Var("p")), FlAlways(FlBool(Var("q")))))
        simplified = simplify(formula)
        assert isinstance(simplified, FlAnd)
        assert isinstance(simplified.left, FlAlways)

    def test_never_of_boolean_becomes_always_not(self):
        simplified = simplify(parse_formula("never p"))
        assert isinstance(simplified, FlAlways)

    def test_next_counts_merge(self):
        formula = FlNext(FlNext(FlBool(Var("p")), count=2), count=3)
        merged = simplify(formula)
        assert isinstance(merged, FlNext) and merged.count == 5

    def test_double_fl_negation(self):
        formula = FlNot(FlNot(FlAlways(FlBool(Var("p")))))
        assert simplify(formula) == FlAlways(FlBool(Var("p")))

    def test_idempotent(self):
        for text in ("always (p && q)", "never p", "eventually! (p || p)"):
            once = simplify(parse_formula(text))
            assert simplify(once) == once


class TestNnf:
    def test_not_always_becomes_eventually(self):
        nnf = negation_normal_form(FlNot(parse_formula("always p")))
        assert isinstance(nnf, FlEventually)

    def test_not_eventually_becomes_always(self):
        nnf = negation_normal_form(FlNot(parse_formula("eventually! p")))
        assert isinstance(nnf, FlAlways)

    def test_de_morgan(self):
        nnf = negation_normal_form(FlNot(parse_formula("(always p) && (always q)")))
        assert "||" in str(nnf) or "Or" in type(nnf).__name__

    def test_next_duality_flips_strength(self):
        nnf = negation_normal_form(FlNot(parse_formula("next p")))
        assert isinstance(nnf, FlNext) and nnf.strong

    def test_boolean_negation_pushed_into_expr(self):
        nnf = negation_normal_form(FlNot(FlBool(Var("p"))))
        assert isinstance(nnf, FlBool)


@settings(max_examples=200, deadline=None)
@given(formulas(), traces)
def test_simplify_preserves_verdict(formula, trace):
    assert verdict(simplify(formula), trace) == verdict(formula, trace)


@settings(max_examples=200, deadline=None)
@given(formulas(), traces)
def test_nnf_preserves_verdict(formula, trace):
    assert verdict(negation_normal_form(formula), trace) == verdict(
        formula, trace
    )
