"""End-to-end tests of the Figure 1 design flow."""

import pytest

from repro.asm import AsmModel
from repro.explorer import ExplorationConfig
from repro.flow import DesignFlow, LivenessCheck
from repro.models.master_slave import (
    build_master_slave_model,
    master_slave_domains,
    master_slave_init_call,
    ms_coarse_actions,
    ms_invariant_properties,
    ms_letter_from_model,
    want_trigger,
)
from repro.models.master_slave.properties import served_goal
from repro.psl import Property, parse_formula
from conftest import BrokenArbiter, ToyArbiter, ToyMaster


def design_flow(*args, **kwargs) -> DesignFlow:
    """Construct the deprecated shim, asserting (not leaking) its
    warning -- the pytest filterwarnings config errors on a bare one."""
    with pytest.warns(DeprecationWarning, match="DesignFlow is deprecated"):
        return DesignFlow(*args, **kwargs)


def toy_model_factory(broken: bool = False):
    def factory() -> AsmModel:
        model = AsmModel("toy")
        ToyMaster(model=model, name="m0")
        ToyMaster(model=model, name="m1")
        (BrokenArbiter if broken else ToyArbiter)(model=model, name="arbiter")
        model.seal()
        return model

    return factory


MUTEX = Property("mutex", parse_formula("never (m0.m_gnt && m1.m_gnt)"))


class TestModelCheckingLeg:
    def test_pass_on_correct_design(self):
        flow = design_flow(toy_model_factory(), [MUTEX])
        report = flow.model_check()
        assert report.ok
        assert report.exploration.stats.completed
        assert "PASS" in report.summary()

    def test_fail_with_counterexample_on_broken_design(self):
        flow = design_flow(toy_model_factory(broken=True), [MUTEX])
        report = flow.model_check()
        assert not report.ok
        assert report.exploration.counterexample is not None

    def test_liveness_checks_included(self):
        model_factory = toy_model_factory()

        def m0_req(key):
            return key.value("m0", "m_req") is True

        def m0_gnt(key):
            return key.value("m0", "m_gnt") is True

        flow = design_flow(
            model_factory,
            [MUTEX],
            liveness_checks=[LivenessCheck("grant0", m0_req, m0_gnt)],
        )
        report = flow.model_check()
        assert report.liveness and report.liveness[0].holds

    def test_rule_findings_reported(self):
        flow = design_flow(toy_model_factory(), [MUTEX])
        report = flow.model_check()
        # no init action configured -> R2 warning
        assert any(f.rule == "R2_FSM" for f in report.rule_findings)


class TestTranslationLeg:
    def test_simulation_report_and_artifacts(self):
        flow = design_flow(toy_model_factory(), [MUTEX])
        report, cpp, csharp = flow.translate_and_simulate(cycles=300)
        assert report.ok
        assert report.cycles >= 299
        assert report.delta_ns_per_cycle > 0
        assert "SC_MODULE(ToyArbiter)" in cpp
        assert "SC_MODULE(ToyMaster)" in cpp
        assert "int sc_main" in cpp
        assert "class MutexMonitor" in csharp

    def test_monitors_fail_on_broken_design_in_simulation(self):
        from repro.translate import RandomPolicy

        flow = design_flow(toy_model_factory(broken=True), [MUTEX])
        report, _, _ = flow.translate_and_simulate(
            cycles=2000, policy=RandomPolicy(seed=99)
        )
        assert not report.ok
        assert "mutex" in report.failed_assertions


class TestFullFlow:
    def test_run_verified_design(self):
        flow = design_flow(toy_model_factory(), [MUTEX])
        report = flow.run(cycles=300)
        assert report.ok
        assert report.simulation is not None
        assert report.iterations == 1
        assert "VERIFIED" in report.summary()

    def test_run_stops_before_simulation_on_mc_failure(self):
        flow = design_flow(toy_model_factory(broken=True), [MUTEX])
        report = flow.run(cycles=300)
        assert not report.ok
        assert report.simulation is None  # never translated

    def test_feedback_loop_iterations(self):
        """The Figure 1 'Updates Sequence Diagram' edge: on failure the
        callback repairs the flow and retries."""
        attempts = []

        flow = design_flow(toy_model_factory(broken=True), [MUTEX])

        def repair(counterexample):
            attempts.append(counterexample)
            # repair = swap in the correct design
            flow.model_factory = toy_model_factory(broken=False)
            return True

        report = flow.run(cycles=200, max_iterations=3, on_failure=repair)
        assert report.ok
        assert report.iterations == 2
        assert len(attempts) == 1
        assert attempts[0] is not None  # the counterexample was delivered


class TestFlowOnMasterSlave:
    def test_master_slave_flow_end_to_end(self):
        n_masters, n_slaves = 2, 2
        flow = design_flow(
            model_factory=lambda: build_master_slave_model(1, 1, n_slaves),
            directives=ms_invariant_properties(n_masters, n_slaves),
            extractor=ms_letter_from_model,
            exploration=ExplorationConfig(
                domains=master_slave_domains(n_slaves),
                init_action=master_slave_init_call(),
                actions=ms_coarse_actions(n_masters),
                max_states=5_000,
            ),
            liveness_checks=[
                LivenessCheck("served0", want_trigger(0), served_goal(0))
            ],
        )
        checking = flow.model_check()
        assert checking.ok, checking.summary()
        assert checking.liveness[0].holds
