"""Tests for the paper's PSL-in-ASM embedding (Figure 3, Section 3.1)."""

import pytest

from repro.asm import AsmModel, RequirementFailure
from repro.explorer import ExplorationConfig, explore
from repro.psl import (
    AssertionProperty,
    PslAssertion,
    PslOperator,
    PslPropertyAsm,
    PslSequence,
    PslSere,
    SereEvaluation,
    Verdict,
    build_monitor,
    parse_formula,
    state_extractor,
)


class TestFigure3PslSere:
    """``PSL_SERE.Evaluate()`` transcribed from the paper's Figure 3."""

    def test_requires_init_signal(self):
        machine = PslSere(name="s")
        machine.add_element(True)
        with pytest.raises(RequirementFailure):
            machine.evaluate()

    def test_all_true_sequence_succeeds(self):
        machine = PslSere(name="s")
        for value in (True, True, True):
            machine.add_element(value)
        machine.init_evaluation()
        assert machine.run_to_completion() is SereEvaluation.SUCCEEDED

    def test_false_element_fails(self):
        machine = PslSere(name="s")
        machine.add_element(True)
        machine.add_element(False)
        machine.init_evaluation()
        assert machine.run_to_completion() is SereEvaluation.FAILED

    def test_in_progress_between_elements(self):
        machine = PslSere(name="s")
        machine.add_element(True)
        machine.add_element(True)
        machine.init_evaluation()
        assert machine.evaluate() is SereEvaluation.IN_PROGRESS
        assert machine.evaluate() is SereEvaluation.SUCCEEDED

    def test_metadata_fields(self):
        machine = PslSere(name="s")
        machine.add_element(True, cycles=4)  # the $ duration annotation
        assert machine.m_size == 1
        assert machine.m_cycle[0] == 4

    def test_single_false_fails_immediately(self):
        machine = PslSere(name="s")
        machine.add_element(False)
        machine.init_evaluation()
        assert machine.evaluate() is SereEvaluation.FAILED


class TestSection31Assertion:
    """S1 OP S2 assertions built per Section 3.1's three steps."""

    def build(self, left_items, op, right_items):
        s1 = PslSequence("S1")
        for item in left_items:
            s1.add_element(item)
        s2 = PslSequence("S2")
        for item in right_items:
            s2.add_element(item)
        return PslPropertyAsm("P", s1, op, s2)

    def test_implication_true(self):
        prop = self.build([True, False], PslOperator.IMPLICATION, [False])
        assert prop.evaluate()  # S1 does not hold => implication true

    def test_implication_false(self):
        prop = self.build([True, True], PslOperator.IMPLICATION, [False])
        assert not prop.evaluate()

    def test_equivalence(self):
        prop = self.build([True], PslOperator.EQUIVALENCE, [True])
        assert prop.evaluate()
        prop2 = self.build([True], PslOperator.EQUIVALENCE, [False])
        assert not prop2.evaluate()

    def test_assertion_p_eval_p_value(self):
        model = AsmModel()
        assertion = PslAssertion(model=model, name="A")
        model.seal()
        prop = self.build([True, True], PslOperator.IMPLICATION, [True])
        assertion.add(prop)
        assert not assertion.P_eval  # not yet checked
        assertion.check()
        assert assertion.P_eval and assertion.P_value
        assert not assertion.violated

    def test_violation_detected(self):
        model = AsmModel()
        assertion = PslAssertion(model=model, name="A")
        model.seal()
        assertion.add(self.build([True], PslOperator.IMPLICATION, [False]))
        assertion.check()
        assert assertion.violated  # P_eval and not P_value

    def test_check_requires_properties(self):
        model = AsmModel()
        assertion = PslAssertion(model=model, name="A")
        model.seal()
        with pytest.raises(RequirementFailure):
            assertion.check()

    def test_evaluate_next(self):
        steps = []
        prop = self.build([True], PslOperator.IMPLICATION, [True])
        prop.evaluate_next(3, lambda: steps.append(1))
        assert len(steps) == 3


class TestAssertionProperty:
    def test_status_mapping(self):
        prop = AssertionProperty(parse_formula("never p"), name="np")
        prop.reset()
        can_eval, value = prop.observe_letter({"p": False})
        assert (can_eval, value) == (True, True)
        can_eval, value = prop.observe_letter({"p": True})
        assert (can_eval, value) == (True, False)  # the violation pair

    def test_pending_maps_to_not_evaluable(self):
        prop = AssertionProperty(parse_formula("eventually! p"), name="ev")
        prop.reset()
        can_eval, value = prop.observe_letter({"p": False})
        assert (can_eval, value) == (False, True)

    def test_snapshot_excludes_cycle_counter(self):
        prop = AssertionProperty(parse_formula("always p"), name="ap")
        prop.reset()
        prop.observe_letter({"p": True})
        snap_a = prop.snapshot()
        prop.observe_letter({"p": True})
        snap_b = prop.snapshot()
        # same semantic state at different depths must collide
        assert snap_a == snap_b

    def test_default_extractor_names(self, arbiter_model):
        letter = state_extractor(arbiter_model)
        assert "m0.m_req" in letter
        assert "m_owner" in letter  # bare shorthand

    def test_explorer_integration(self, broken_arbiter_model):
        prop = AssertionProperty(
            parse_formula("never (m0.m_gnt && m1.m_gnt)"), name="mutex"
        )
        result = explore(
            broken_arbiter_model, ExplorationConfig(properties=[prop])
        )
        assert not result.ok
        assert result.counterexample is not None
        assert result.violations[0].property_name == "mutex"

    def test_wrapping_existing_monitor(self):
        monitor = build_monitor(parse_formula("always p"), name="m")
        prop = AssertionProperty(monitor)
        assert prop.name == "m"
        assert prop.monitor is monitor
