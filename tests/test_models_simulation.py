"""Simulation-level tests for both case studies (SystemC models + ABV)."""

import pytest

from repro.abv import AbvHarness, FailureAction
from repro.psl import Verdict, build_monitor
from repro.models.master_slave import (
    BLOCKING_BURST,
    MsSystemModel,
    ms_invariant_properties,
    ms_timed_properties,
)
from repro.models.pci import PciSystemModel
from repro.models.pci.properties import (
    pci_cover_properties,
    pci_safety_properties,
)


def run_pci(n_masters=2, n_targets=2, cycles=2000, seed=2005):
    system = PciSystemModel(n_masters, n_targets, seed=seed)
    harness = AbvHarness(system.simulator, system.clock, system.letter)
    monitors = [
        build_monitor(d) for d in pci_safety_properties(n_masters, n_targets)
    ]
    harness.add_monitors(monitors)
    system.run_cycles(cycles)
    harness.finish()
    return system, harness, monitors


class TestPciSimulation:
    def test_transactions_complete(self):
        system, harness, _ = run_pci()
        stats = system.collect_statistics()
        assert stats.transactions > 10
        assert stats.words_moved >= stats.transactions

    def test_all_assertions_hold(self):
        system, harness, monitors = run_pci()
        failed = [m.name for m in monitors if m.verdict() is Verdict.FAILS]
        assert failed == []

    def test_assertions_are_not_vacuous(self):
        from repro.psl import SuffixImplicationMonitor

        system, harness, monitors = run_pci(cycles=3000)
        triggered = [
            m.triggered
            for m in monitors
            if isinstance(m, SuffixImplicationMonitor)
        ]
        assert any(t > 0 for t in triggered)

    def test_retries_happen_with_high_stop_probability(self):
        system = PciSystemModel(2, 1, seed=11, stop_probability=0.4)
        system.run_cycles(3000)
        assert sum(m.retries for m in system.masters) > 0
        assert sum(t.stops_issued for t in system.targets) > 0

    def test_coverage_goals_hit(self):
        system = PciSystemModel(2, 2, seed=5, stop_probability=0.3)
        harness = AbvHarness(system.simulator, system.clock, system.letter)
        covers = [build_monitor(d) for d in pci_cover_properties(2, 2)]
        harness.add_monitors(covers)
        system.run_cycles(6000)
        hits = {m.name: m.hits for m in covers}
        assert hits["cover_txn_0"] > 0
        assert hits["cover_txn_1"] > 0
        assert hits["cover_stop"] > 0

    def test_deterministic_with_seed(self):
        first, _, _ = run_pci(cycles=500, seed=42)
        second, _, _ = run_pci(cycles=500, seed=42)
        stats_a = first.collect_statistics()
        stats_b = second.collect_statistics()
        assert stats_a.transactions == stats_b.transactions
        assert stats_a.words_moved == stats_b.words_moved

    def test_different_seeds_differ(self):
        first, _, _ = run_pci(cycles=800, seed=1)
        second, _, _ = run_pci(cycles=800, seed=2)
        assert (
            first.collect_statistics().words_moved
            != second.collect_statistics().words_moved
        )

    def test_stop_action_halts_on_injected_violation(self):
        """Wire a deliberately wrong assertion; STOP must halt the run."""
        from repro.psl import parse_formula

        system = PciSystemModel(1, 1, seed=3)
        harness = AbvHarness(system.simulator, system.clock, system.letter)
        wrong = build_monitor(parse_formula("never req0"), "wrong")
        harness.add_monitor(
            wrong, actions=[FailureAction.REPORT, FailureAction.STOP]
        )
        system.run_cycles(2000)
        assert system.simulator.stopped
        assert wrong.verdict() is Verdict.FAILS


def run_ms(n_blocking=1, n_non_blocking=1, n_slaves=2, cycles=2000, seed=2005):
    system = MsSystemModel(n_blocking, n_non_blocking, n_slaves, seed=seed)
    harness = AbvHarness(system.simulator, system.clock, system.letter)
    n_masters = n_blocking + n_non_blocking
    monitors = [
        build_monitor(d)
        for d in ms_invariant_properties(n_masters, n_slaves, include_handshake=False)
        + ms_timed_properties(n_masters, n_slaves, system.blocking_flags)
    ]
    harness.add_monitors(monitors)
    system.run_cycles(cycles)
    harness.finish()
    return system, harness, monitors


class TestMasterSlaveSimulation:
    def test_transfers_complete_in_both_modes(self):
        system, harness, _ = run_ms()
        blocking = [m for m in system.masters if m.blocking]
        non_blocking = [m for m in system.masters if not m.blocking]
        assert all(m.transactions for m in blocking)
        assert all(m.transactions for m in non_blocking)
        # blocking masters move BLOCKING_BURST words per transaction
        for master in blocking:
            transaction = master.transactions[0]
            assert transaction.burst_length == BLOCKING_BURST

    def test_all_assertions_hold(self):
        system, harness, monitors = run_ms(2, 2, 3, cycles=3000)
        failed = [m.name for m in monitors if m.verdict() is Verdict.FAILS]
        assert failed == []

    def test_statistics_aggregate(self):
        system, harness, _ = run_ms(cycles=3000)
        stats = system.collect_statistics()
        assert stats.transactions > 0
        assert stats.arbitration_rounds >= stats.transactions
        assert "transactions" in stats.summary()

    def test_burst_atomicity_monitor_triggers(self):
        from repro.psl import SuffixImplicationMonitor

        system, harness, monitors = run_ms(cycles=3000)
        burst_monitors = [
            m
            for m in monitors
            if m.name.startswith("burst_atomic")
            and isinstance(m, SuffixImplicationMonitor)
        ]
        assert burst_monitors
        assert all(m.triggered > 0 for m in burst_monitors)

    def test_slave_memory_written(self):
        system, _, _ = run_ms(cycles=3000)
        assert any(s.memory for s in system.slaves)
        assert any(s.writes > 0 for s in system.slaves)

    def test_wait_states_slow_but_do_not_break(self):
        system, harness, monitors = run_ms(1, 1, 2, cycles=2500, seed=9)
        failed = [m.name for m in monitors if m.verdict() is Verdict.FAILS]
        assert failed == []
        # slave 1 has one wait state; transfers to it take longer
        assert system.slaves[1].wait_states == 1
