"""The sharded regression dispatcher: planning, hosts, merge, retry.

The contract under test everywhere: the merged report digest is
byte-identical to a serial run of the same specs at any shard count,
through any host kind, and across host failures that get retried.
"""

import json
import subprocess
import sys

import pytest

from repro.dispatch import (
    DispatchError,
    HostFailure,
    InProcessHost,
    LocalSubprocessHost,
    ShardDispatcher,
    ShardWork,
    merge_reports,
    plan_digest,
    plan_shards,
)
from repro.scenarios.regression import (
    RegressionReport,
    RegressionRunner,
    ScenarioSpec,
    build_specs,
    load_specs,
    run_scenario,
    save_specs,
)
from repro.scenarios.scoreboard import FaultPlan
from repro.workbench import SerialEngine, ShardedEngine, Workbench, engine_from_name

SPECS = build_specs(count=6, cycles=120)


@pytest.fixture(scope="module")
def serial_report():
    return RegressionRunner(SPECS, engine=SerialEngine()).run()


class TestPlanner:
    def test_round_robin_partition_is_total_and_disjoint(self):
        plan = plan_shards(SPECS, 3)
        assert [shard.index for shard in plan] == [0, 1, 2]
        assert all(shard.of == 3 for shard in plan)
        flattened = [spec for shard in plan for spec in shard.specs]
        assert sorted(flattened, key=lambda s: s.label) == sorted(
            SPECS, key=lambda s: s.label
        )
        assert plan[0].specs == tuple(SPECS[0::3])

    def test_plan_is_deterministic(self):
        assert plan_shards(SPECS, 4) == plan_shards(SPECS, 4)
        assert plan_digest(plan_shards(SPECS, 4)) == plan_digest(
            plan_shards(SPECS, 4)
        )

    def test_more_shards_than_specs_leaves_empty_shards(self):
        plan = plan_shards(SPECS[:2], 5)
        assert len(plan) == 5
        assert sum(len(shard) for shard in plan) == 2
        assert [len(shard) for shard in plan[2:]] == [0, 0, 0]

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError):
            plan_shards(SPECS, 0)


class TestSerialization:
    def test_fault_plan_round_trip(self):
        fault = FaultPlan("corrupt-read", unit=1, nth=3)
        assert FaultPlan.from_json(fault.to_json()) == fault

    def test_spec_round_trip_including_fault(self):
        spec = ScenarioSpec(
            "master_slave",
            9,
            (1, 2, 2),
            "bursty",
            200,
            fault=FaultPlan("drop", unit=0, nth=2),
            with_monitors=True,
        )
        wire = json.loads(json.dumps(spec.to_json()))
        assert ScenarioSpec.from_json(wire) == spec

    def test_report_round_trip_preserves_digest(self, serial_report):
        wire = json.loads(json.dumps(serial_report.to_json()))
        rebuilt = RegressionReport.from_json(wire)
        assert rebuilt.digest() == serial_report.digest()
        # everything digest-relevant survives byte-for-byte; throughput
        # is derived from the (rounded) wall clock, so compare without it
        first, second = rebuilt.to_json(), serial_report.to_json()
        first.pop("throughput_txn_per_s")
        second.pop("throughput_txn_per_s")
        assert first == second

    def test_spec_file_round_trip(self, tmp_path):
        path = str(tmp_path / "specs.json")
        save_specs(SPECS, path)
        assert load_specs(path) == list(SPECS)

    def test_spec_file_rejects_junk(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_specs(str(path))


class TestMerge:
    def test_merged_digest_matches_serial_at_any_shard_count(self, serial_report):
        for shards in (1, 2, 3, 6):
            plan = plan_shards(SPECS, shards)
            shard_reports = [
                RegressionRunner(shard.specs, engine=SerialEngine()).run()
                for shard in plan
                if shard.specs
            ]
            merged = merge_reports(shard_reports)
            assert merged.digest() == serial_report.digest(), f"shards={shards}"
            assert len(merged.verdicts) == len(serial_report.verdicts)

    def test_merge_of_nothing_is_an_empty_report(self):
        merged = merge_reports([])
        assert merged.verdicts == []
        assert not merged.ok  # an empty regression proves nothing


class _FailingHost:
    """In-process host that raises HostFailure its first N calls."""

    def __init__(self, name, failures=1):
        self.name = name
        self.failures_left = failures
        self.calls = 0

    def run_shard(self, work: ShardWork):
        self.calls += 1
        if self.failures_left > 0:
            self.failures_left -= 1
            raise HostFailure(self.name, work.shard.label, "synthetic crash")
        return InProcessHost(self.name).run_shard(work)


class TestDispatcherRetry:
    def test_in_process_dispatch_matches_serial(self, serial_report):
        hosts = [InProcessHost(f"h{i}") for i in range(3)]
        outcome = ShardDispatcher(SPECS, shards=3, hosts=hosts).run()
        assert outcome.report.digest() == serial_report.digest()
        assert outcome.retries == 0
        assert len(outcome.runs) == 3

    def test_failed_shard_is_retried_on_another_host(self, serial_report):
        flaky = _FailingHost("flaky", failures=1)
        stable = InProcessHost("stable")
        outcome = ShardDispatcher(SPECS, shards=2, hosts=[flaky, stable]).run()
        assert outcome.report.digest() == serial_report.digest()
        assert outcome.retries == 1
        retried = [run for run in outcome.runs if run.retried]
        assert len(retried) == 1
        # shard 0 started on the flaky host, then moved to the other one
        assert retried[0].host == "stable"
        assert retried[0].failures == ("flaky: synthetic crash",)
        assert "failed attempt" in "\n".join(outcome.log_lines())

    def test_dispatch_aborts_when_every_host_fails(self):
        hosts = [_FailingHost("h0", failures=99), _FailingHost("h1", failures=99)]
        with pytest.raises(DispatchError, match="failed on every host"):
            ShardDispatcher(SPECS, shards=2, hosts=hosts).run()

    def test_more_shards_than_specs_still_merges_clean(self, serial_report):
        hosts = [InProcessHost(f"h{i}") for i in range(2)]
        outcome = ShardDispatcher(
            SPECS[:2], shards=5, hosts=hosts
        ).run()
        serial = RegressionRunner(SPECS[:2], engine=SerialEngine()).run()
        assert outcome.report.digest() == serial.digest()
        assert len(outcome.runs) == 2  # empty shards never dispatched


class _KillFirstSpawn(LocalSubprocessHost):
    """Subprocess host whose first child is killed mid-shard."""

    def __init__(self, name):
        super().__init__(name)
        self.killed = False

    def _started(self, process):
        if not self.killed:
            self.killed = True
            process.kill()


class TestSubprocessHosts:
    """The production-shaped path: real ``--shard K/N`` subprocesses."""

    def test_subprocess_dispatch_matches_serial(self, serial_report):
        outcome = ShardDispatcher(SPECS, shards=2).run()
        assert outcome.report.ok
        assert outcome.report.digest() == serial_report.digest()
        assert outcome.hosts == ("local0", "local1")

    def test_killed_subprocess_host_is_retried_with_digest_unchanged(
        self, serial_report
    ):
        """The fault-tolerance acceptance: a host dies mid-shard, the
        shard reruns on another host, and the merged digest is exactly
        the serial one.  Static schedule pins the single shard's first
        attempt to the flaky host so the kill deterministically fires
        (the stealing-schedule kill path is covered with HTTP hosts in
        test_remote_dispatch.py)."""
        flaky = _KillFirstSpawn("flaky")
        stable = LocalSubprocessHost("stable")
        outcome = ShardDispatcher(
            SPECS, shards=1, hosts=[flaky, stable], schedule="static"
        ).run()
        assert flaky.killed
        assert outcome.retries == 1
        assert outcome.runs[0].host == "stable"
        assert "killed by signal" in outcome.runs[0].failures[0]
        assert outcome.report.digest() == serial_report.digest()

    def test_host_failure_reports_unparseable_output(self, tmp_path):
        host = LocalSubprocessHost("bad", python=sys.executable)
        # point the host at a command that prints no JSON
        host._command = lambda work: [sys.executable, "-c", "print('nope')"]
        shard = plan_shards(SPECS[:1], 1)[0]
        with pytest.raises(HostFailure, match="unparseable"):
            host.run_shard(ShardWork(shard=shard, spec_file=str(tmp_path / "x")))


class TestShardedEngine:
    def test_engine_runs_regression_with_serial_digest(self, serial_report):
        engine = ShardedEngine(2, hosts=[InProcessHost("a"), InProcessHost("b")])
        report = RegressionRunner(SPECS, engine=engine).run()
        assert report.digest() == serial_report.digest()
        assert report.workers == 2
        assert engine.last_outcome is not None
        assert engine.last_outcome.retries == 0

    def test_fail_fast_truncates_after_dispatch(self):
        """fail-fast means the same thing at the sharded tier: stop
        consuming verdicts at the first failure (shards themselves run
        to completion -- they are remote)."""
        bad = ScenarioSpec(
            "master_slave", 1, (1, 1, 2), "default", 150,
            fault=FaultPlan("drop", unit=0, nth=1),
        )
        good = [
            ScenarioSpec("master_slave", 100 + i, (1, 1, 2), "default", 150)
            for i in range(3)
        ]
        engine = ShardedEngine(2, hosts=[InProcessHost("a"), InProcessHost("b")])
        report = RegressionRunner([bad] + good, engine=engine, fail_fast=True).run()
        assert not report.ok
        assert report.stopped_early  # the bad spec sorts first by seed

    def test_engine_rejects_foreign_fanouts(self):
        engine = ShardedEngine(2)
        with pytest.raises(TypeError, match="scenario regressions"):
            list(engine.imap(len, ["a", "b"]))

    def test_engine_registry_knows_sharded(self):
        engine = engine_from_name("sharded", shards=3)
        assert engine.name == "sharded"
        assert engine.workers == 3
        with pytest.raises(ValueError, match="unknown engine"):
            engine_from_name("quantum")

    def test_workbench_regress_through_injected_sharded_engine(self):
        engine = ShardedEngine(2, hosts=[InProcessHost("a"), InProcessHost("b")])
        workbench = Workbench("master_slave", engine=engine)
        result = workbench.regress(scenarios=4, cycles=120)
        assert result.status.name == "PASSED"
        assert result.metrics["engine"] == "sharded"
        # run facts (which hosts, how many retries) are metrics, never
        # digest-bearing data -- see test_session_digest_is_engine_invariant
        facts = result.metrics["dispatch"]
        # which host ran how many shards is a stealing-race outcome, so
        # host_loads is only deterministic in total
        assert sum(facts.pop("host_loads").values()) == 2
        assert facts == {
            "shards": 2,
            "hosts": ["a", "b"],
            "retries": 0,
            "schedule": "stealing",
            "duplicates": 0,
            "failures": {},
        }
        assert "dispatch" not in result.data
        # the digest the sharded engine produced is the serial one
        specs = build_specs(
            models=["master_slave"], count=4, base_seed=2005, cycles=120
        )
        serial = RegressionRunner(specs, engine=SerialEngine()).run()
        assert result.data["regression_digest"] == serial.digest()

    def test_session_digest_is_engine_invariant(self):
        """The SessionReport digest must not change with the execution
        tier -- including the dispatch bookkeeping (hosts, retries)."""
        serial_wb = Workbench("master_slave")
        serial_wb.regress(scenarios=4, cycles=120, workers=1)
        flaky = _FailingHost("flaky", failures=1)
        sharded_wb = Workbench(
            "master_slave",
            engine=ShardedEngine(2, hosts=[flaky, InProcessHost("stable")]),
        )
        sharded_wb.regress(scenarios=4, cycles=120)
        assert sharded_wb.engine.last_outcome.retries == 1
        assert serial_wb.report().digest() == sharded_wb.report().digest()


class TestCli:
    """--shards / --shard K/N / --merge on both command lines."""

    def _scenarios_main(self, argv, capsys):
        from repro.scenarios.regression import main

        code = main(argv)
        return code, capsys.readouterr()

    def test_manual_shard_merge_round_trip(self, tmp_path, capsys, serial_report):
        base = ["--scenarios", "6", "--cycles", "120", "--json"]
        paths = []
        for k in (1, 2):
            code, captured = self._scenarios_main(
                base + ["--shard", f"{k}/2"], capsys
            )
            assert code == 0
            path = tmp_path / f"s{k}.json"
            path.write_text(captured.out)
            paths.append(str(path))
        code, captured = self._scenarios_main(
            ["--merge", *paths, "--json"], capsys
        )
        assert code == 0
        merged = json.loads(captured.out)
        assert merged["digest"] == serial_report.digest()
        assert merged["scenarios"] == 6

    def test_spec_file_run(self, tmp_path, capsys, serial_report):
        path = str(tmp_path / "specs.json")
        save_specs(SPECS, path)
        code, captured = self._scenarios_main(
            ["--spec-file", path, "--workers", "1", "--json"], capsys
        )
        assert code == 0
        assert json.loads(captured.out)["digest"] == serial_report.digest()

    def test_shard_flags_are_mutually_exclusive(self, capsys):
        from repro.scenarios.regression import main

        with pytest.raises(SystemExit):
            main(["--shards", "2", "--shard", "1/2"])

    def test_bad_shard_coordinate_rejected(self, capsys):
        from repro.scenarios.regression import main

        for bad in ("3/2", "0/2", "x/y"):
            with pytest.raises(SystemExit):
                main(["--shard", bad])

    def test_repro_cli_shard_and_merge(self, tmp_path, capsys):
        from repro.cli import main

        base = ["regress", "--model", "master_slave", "--scenarios", "4",
                "--cycles", "120", "--json"]
        paths = []
        for k in (1, 2):
            code = main(base + ["--shard", f"{k}/2"])
            captured = capsys.readouterr()
            assert code == 0
            path = tmp_path / f"ms{k}.json"
            path.write_text(captured.out)
            paths.append(str(path))
        code = main(["regress", "--merge", *paths, "--json"])
        captured = capsys.readouterr()
        assert code == 0
        merged = json.loads(captured.out)
        specs = build_specs(
            models=["master_slave"], count=4, base_seed=2005, cycles=120
        )
        serial = RegressionRunner(specs, engine=SerialEngine()).run()
        assert merged["digest"] == serial.digest()

    def test_repro_cli_regress_requires_model_without_merge(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--model is required"):
            main(["regress", "--scenarios", "4"])


class TestWarningHygiene:
    """JSON stdout must stay parseable even when shims warn (satellite)."""

    def test_route_warnings_to_stderr_pins_the_stream(self):
        code = (
            "import warnings, json, sys\n"
            "from repro.cliutil import route_warnings_to_stderr\n"
            "warnings.showwarning = lambda *a, **k: print('LEAK')\n"
            "route_warnings_to_stderr()\n"
            "warnings.warn('shim says hello', DeprecationWarning)\n"
            "print(json.dumps({'ok': True}))\n"
        )
        result = subprocess.run(
            [sys.executable, "-W", "default::DeprecationWarning", "-c", code],
            capture_output=True,
            text=True,
            env=_repro_env(),
        )
        assert result.returncode == 0, result.stderr
        assert json.loads(result.stdout) == {"ok": True}
        assert "shim says hello" in result.stderr

    def test_scenarios_json_stream_is_pure_json_under_w_default(self):
        result = subprocess.run(
            [
                sys.executable,
                "-W",
                "default",
                "-m",
                "repro.scenarios",
                "--scenarios",
                "2",
                "--cycles",
                "100",
                "--workers",
                "1",
                "--json",
            ],
            capture_output=True,
            text=True,
            env=_repro_env(),
        )
        assert result.returncode == 0, result.stderr
        doc = json.loads(result.stdout)  # would raise if warnings leaked
        assert doc["scenarios"] == 2


def _repro_env():
    from repro.dispatch.hosts import _child_env

    return _child_env()
