"""The unified Workbench verification-session API.

Covers the DUV registry, the typed stages, plan execution with
failure/error propagation, the coverage-residue export and its
regression bias, the pluggable engines, and the deprecation shims the
old entry points now live behind.
"""

import json

import pytest

from repro.asm import AsmModel
from repro.explorer import ExplorationConfig
from repro.psl import Property, parse_formula
from repro.workbench import (
    DUV,
    CoverageResidue,
    LivenessCheck,
    ModelRegistry,
    MultiprocessingEngine,
    SerialEngine,
    StageCall,
    StageStatus,
    UnknownModelError,
    VerificationPlan,
    Workbench,
    default_registry,
    resolve_engine,
)
from conftest import BrokenArbiter, ToyArbiter, ToyMaster

MUTEX = Property("mutex", parse_formula("never (m0.m_gnt && m1.m_gnt)"))


def toy_factory(broken: bool = False):
    def factory() -> AsmModel:
        model = AsmModel("toy")
        ToyMaster(model=model, name="m0")
        ToyMaster(model=model, name="m1")
        (BrokenArbiter if broken else ToyArbiter)(model=model, name="arbiter")
        model.seal()
        return model

    return factory


def toy_duv(broken: bool = False, **kwargs) -> DUV:
    def m0_req(key):
        return key.value("m0", "m_req") is True

    def m0_gnt(key):
        return key.value("m0", "m_gnt") is True

    kwargs.setdefault(
        "liveness_checks", (LivenessCheck("grant0", m0_req, m0_gnt),)
    )
    return DUV(
        name="toy",
        model_factory=toy_factory(broken),
        directives=[MUTEX],
        **kwargs,
    )


class TestRegistry:
    def test_builtin_models_discoverable(self):
        registry = default_registry()
        assert "master_slave" in registry.names()
        assert "pci" in registry.names()

    def test_get_builds_parameterized_duv(self):
        duv = default_registry().get("pci", 1, 1)
        assert duv.name == "pci"
        assert duv.metadata["topology"] == (1, 1)
        assert duv.scenario_model == "pci"

    def test_unknown_model_raises(self):
        with pytest.raises(UnknownModelError):
            default_registry().get("nonexistent")

    def test_fresh_registry_register_and_conflict(self):
        registry = ModelRegistry(builtins={})
        registry.register("toy", toy_duv)
        assert registry.get("toy").name == "toy"
        with pytest.raises(ValueError):
            registry.register("toy", toy_duv)
        registry.register("toy", toy_duv, replace=True)

    def test_describe(self):
        assert "Master/Slave" in default_registry().describe("master_slave")

    def test_non_default_registry_resolves_builtins(self):
        registry = ModelRegistry()
        duv = registry.get("master_slave")
        assert duv.name == "master_slave"
        assert "pci" in registry.names()


class TestStages:
    def test_explore_passes_and_exports_residue(self):
        wb = Workbench(toy_duv())
        result = wb.explore()
        assert result.ok and result.status is StageStatus.PASSED
        assert result.data["states"] > 0
        assert result.data["violations"] == []
        # before any simulation the residue is the whole FSM
        residue = result.payload["residue"]
        assert isinstance(residue, CoverageResidue)
        assert residue.transition_coverage == 0.0
        assert len(residue.uncovered_states) == result.data["states"]
        assert result.data["residue"]["uncovered_states"] == result.data["states"]

    def test_explore_fails_on_broken_design(self):
        wb = Workbench(toy_duv(broken=True))
        result = wb.explore()
        assert result.status is StageStatus.FAILED
        assert result.data["violations"]
        assert result.payload["exploration"].counterexample is not None

    def test_check_liveness_auto_explores(self):
        wb = Workbench(toy_duv())
        result = wb.check_liveness()
        assert result.ok
        # the implicit explore stage was recorded first
        assert [s.stage for s in wb.report().stages] == ["explore", "check_liveness"]
        assert result.data["checks"][0]["holds"] is True

    def test_translate_renders_artifacts(self):
        wb = Workbench(toy_duv())
        result = wb.translate()
        assert result.ok
        assert "SC_MODULE(ToyArbiter)" in result.payload["systemc"]
        assert "class MutexMonitor" in result.payload["csharp"]
        assert result.data["systemc_sha"]

    def test_simulate_abv_runtime_path_updates_residue(self):
        wb = Workbench(toy_duv())
        wb.explore()
        before = wb.residue
        result = wb.simulate_abv(cycles=400)
        assert result.ok
        assert result.data["monitor_verdicts"]["mutex"] == "holds"
        # the simulation covered part of the FSM: the residue shrank
        after = wb.residue
        assert after.samples > 0
        assert after.transition_coverage > before.transition_coverage
        assert len(after.uncovered_states) < len(before.uncovered_states)
        assert result.data["residue"] == after.to_json()

    def test_regress_with_explicit_specs(self):
        from repro.scenarios.regression import build_specs

        wb = Workbench(toy_duv())
        specs = build_specs(models=["master_slave"], count=3, cycles=150)
        result = wb.regress(specs=specs, workers=1)
        assert result.ok
        assert result.data["scenarios"] == 3
        assert result.data["regression_digest"]
        assert result.metrics["engine"] == "serial"

    def test_regress_without_binding_or_specs_errors(self):
        wb = Workbench(toy_duv())
        result = wb.regress(scenarios=2)
        assert result.status is StageStatus.ERROR
        assert "scenario binding" in result.error


class TestResidueBias:
    def test_low_coverage_residue_biases_profiles(self):
        wb = Workbench("master_slave", seed=7)
        residue = CoverageResidue(
            states_total=10,
            transitions_total=10,
            uncovered_states=tuple(range(10)),
            uncovered_transitions=tuple(f"t{i}" for i in range(10)),
        )
        result = wb.regress(scenarios=4, cycles=150, workers=1, bias=residue)
        assert result.ok
        assert result.data["bias"]["applied"] is True
        assert result.data["bias"]["profiles"] == ["bursty", "edges"]
        profiles = {
            v.spec.profile for v in result.payload["report"].verdicts
        }
        assert profiles <= {"bursty", "edges"}

    def test_high_coverage_residue_leaves_profiles_alone(self):
        wb = Workbench("master_slave", seed=7)
        residue = CoverageResidue(
            states_total=10,
            transitions_total=10,
            uncovered_states=(),
            uncovered_transitions=(),
            samples=100,
        )
        result = wb.regress(scenarios=4, cycles=150, workers=1, bias=residue)
        assert result.data["bias"]["applied"] is False

    def test_session_residue_via_bias_true(self):
        wb = Workbench(toy_duv())
        wb.explore()  # residue = whole FSM -> bias applies
        from repro.scenarios.regression import build_specs

        # explicit specs bypass profile construction; the bias must be
        # reported as NOT applied even though the residue was supplied
        result = wb.regress(
            specs=build_specs(models=["master_slave"], count=2, cycles=150),
            workers=1,
            bias=True,
        )
        assert result.data["bias"]["transition_coverage"] == 0.0
        assert result.data["bias"]["applied"] is False
        assert result.data["bias"]["profiles"] == []


class TestPlans:
    def test_figure1_plan_verifies_toy_design(self):
        duv = toy_duv()
        duv.scenario_model = "master_slave"  # borrow the ms scenario binding
        report = Workbench(duv).run_plan(
            VerificationPlan.figure1(
                cycles=300, scenarios=2, scenario_cycles=150, workers=1
            )
        )
        assert report.ok
        assert [s.stage for s in report.stages] == [
            "explore",
            "check_liveness",
            "translate",
            "simulate_abv",
            "regress",
        ]
        assert all(s.ok for s in report.stages)
        assert report.digest() == report.digest()

    def test_failed_stage_skips_the_rest(self):
        duv = toy_duv(broken=True)
        report = Workbench(duv).run_plan(
            VerificationPlan.figure1(cycles=200, scenarios=2, workers=1)
        )
        assert not report.ok
        statuses = {s.stage: s.status for s in report.stages}
        assert statuses["explore"] is StageStatus.FAILED
        assert statuses["check_liveness"] is StageStatus.SKIPPED
        assert statuses["translate"] is StageStatus.SKIPPED
        assert statuses["simulate_abv"] is StageStatus.SKIPPED
        assert statuses["regress"] is StageStatus.SKIPPED

    def test_erroring_stage_is_captured_not_raised(self):
        def explode():
            raise RuntimeError("factory on fire")

        duv = DUV(name="broken-factory", model_factory=explode, directives=[MUTEX])
        wb = Workbench(duv)
        report = wb.run_plan(
            VerificationPlan.figure1(cycles=100, scenarios=2, workers=1)
        )
        assert not report.ok
        explore = report.stage("explore")
        assert explore.status is StageStatus.ERROR
        assert "factory on fire" in explore.error
        assert explore.exception is not None
        assert report.stage("regress").status is StageStatus.SKIPPED

    def test_continue_on_failure_runs_everything(self):
        plan = VerificationPlan(
            name="stubborn",
            stages=(
                StageCall.of("explore"),
                StageCall.of("translate"),
            ),
            continue_on_failure=True,
        )
        report = Workbench(toy_duv(broken=True)).run_plan(plan)
        assert report.stage("translate").status is StageStatus.PASSED
        assert not report.ok

    def test_unknown_stage_rejected_at_construction(self):
        with pytest.raises(ValueError):
            VerificationPlan(name="bad", stages=(StageCall.of("blastoff"),))

    def test_report_json_is_serializable(self):
        report = Workbench(toy_duv()).run_plan(
            VerificationPlan(name="mc", stages=(StageCall.of("explore"),))
        )
        doc = json.loads(json.dumps(report.to_json()))
        assert doc["ok"] is True
        assert doc["stages"][0]["stage"] == "explore"
        assert doc["digest"] == report.digest()


class TestSessionDigest:
    @pytest.mark.slow
    def test_digest_is_worker_count_invariant(self):
        plan_args = dict(cycles=400, scenarios=4, scenario_cycles=150)
        digests = set()
        for workers in (1, 2):
            report = Workbench("master_slave", seed=11).run_plan(
                VerificationPlan.figure1(workers=workers, **plan_args)
            )
            assert report.ok, report.summary()
            digests.add(report.digest())
        assert len(digests) == 1

    def test_digest_changes_with_seed(self):
        reports = [
            Workbench("master_slave", seed=seed).run_plan(
                VerificationPlan(
                    name="regress-only",
                    stages=(StageCall.of("regress", scenarios=2, cycles=150, workers=1),),
                )
            )
            for seed in (1, 2)
        ]
        assert reports[0].digest() != reports[1].digest()


class TestEngines:
    def test_serial_engine_preserves_order(self):
        assert list(SerialEngine().imap(abs, [-3, -1, -2])) == [3, 1, 2]

    def test_multiprocessing_engine_computes_everything(self):
        engine = MultiprocessingEngine(workers=2)
        assert sorted(engine.imap(abs, [-5, -6, -7, -8])) == [5, 6, 7, 8]

    def test_multiprocessing_engine_degrades_inline_for_one_item(self):
        engine = MultiprocessingEngine(workers=4)
        assert list(engine.imap(abs, [-9])) == [9]

    def test_resolve_engine_heuristics(self):
        assert isinstance(resolve_engine(1, 100), SerialEngine)
        engine = resolve_engine(3, 100)
        assert isinstance(engine, MultiprocessingEngine)
        assert engine.workers == 3
        # never more workers than items
        assert resolve_engine(None, 1).workers == 1

    def test_workbench_uses_injected_engine(self):
        from repro.scenarios.regression import build_specs

        wb = Workbench(toy_duv(), engine=SerialEngine())
        result = wb.regress(
            specs=build_specs(models=["master_slave"], count=2, cycles=150)
        )
        assert result.metrics["engine"] == "serial"
        assert result.metrics["workers"] == 1

    def test_injected_engine_wins_over_workers_argument(self):
        from repro.scenarios.regression import build_specs

        wb = Workbench(toy_duv(), engine=SerialEngine())
        result = wb.regress(
            specs=build_specs(models=["master_slave"], count=2, cycles=150),
            workers=4,
        )
        assert result.metrics["engine"] == "serial"
        assert result.metrics["workers"] == 1


class TestDeprecationShims:
    def test_design_flow_warns_but_works(self):
        from repro.flow import DesignFlow

        with pytest.warns(DeprecationWarning, match="Workbench"):
            flow = DesignFlow(toy_factory(), [MUTEX])
        report = flow.model_check()
        assert report.ok

    def test_scenarios_regression_runner_warns_and_resolves(self):
        import repro.scenarios
        from repro.scenarios.regression import RegressionRunner as real

        with pytest.warns(DeprecationWarning, match="RegressionRunner"):
            shimmed = repro.scenarios.RegressionRunner
        assert shimmed is real

    def test_flow_report_types_still_importable(self):
        from repro.flow import (  # noqa: F401
            FlowReport,
            LivenessCheck,
            ModelCheckingReport,
            SimulationReport,
        )
