"""Unit tests for the simulation kernel's scheduling semantics."""

import pytest

from repro.sysc import (
    Clock,
    DeltaCycleLimitExceeded,
    Event,
    Signal,
    SimulationStopped,
    Simulator,
    ns,
)


class TestEventsAndProcesses:
    def test_thread_runs_at_initialization(self):
        sim = Simulator()
        ran = []

        def body():
            ran.append(True)
            return
            yield  # pragma: no cover -- makes it a generator

        sim.thread(body)
        sim.run(ns(1))
        assert ran

    def test_dont_initialize(self):
        sim = Simulator()
        ran = []
        event = Event("go", sim)

        def body():
            while True:
                yield event
                ran.append(sim.time)

        sim.thread(body, sensitive=(), dont_initialize=False)
        sim.run(ns(1))
        assert not ran  # waits on event, never notified

    def test_timed_wait(self):
        sim = Simulator()
        wakeups = []

        def body():
            yield ns(10)
            wakeups.append(sim.time)
            yield ns(5)
            wakeups.append(sim.time)

        sim.thread(body)
        sim.run(ns(100))
        assert wakeups == [ns(10), ns(15)]

    def test_event_notification_wakes_waiter(self):
        sim = Simulator()
        event = Event("go", sim)
        log = []

        def waiter():
            yield event
            log.append(("woke", sim.time))

        def notifier():
            yield ns(7)
            event.notify()

        sim.thread(waiter)
        sim.thread(notifier)
        sim.run(ns(20))
        assert log == [("woke", ns(7))]

    def test_wait_on_multiple_events(self):
        sim = Simulator()
        first = Event("first", sim)
        second = Event("second", sim)
        log = []

        def waiter():
            yield (first, second)
            log.append(sim.time)

        def notifier():
            yield ns(3)
            second.notify()

        sim.thread(waiter)
        sim.thread(notifier)
        sim.run(ns(10))
        assert log == [ns(3)]

    def test_timed_notification(self):
        sim = Simulator()
        event = Event("later", sim)
        log = []

        def waiter():
            yield event
            log.append(sim.time)

        sim.thread(waiter)
        sim.initialize()
        event.notify(ns(12))
        sim.run(ns(20))
        assert log == [ns(12)]

    def test_cancel_timed_notification(self):
        sim = Simulator()
        event = Event("later", sim)
        log = []

        def waiter():
            yield event
            log.append(sim.time)

        sim.thread(waiter)
        sim.initialize()
        event.notify(ns(12))
        event.cancel()
        sim.run(ns(20))
        assert log == []

    def test_method_with_static_sensitivity(self):
        sim = Simulator()
        signal = Signal(0, "s", sim)
        observed = []
        sim.method(
            lambda: observed.append(signal.read()),
            sensitive=(signal,),
            dont_initialize=True,
        )

        def driver():
            yield ns(1)
            signal.write(1)
            yield ns(1)
            signal.write(2)

        sim.thread(driver)
        sim.run(ns(10))
        assert observed == [1, 2]

    def test_thread_terminates_cleanly(self):
        sim = Simulator()

        def body():
            yield ns(1)

        process = sim.thread(body)
        sim.run(ns(10))
        assert process.terminated


class TestDeltaCycles:
    def test_signal_update_deferred_one_delta(self):
        sim = Simulator()
        signal = Signal(0, "s", sim)
        seen = []

        def body():
            signal.write(42)
            seen.append(signal.read())  # still old value
            yield ns(1)
            seen.append(signal.read())  # updated

        sim.thread(body)
        sim.run(ns(5))
        assert seen == [0, 42]

    def test_two_signals_swap_atomically(self):
        sim = Simulator()
        a = Signal(1, "a", sim)
        b = Signal(2, "b", sim)

        def swapper():
            a.write(b.read())
            b.write(a.read())
            yield ns(1)

        sim.thread(swapper)
        sim.run(ns(5))
        assert (a.read(), b.read()) == (2, 1)

    def test_delta_chain_within_one_timestep(self):
        sim = Simulator()
        a = Signal(0, "a", sim)
        b = Signal(0, "b", sim)
        sim.method(lambda: b.write(a.read() * 10), sensitive=(a,), dont_initialize=True)

        def driver():
            a.write(5)
            yield ns(1)

        sim.thread(driver)
        sim.run(ns(5))
        assert b.read() == 50
        assert sim.time == ns(5)

    def test_delta_livelock_detected(self):
        sim = Simulator(max_delta_cycles=50)
        a = Signal(0, "a", sim)
        # a method that retriggers itself forever in the same timestep
        sim.method(lambda: a.write(a.read() + 1), sensitive=(a,))
        with pytest.raises(DeltaCycleLimitExceeded):
            sim.run(ns(1))

    def test_signal_event_flag(self):
        sim = Simulator()
        signal = Signal(0, "s", sim)
        flags = []

        def watcher():
            yield signal.value_changed
            flags.append(signal.event())

        def driver():
            yield ns(1)
            signal.write(9)

        sim.thread(watcher)
        sim.thread(driver)
        sim.run(ns(5))
        assert flags == [True]


class TestStop:
    def test_simulation_stopped_from_process(self):
        sim = Simulator()

        def body():
            yield ns(5)
            raise SimulationStopped("enough")

        sim.thread(body)
        sim.run(ns(100))
        assert sim.stopped
        assert sim.stop_reason == "enough"
        assert sim.time == ns(5)

    def test_explicit_stop(self):
        sim = Simulator()

        def body():
            while True:
                yield ns(1)
                if sim.time >= ns(3):
                    sim.stop("done")

        sim.thread(body)
        sim.run(ns(100))
        assert sim.stopped


class TestRunSemantics:
    def test_run_until_duration(self):
        sim = Simulator()
        clock = Clock("clk", ns(10), sim)
        sim.run(ns(95))
        assert sim.time == ns(95)

    def test_starvation_ends_run(self):
        sim = Simulator()

        def body():
            yield ns(3)

        sim.thread(body)
        sim.run()  # no deadline: runs until no activity
        assert sim.time == ns(3)

    def test_stats_collected(self):
        sim = Simulator()
        clock = Clock("clk", ns(10), sim)
        sim.run(ns(100))
        assert sim.stats.process_runs > 0
        assert sim.stats.delta_cycles > 0
        assert sim.stats.signal_changes > 0
        assert "process runs" in sim.stats.summary()
