"""Unit tests for the FSM data structure and graph algorithms."""

from repro.asm import ActionCall
from repro.asm.state import Location, StateKey
from repro.explorer import Fsm, iter_paths


def key(**values) -> StateKey:
    return StateKey(tuple((Location("m", k), v) for k, v in values.items()))


def build_chain(length: int) -> Fsm:
    fsm = Fsm("chain")
    previous = fsm.add_state(key(x=0), is_initial=True)
    for i in range(1, length):
        node = fsm.add_state(key(x=i))
        fsm.add_transition(previous.index, node.index, ActionCall("m", "step"))
        previous = node
    return fsm


class TestConstruction:
    def test_add_state_dedupes_by_key(self):
        fsm = Fsm()
        first = fsm.add_state(key(x=1))
        second = fsm.add_state(key(x=1))
        assert first.index == second.index
        assert fsm.state_count() == 1

    def test_state_lookup(self):
        fsm = Fsm()
        fsm.add_state(key(x=1))
        assert fsm.state_by_key(key(x=1)) is not None
        assert fsm.state_by_key(key(x=2)) is None
        assert fsm.contains_key(key(x=1))

    def test_transitions_indexed_both_ways(self):
        fsm = build_chain(3)
        assert len(fsm.outgoing(0)) == 1
        assert len(fsm.incoming(1)) == 1
        assert fsm.successors(0) == [1]

    def test_mark_terminal(self):
        fsm = build_chain(2)
        fsm.mark_terminal(1, "violation")
        assert fsm.states[1].terminal_reason == "violation"
        assert fsm.terminal_states()[0].index == 1

    def test_deadlock_states(self):
        fsm = build_chain(3)
        deadlocks = fsm.deadlock_states()
        assert [s.index for s in deadlocks] == [2]
        fsm.mark_terminal(2, "filter:x")
        assert fsm.deadlock_states() == []


class TestPaths:
    def test_shortest_path(self):
        fsm = build_chain(4)
        path = fsm.shortest_path(0, 3)
        assert len(path) == 3
        assert path[0].source == 0 and path[-1].target == 3

    def test_shortest_path_none_when_unreachable(self):
        fsm = Fsm()
        fsm.add_state(key(x=0), is_initial=True)
        fsm.add_state(key(x=1))
        assert fsm.shortest_path(0, 1) is None

    def test_shortest_path_trivial(self):
        fsm = build_chain(2)
        assert fsm.shortest_path(0, 0) == []

    def test_shortest_path_prefers_short_branch(self):
        fsm = Fsm()
        a = fsm.add_state(key(x=0), is_initial=True)
        b = fsm.add_state(key(x=1))
        c = fsm.add_state(key(x=2))
        fsm.add_transition(a.index, b.index, ActionCall("m", "long1"))
        fsm.add_transition(b.index, c.index, ActionCall("m", "long2"))
        fsm.add_transition(a.index, c.index, ActionCall("m", "direct"))
        path = fsm.shortest_path(a.index, c.index)
        assert len(path) == 1
        assert path[0].call.action == "direct"

    def test_reachable_from(self):
        fsm = build_chain(3)
        fsm.add_state(key(x=99))  # island
        assert fsm.reachable_from(0) == {0, 1, 2}

    def test_iter_paths_bounded(self):
        fsm = build_chain(4)
        paths = list(iter_paths(fsm, 0, max_depth=2))
        assert max(len(p) for p in paths) == 2


class TestScc:
    def test_chain_has_singleton_sccs(self):
        fsm = build_chain(3)
        components = fsm.strongly_connected_components()
        assert sorted(len(c) for c in components) == [1, 1, 1]

    def test_cycle_detected(self):
        fsm = Fsm()
        a = fsm.add_state(key(x=0), is_initial=True)
        b = fsm.add_state(key(x=1))
        fsm.add_transition(a.index, b.index, ActionCall("m", "go"))
        fsm.add_transition(b.index, a.index, ActionCall("m", "back"))
        components = fsm.strongly_connected_components()
        assert sorted(len(c) for c in components) == [2]

    def test_mixed_graph(self):
        fsm = Fsm()
        a = fsm.add_state(key(x=0), is_initial=True)
        b = fsm.add_state(key(x=1))
        c = fsm.add_state(key(x=2))
        fsm.add_transition(a.index, b.index, ActionCall("m", "t1"))
        fsm.add_transition(b.index, c.index, ActionCall("m", "t2"))
        fsm.add_transition(c.index, b.index, ActionCall("m", "t3"))
        components = fsm.strongly_connected_components()
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 2]
