"""Property-based tests for the PSL semantics and monitors.

The central invariants:

* view monotonicity: ``STRONG => NEUTRAL => WEAK`` on every formula and
  trace,
* verdict coherence: HOLDS_STRONGLY implies not FAILS; definite
  verdicts are stable under trace extension,
* incremental monitors agree with the replay semantics on every
  supported formula shape,
* SERE algebra: unit/associativity laws for concatenation and
  alternation.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.psl import (
    And,
    Const,
    FlAlways,
    FlBool,
    FlEventually,
    FlNever,
    FlNext,
    FlNot,
    FlOr,
    FlSere,
    FlSuffixImpl,
    FlUntil,
    Not,
    Or,
    SereBool,
    SereConcat,
    SereOr,
    SereRepeat,
    Var,
    Verdict,
    View,
    build_monitor,
    run_monitor,
    satisfies,
    verdict,
)
from repro.psl.sere import Matcher

NAMES = ("p", "q", "r")

letters = st.fixed_dictionaries({name: st.booleans() for name in NAMES})
traces = st.lists(letters, min_size=1, max_size=7)


@st.composite
def bool_exprs(draw, depth=2):
    if depth == 0:
        return draw(
            st.one_of(
                st.sampled_from([Var(n) for n in NAMES]),
                st.sampled_from([Const(True), Const(False)]),
            )
        )
    branch = draw(st.integers(0, 3))
    if branch == 0:
        return Not(draw(bool_exprs(depth=depth - 1)))
    if branch == 1:
        return And(draw(bool_exprs(depth=depth - 1)), draw(bool_exprs(depth=depth - 1)))
    if branch == 2:
        return Or(draw(bool_exprs(depth=depth - 1)), draw(bool_exprs(depth=depth - 1)))
    return draw(bool_exprs(depth=0))


@st.composite
def seres(draw, depth=2):
    if depth == 0:
        return SereBool(draw(bool_exprs(depth=1)))
    branch = draw(st.integers(0, 3))
    if branch == 0:
        return SereConcat(
            tuple(
                draw(st.lists(seres(depth=depth - 1), min_size=1, max_size=3))
            )
        )
    if branch == 1:
        return SereOr(draw(seres(depth=depth - 1)), draw(seres(depth=depth - 1)))
    if branch == 2:
        low = draw(st.integers(0, 2))
        high = draw(st.one_of(st.none(), st.integers(low, low + 2)))
        return SereRepeat(draw(seres(depth=0)), low, high)
    return draw(seres(depth=0))


@st.composite
def formulas(draw, depth=2):
    if depth == 0:
        return FlBool(draw(bool_exprs(depth=1)))
    branch = draw(st.integers(0, 7))
    if branch == 0:
        return FlNot(draw(formulas(depth=depth - 1)))
    if branch == 1:
        return FlAlways(draw(formulas(depth=depth - 1)))
    if branch == 2:
        return FlEventually(draw(formulas(depth=depth - 1)))
    if branch == 3:
        return FlNext(
            draw(formulas(depth=depth - 1)),
            strong=draw(st.booleans()),
            count=draw(st.integers(1, 2)),
        )
    if branch == 4:
        return FlUntil(
            draw(formulas(depth=depth - 1)),
            draw(formulas(depth=depth - 1)),
            strong=draw(st.booleans()),
        )
    if branch == 5:
        return FlSere(draw(seres(depth=1)), strong=draw(st.booleans()))
    if branch == 6:
        return FlOr(draw(formulas(depth=depth - 1)), draw(formulas(depth=depth - 1)))
    return draw(formulas(depth=0))


@settings(max_examples=200, deadline=None)
@given(formulas(), traces)
def test_view_monotonicity(formula, trace):
    strong = satisfies(formula, trace, view=View.STRONG)
    neutral = satisfies(formula, trace, view=View.NEUTRAL)
    weak = satisfies(formula, trace, view=View.WEAK)
    assert not strong or neutral
    assert not neutral or weak


@settings(max_examples=200, deadline=None)
@given(formulas(), traces)
def test_verdict_coherence(formula, trace):
    result = verdict(formula, trace)
    if result is Verdict.HOLDS_STRONGLY:
        assert satisfies(formula, trace, view=View.WEAK)
    if result is Verdict.FAILS:
        assert not satisfies(formula, trace, view=View.WEAK)


@settings(max_examples=150, deadline=None)
@given(formulas(), traces, traces)
def test_definite_verdicts_stable_under_extension(formula, trace, extension):
    """Once HOLDS_STRONGLY/FAILS, any continuation keeps weak/strong
    satisfaction consistent (the monitor latch is justified)."""
    first = verdict(formula, trace)
    extended = verdict(formula, list(trace) + list(extension))
    if first is Verdict.HOLDS_STRONGLY:
        assert extended in (Verdict.HOLDS_STRONGLY, Verdict.HOLDS)
    if first is Verdict.FAILS:
        assert extended is Verdict.FAILS


@settings(max_examples=200, deadline=None)
@given(formulas(), traces)
def test_negation_duality(formula, trace):
    positive = satisfies(formula, trace, view=View.STRONG)
    negative = satisfies(FlNot(formula), trace, view=View.WEAK)
    assert positive == (not negative)


@settings(max_examples=150, deadline=None)
@given(seres(), traces)
def test_sere_concat_epsilon_unit(item, trace):
    """{[*0]} ; s == s (epsilon is the unit of concatenation)."""
    epsilon = SereRepeat(SereBool(Const(True)), 0, 0)
    unit = SereConcat((epsilon, item))
    matcher = Matcher(trace)
    assert matcher.match_ends(item, 0) == matcher.match_ends(unit, 0)


@settings(max_examples=150, deadline=None)
@given(seres(), seres(), traces)
def test_sere_or_commutative(left, right, trace):
    matcher = Matcher(trace)
    assert matcher.match_ends(SereOr(left, right), 0) == matcher.match_ends(
        SereOr(right, left), 0
    )


@settings(max_examples=150, deadline=None)
@given(seres(), seres(), seres(), traces)
def test_sere_concat_associative(a, b, c, trace):
    matcher = Matcher(trace)
    left = SereConcat((SereConcat((a, b)), c))
    right = SereConcat((a, SereConcat((b, c))))
    assert matcher.match_ends(left, 0) == matcher.match_ends(right, 0)


# -- monitor vs replay differential ------------------------------------------------

MONITORABLE = [
    lambda e1, e2: FlAlways(FlBool(e1)),
    lambda e1, e2: FlNever(FlBool(e1)),
    lambda e1, e2: FlAlways(FlSuffixImpl(SereBool(e1), FlBool(e2), overlapping=False)),
    lambda e1, e2: FlAlways(FlSuffixImpl(SereBool(e1), FlBool(e2), overlapping=True)),
    lambda e1, e2: FlEventually(FlBool(e1)),
    lambda e1, e2: FlUntil(FlBool(e1), FlBool(e2), strong=True),
    lambda e1, e2: FlUntil(FlBool(e1), FlBool(e2), strong=False),
    lambda e1, e2: FlNever(FlSere(SereConcat((SereBool(e1), SereBool(e2))))),
]


@settings(max_examples=300, deadline=None)
@given(
    st.integers(0, len(MONITORABLE) - 1),
    bool_exprs(),
    bool_exprs(),
    traces,
)
def test_incremental_monitor_agrees_with_replay(index, e1, e2, trace):
    formula = MONITORABLE[index](e1, e2)
    monitor = build_monitor(formula)
    got = run_monitor(monitor, trace)
    expected = verdict(formula, trace)
    assert got == expected, f"{formula} on {trace}"


@settings(max_examples=120, deadline=None)
@given(
    st.integers(0, len(MONITORABLE) - 1),
    bool_exprs(),
    bool_exprs(),
    traces,
    st.integers(1, 5),
)
def test_monitor_snapshot_restore_consistency(index, e1, e2, trace, cut):
    """Snapshot mid-trace, diverge, restore, replay: same verdict as an
    uninterrupted run (the explorer depends on this)."""
    formula = MONITORABLE[index](e1, e2)
    monitor = build_monitor(formula)
    monitor.reset()
    split = min(cut, len(trace))
    for letter in trace[:split]:
        monitor.step(letter)
    snap = monitor.snapshot()
    saved_cycle = monitor.cycle
    # diverge
    monitor.step({name: True for name in NAMES})
    # restore and continue on the real trace
    monitor.restore(snap)
    monitor.cycle = saved_cycle
    for letter in trace[split:]:
        monitor.step(letter)
    reference = build_monitor(formula)
    expected = run_monitor(reference, trace)
    assert monitor.verdict() == expected
