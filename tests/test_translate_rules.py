"""Tests for the R1-R3 translation rules and the C#/C++ generators."""

import pytest

from repro.asm import AsmMachine, BitVector, Byte, StateVar, action, require
from repro.psl import Directive, DirectiveKind, Property, parse_formula
from repro.sysc import Logic
from repro.translate import (
    TYPE_RULES,
    cpp_literal,
    cpp_type_for,
    csharp_type_for,
    render_module,
    render_monitor_class,
    render_monitor_suite,
    render_sc_main,
    render_translation_unit,
    rule_by_name,
    rule_for_value,
    translate_class,
)


class Handshake(AsmMachine):
    """Small machine exercising every translation rule."""

    m_req = StateVar(False)
    m_count = StateVar(0)
    m_data = StateVar(BitVector("0000"))

    @action
    def send(self):
        require(self.m_req is False)
        self.m_req = True

    @action
    def acknowledge(self):
        require(self.m_req and self.m_count < 3)
        self.m_req = False
        self.m_count = self.m_count + 1


class TestRuleR1Types:
    def test_table_entries(self):
        assert rule_by_name("Integer").cpp_type == "int"
        assert rule_by_name("Byte").cpp_type == "unsigned char"
        assert rule_by_name("Boolean").cpp_type == "bool"
        assert rule_by_name("String").cpp_type == "std::string"

    def test_value_dispatch_order(self):
        # bool is an int in Python: the bool rule must win
        assert rule_for_value(True).asm_name == "Boolean"
        assert rule_for_value(7).asm_name == "Integer"
        assert rule_for_value(Byte(7)).asm_name == "Byte"

    def test_bitvector_width_parameterised(self):
        assert cpp_type_for(BitVector("10101")) == "sc_bv<5>"

    def test_logic(self):
        assert cpp_type_for(Logic("1")) == "sc_logic"
        assert cpp_literal(Logic("X")) == "SC_LOGIC_X"

    def test_literals(self):
        assert cpp_literal(True) == "true"
        assert cpp_literal("hi") == '"hi"'
        assert cpp_literal(BitVector("101")) == '"101"'

    def test_enum_maps_to_int(self):
        import enum

        class Mode(enum.Enum):
            A = "a"
            B = "b"

        assert rule_for_value(Mode.B).asm_name == "Integer"
        assert "1" in cpp_literal(Mode.B)

    def test_csharp_types(self):
        assert csharp_type_for(True) == "bool"
        assert csharp_type_for(3) == "int"


class TestRuleR2Class:
    def test_members_become_signals(self):
        spec = translate_class(Handshake)
        names = {s.name for s in spec.signals}
        assert names == {"m_req", "m_count", "m_data"}
        assert spec.signal("m_req").cpp_type == "bool"
        assert spec.signal("m_data").cpp_type == "sc_bv<4>"
        assert "sc_signal<bool> m_req;" == spec.signal("m_req").declaration()

    def test_methods_become_threads(self):
        spec = translate_class(Handshake)
        names = {t.name for t in spec.threads}
        assert names == {"send", "acknowledge"}

    def test_preconditions_extracted(self):
        spec = translate_class(Handshake)
        ack = next(t for t in spec.threads if t.name == "acknowledge")
        assert any("m_req" in p for p in ack.preconditions)

    def test_require_message_argument_stripped(self):
        class WithMessage(AsmMachine):
            flag = StateVar(False)

            @action
            def act(self):
                require(not self.flag, "already set")
                self.flag = True

        spec = translate_class(WithMessage)
        (thread,) = spec.threads
        assert thread.preconditions == ("not self.flag",)

    def test_sensitivity_derived_from_preconditions(self):
        spec = translate_class(Handshake)
        ack = next(t for t in spec.threads if t.name == "acknowledge")
        assert "m_req" in ack.sensitivity
        assert "m_count" in ack.sensitivity

    def test_constructor_lines(self):
        spec = translate_class(Handshake)
        send = next(t for t in spec.threads if t.name == "send")
        lines = send.constructor_lines()
        assert lines[0] == "SC_THREAD(send);"
        assert lines[1].startswith("sensitive <<")


class TestRuleR3AndRendering:
    def test_module_rendering(self):
        text = render_module(translate_class(Handshake))
        assert "SC_MODULE(Handshake)" in text
        assert "sc_signal<bool> m_req;" in text
        assert "SC_THREAD(send);" in text
        assert "SC_CTOR(Handshake)" in text

    def test_sc_main_instantiates_and_clocks(self):
        spec = translate_class(Handshake)
        text = render_sc_main([spec], [("hs0", "Handshake"), ("hs1", "Handshake")])
        assert 'Handshake hs0("hs0");' in text
        assert "hs0.clk(clk);" in text
        assert "sc_start();" in text

    def test_sc_main_unknown_module_rejected(self):
        with pytest.raises(KeyError):
            render_sc_main([], [("x", "Ghost")])

    def test_full_translation_unit(self):
        spec = translate_class(Handshake)
        text = render_translation_unit([spec], [("hs", "Handshake")])
        assert text.startswith("// Generated by repro.translate")
        assert "#include <systemc.h>" in text
        assert "int sc_main" in text

    def test_python_conditions_rendered_as_cpp(self):
        class Cond(AsmMachine):
            a = StateVar(False)
            b = StateVar(False)

            @action
            def go(self):
                require(self.a and not self.b)

        text = render_module(translate_class(Cond))
        assert "a && !b" in text


class TestCSharpGeneration:
    def directive(self) -> Directive:
        return Directive(
            DirectiveKind.ASSERT,
            Property(
                "no_double_grant",
                parse_formula("never (gnt0 && gnt1)"),
                report="double grant",
            ),
        )

    def test_class_structure(self):
        text = render_monitor_class(self.directive())
        assert "namespace PslMonitors" in text
        assert "public sealed class" in text
        assert "enum Verdict" in text
        assert "private bool gnt0;" in text
        assert "private bool gnt1;" in text

    def test_three_monitor_actions_present(self):
        text = render_monitor_class(self.directive())
        assert "StopSimulation" in text
        assert "WriteReport" in text
        assert "RaiseWarning" in text

    def test_report_message_embedded(self):
        text = render_monitor_class(self.directive())
        assert "double grant" in text

    def test_formula_documented(self):
        text = render_monitor_class(self.directive())
        assert "never" in text

    def test_suite_rendering(self):
        suite = render_monitor_suite([self.directive()], "PCI bus checks")
        assert "PCI bus checks" in suite
        assert suite.count("class") >= 1
