"""Shared fixtures and toy models for the test suite."""

from __future__ import annotations

import pytest

from repro.asm import (
    AsmMachine,
    AsmModel,
    Domain,
    StateVar,
    action,
    choose_min,
    require,
)


class Counter(AsmMachine):
    """A bounded counter: the simplest explorable machine."""

    value = StateVar(0)
    limit = StateVar(3, state_variable=False)

    @action
    def tick(self):
        require(self.value < self.limit, "at limit")
        self.value = self.value + 1

    @action
    def reset(self):
        require(self.value > 0, "already zero")
        self.value = 0


class ToyMaster(AsmMachine):
    """Request/grant participant used by arbiter tests."""

    m_req = StateVar(False)
    m_gnt = StateVar(False)

    @action
    def request(self):
        require(not self.m_req and not self.m_gnt)
        self.m_req = True

    @action
    def done(self):
        require(self.m_gnt)
        self.m_gnt = False


class ToyArbiter(AsmMachine):
    """Grants the lowest requesting master; correct by construction."""

    m_owner = StateVar(-1)

    @action
    def grant(self):
        require(self.m_owner == -1)
        masters = self.model.machines_of(ToyMaster)
        ids = [i for i, m in enumerate(masters) if m.m_req]
        require(ids, "no requests")
        winner = choose_min(ids)
        masters[winner].m_req = False
        masters[winner].m_gnt = True
        self.m_owner = winner

    @action
    def reclaim(self):
        masters = self.model.machines_of(ToyMaster)
        require(self.m_owner != -1 and not masters[self.m_owner].m_gnt)
        self.m_owner = -1


class BrokenArbiter(ToyArbiter):
    """Grants without mutual exclusion: used to provoke violations."""

    @action
    def grant(self):  # noqa: D102 -- deliberately buggy override
        require(True)
        masters = self.model.machines_of(ToyMaster)
        ids = [i for i, m in enumerate(masters) if m.m_req]
        require(ids, "no requests")
        winner = choose_min(ids)
        masters[winner].m_req = False
        masters[winner].m_gnt = True


@pytest.fixture
def counter_model() -> AsmModel:
    model = AsmModel("counter_model")
    Counter(model=model, name="counter")
    model.seal()
    return model


@pytest.fixture
def arbiter_model() -> AsmModel:
    model = AsmModel("arbiter_model")
    ToyMaster(model=model, name="m0")
    ToyMaster(model=model, name="m1")
    ToyArbiter(model=model, name="arbiter")
    model.seal()
    return model


@pytest.fixture
def broken_arbiter_model() -> AsmModel:
    model = AsmModel("broken_model")
    ToyMaster(model=model, name="m0")
    ToyMaster(model=model, name="m1")
    BrokenArbiter(model=model, name="arbiter")
    model.seal()
    return model


def letters(*rows: dict) -> list[dict]:
    """Terse trace builder: ``letters({"a": 1}, {"a": 0})``."""
    return list(rows)
