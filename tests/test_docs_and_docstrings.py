"""The documentation satellites: docs/ tree present, docstring gate green.

Keeps the docs from rotting silently: the stdlib docstring gate
(``tools/check_docstrings.py``) must pass, the docs tree must exist,
and the README must point at it instead of duplicating it.
"""

import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestDocstringGate:
    def test_audited_public_api_is_fully_documented(self):
        """tools/check_docstrings.py exits 0 over the audited surface."""
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_docstrings.py")],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "docstring gate OK" in result.stdout

    def test_gate_actually_detects_omissions(self, tmp_path, monkeypatch):
        """The gate is not vacuous: an undocumented def is reported."""
        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            import check_docstrings
        finally:
            sys.path.pop(0)
        bad = tmp_path / "bad.py"
        bad.write_text(
            '"""Module docstring."""\n\n\ndef naked():\n    return 1\n'
        )
        missing = check_docstrings.check_file(bad)
        assert missing == [(4, "function", "naked")]
        good = tmp_path / "good.py"
        good.write_text(
            '"""Module docstring."""\n\n\ndef covered():\n    """Doc."""\n'
        )
        assert check_docstrings.check_file(good) == []


class TestDocsTree:
    def test_docs_pages_exist_and_cover_their_topics(self):
        docs = REPO_ROOT / "docs"
        architecture = (docs / "architecture.md").read_text()
        dispatch = (docs / "dispatch.md").read_text()
        cli = (docs / "cli.md").read_text()
        # each page owns its contract: tiers, wire forms, cookbook
        assert "Engine" in architecture and "digest" in architecture
        for anchor in ("POST /run", "ScenarioSpec", "RegressionReport",
                       "work-stealing", "HostFailure"):
            assert anchor in dispatch, anchor
        for anchor in ("--shards", "--hosts", "--merge", "close",
                       "repro.dispatch.worker"):
            assert anchor in cli, anchor

    def test_readme_points_at_docs_instead_of_duplicating(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/architecture.md" in readme
        assert "docs/dispatch.md" in readme
        assert "docs/cli.md" in readme
