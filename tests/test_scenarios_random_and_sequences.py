"""The scenario engine's randomization and sequence library."""

import pytest

from repro.scenarios.random_ import (
    BURST_PROFILES,
    BurstProfile,
    ScenarioRng,
    derive_seed,
)
from repro.scenarios.sequences import (
    AddressWalk,
    BurstSweep,
    Chain,
    Interleave,
    Mix,
    RandomTraffic,
    Repeat,
    SequenceItem,
    StimulusContext,
    TrafficProfile,
    WriteReadback,
    sequence_for_profile,
)

CTX = StimulusContext(n_targets=3, min_burst=1, max_burst=4, address_span=16)


def take(sequence, n, rng=None, ctx=CTX):
    rng = rng or ScenarioRng(7)
    items = []
    stream = sequence.items(rng, ctx)
    for _ in range(n):
        try:
            items.append(next(stream))
        except StopIteration:
            break
    return items


class TestScenarioRng:
    def test_derive_seed_is_stable(self):
        assert derive_seed(2005, "a/b") == derive_seed(2005, "a/b")
        assert derive_seed(2005, "a/b") != derive_seed(2005, "a/c")
        assert derive_seed(2005, "a/b") != derive_seed(2006, "a/b")

    def test_child_streams_are_independent_of_sibling_draws(self):
        root1 = ScenarioRng(42)
        root2 = ScenarioRng(42)
        # consume from one sibling only in the first universe
        sibling = root1.derive("noisy")
        for _ in range(100):
            sibling.ranged_int(0, 1000)
        child1 = root1.derive("quiet")
        child2 = root2.derive("quiet")
        assert [child1.ranged_int(0, 10**9) for _ in range(10)] == [
            child2.ranged_int(0, 10**9) for _ in range(10)
        ]

    def test_weighted_choice_respects_zero_weights(self):
        rng = ScenarioRng(1)
        values = {rng.weighted_choice([("a", 0.0), ("b", 1.0)]) for _ in range(50)}
        assert values == {"b"}

    def test_weighted_choice_degenerates_to_uniform(self):
        rng = ScenarioRng(1)
        values = {rng.weighted_choice([("a", 0.0), ("b", 0.0)]) for _ in range(100)}
        assert values == {"a", "b"}

    def test_ranged_int_rejects_empty_range(self):
        with pytest.raises(ValueError):
            ScenarioRng(1).ranged_int(5, 4)

    def test_payload_width(self):
        words = ScenarioRng(1).payload(64, width_bits=8)
        assert len(words) == 64
        assert all(0 <= w <= 0xFF for w in words)


class TestBurstProfiles:
    @pytest.mark.parametrize("name", sorted(BURST_PROFILES))
    def test_samples_stay_in_range(self, name):
        profile = BURST_PROFILES[name]
        rng = ScenarioRng(3).derive(name)
        for _ in range(200):
            assert 1 <= profile.sample(rng, 1, 4) <= 4

    def test_fixed_clamps(self):
        assert BurstProfile("fixed", value=99).sample(ScenarioRng(1), 1, 4) == 4

    def test_edges_favours_boundaries(self):
        rng = ScenarioRng(5)
        samples = [BURST_PROFILES["edges"].sample(rng, 1, 8) for _ in range(300)]
        boundary = sum(1 for s in samples if s in (1, 8))
        assert boundary > len(samples) // 2

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            BurstProfile("zipf").sample(ScenarioRng(1), 1, 4)


class TestSequences:
    def assert_valid(self, items):
        assert items
        for item in items:
            assert 0 <= item.target < CTX.n_targets
            assert CTX.min_burst <= item.burst <= CTX.max_burst
            assert 0 <= item.address_offset <= CTX.address_span - item.burst
            if item.is_write:
                assert len(item.payload) == item.burst
            assert item.idle >= 0

    def test_random_traffic_items_respect_context(self):
        self.assert_valid(take(RandomTraffic(TrafficProfile()), 100))

    def test_random_traffic_finite_length(self):
        assert len(take(RandomTraffic(TrafficProfile(), length=9), 50)) == 9

    def test_burst_sweep_covers_every_burst_and_target(self):
        items = take(BurstSweep(rounds=1), 1000)
        self.assert_valid(items)
        assert {(i.burst, i.target) for i in items} == {
            (b, t)
            for b in range(CTX.min_burst, CTX.max_burst + 1)
            for t in range(CTX.n_targets)
        }

    def test_address_walk_reads_back_every_written_offset(self):
        items = take(AddressWalk(), 1000)
        self.assert_valid(items)
        writes = {(i.target, i.address_offset) for i in items if i.is_write}
        reads = {(i.target, i.address_offset) for i in items if not i.is_write}
        assert writes == reads

    def test_write_readback_pairs_match(self):
        items = take(WriteReadback(pairs=6), 100)
        self.assert_valid(items)
        assert len(items) == 12
        for write, read in zip(items[0::2], items[1::2]):
            assert write.is_write and not read.is_write
            assert (write.target, write.address_offset, write.burst) == (
                read.target, read.address_offset, read.burst
            )

    def test_determinism_same_rng_path(self):
        sequence = sequence_for_profile("default")
        a = take(sequence, 50, rng=ScenarioRng(11).derive("m"))
        b = take(sequence, 50, rng=ScenarioRng(11).derive("m"))
        assert a == b

    def test_different_seeds_diverge(self):
        sequence = RandomTraffic(TrafficProfile())
        a = take(sequence, 50, rng=ScenarioRng(11))
        b = take(sequence, 50, rng=ScenarioRng(12))
        assert a != b


class TestCombinators:
    def test_chain_runs_parts_in_order(self):
        items = take(Chain(WriteReadback(pairs=1), BurstSweep(rounds=1)), 100)
        assert len(items) == 2 + (CTX.max_burst - CTX.min_burst + 1) * CTX.n_targets
        assert items[0].is_write and not items[1].is_write

    def test_interleave_round_robins(self):
        writes = WriteReadback(pairs=2)
        sweep = BurstSweep(rounds=1)
        items = take(Interleave(writes, sweep), 200)
        solo = take(writes, 200) + take(sweep, 200)
        assert len(items) == len(solo)

    def test_repeat_passes_use_fresh_streams(self):
        items = take(Repeat(WriteReadback(pairs=2), times=3), 100)
        assert len(items) == 12
        first_pass = [(i.target, i.address_offset) for i in items[:4]]
        second_pass = [(i.target, i.address_offset) for i in items[4:8]]
        assert first_pass != second_pass  # fresh randomness per pass

    def test_mix_emits_requested_length(self):
        mix = Mix(
            [(RandomTraffic(TrafficProfile()), 3.0), (BurstSweep(rounds=5), 1.0)],
            length=40,
        )
        items = take(mix, 100)
        assert len(items) == 40

    def test_mix_is_deterministic(self):
        mix = Mix([(RandomTraffic(TrafficProfile()), 1.0)], length=20)
        assert take(mix, 30) == take(mix, 30)
