"""Unit tests for the online assertion monitors."""

import pytest

from repro.psl import (
    BooleanInvariantMonitor,
    BooleanUntilMonitor,
    CoverMonitor,
    Directive,
    DirectiveKind,
    EventuallyMonitor,
    NeverSereMonitor,
    Property,
    ReplayMonitor,
    SereTracker,
    SuffixImplicationMonitor,
    Verdict,
    build_monitor,
    parse_formula,
    parse_sere,
    run_monitor,
)
from repro.psl.monitor import EPSILON, derivatives, nullable, _LetterView


def trace(*bits: str) -> list[dict]:
    names = "pqrabgd"
    return [{n: n in cycle for n in names} for cycle in bits]


def direct(cls, *args, **kwargs):
    """Instantiate a monitor class directly, expecting the shim warning.

    These tests exercise the interpreted monitor classes on purpose;
    everything else goes through ``compile_properties``.
    """
    with pytest.warns(DeprecationWarning, match="direct Monitor construction"):
        return cls(*args, **kwargs)


class TestDerivatives:
    def view(self, **letter):
        return _LetterView([letter])

    def test_bool_step(self):
        item = parse_sere("a")
        assert derivatives(item, self.view(a=True)) == frozenset({EPSILON})
        assert derivatives(item, self.view(a=False)) == frozenset()

    def test_concat_advances(self):
        item = parse_sere("a ; b")
        residuals = derivatives(item, self.view(a=True, b=False))
        assert residuals == frozenset({parse_sere("b")})

    def test_nullable(self):
        assert nullable(parse_sere("a[*]"))
        assert not nullable(parse_sere("a"))
        assert nullable(parse_sere("a[*0:2]"))
        assert not nullable(parse_sere("a[+]"))
        assert nullable(EPSILON)

    def test_repeat_derivative_decrements(self):
        item = parse_sere("a[*2]")
        (residual,) = derivatives(item, self.view(a=True))
        assert nullable(residual) is False  # one 'a' still required
        (residual2,) = derivatives(residual, self.view(a=True))
        assert nullable(residual2)

    def test_tracker_detects_match(self):
        tracker = SereTracker(parse_sere("a ; b"))
        state = tracker.start()
        state, matched = tracker.advance(state, _LetterView([{"a": True, "b": False}]))
        assert not matched
        state, matched = tracker.advance(state, _LetterView([{"a": False, "b": True}]))
        assert matched


class TestBooleanInvariantMonitor:
    def test_always_holds(self):
        monitor = direct(BooleanInvariantMonitor, parse_formula("p").expr, True, "inv")
        assert run_monitor(monitor, trace("p", "p")) is Verdict.HOLDS

    def test_always_fails_and_latches(self):
        monitor = direct(BooleanInvariantMonitor, parse_formula("p").expr, True, "inv")
        monitor.reset()
        monitor.step({"p": True})
        monitor.step({"p": False})
        assert monitor.verdict() is Verdict.FAILS
        assert monitor.failure_cycle == 1
        # verdicts latch: later good cycles do not recover
        monitor.step({"p": True})
        assert monitor.verdict() is Verdict.FAILS

    def test_never(self):
        monitor = direct(BooleanInvariantMonitor, parse_formula("q").expr, False, "nev")
        assert run_monitor(monitor, trace("p", "q")) is Verdict.FAILS


class TestSuffixImplicationMonitor:
    def build(self, text: str):
        return build_monitor(parse_formula(text), name=text)

    def test_simple_req_gnt(self):
        monitor = self.build("always {p} |=> {q}")
        assert run_monitor(monitor, trace("p", "q", "", "p", "q")) is Verdict.HOLDS
        assert run_monitor(monitor, trace("p", "")) is Verdict.FAILS

    def test_overlapping(self):
        monitor = self.build("always {p} |-> {q}")
        assert run_monitor(monitor, trace("pq")) is Verdict.HOLDS
        assert run_monitor(monitor, trace("p")) is Verdict.FAILS

    def test_triggered_counts_antecedent_matches(self):
        monitor = self.build("always {p} |=> {q}")
        run_monitor(monitor, trace("p", "pq", "q"))
        assert monitor.triggered == 2

    def test_sequence_antecedent(self):
        monitor = self.build("always {p ; p} |=> {q}")
        assert run_monitor(monitor, trace("p", "p", "q")) is Verdict.HOLDS
        assert run_monitor(monitor, trace("p", "p", "")) is Verdict.FAILS

    def test_windowed_consequent(self):
        monitor = self.build("always {p} |=> {(!q)[*0:2] ; q}")
        assert run_monitor(monitor, trace("p", "", "", "q")) is Verdict.HOLDS
        assert run_monitor(monitor, trace("p", "", "", "")) is Verdict.FAILS

    def test_strong_consequent_pending(self):
        monitor = self.build("always {p} |=> {q}!")
        verdict = run_monitor(monitor, trace("p"))
        assert verdict is Verdict.PENDING


class TestOtherMonitors:
    def test_never_sere(self):
        monitor = direct(NeverSereMonitor, parse_sere("q ; q"), "nosq")
        assert run_monitor(monitor, trace("q", "p", "q")) is Verdict.HOLDS
        assert run_monitor(monitor, trace("p", "q", "q")) is Verdict.FAILS

    def test_cover_counts_hits(self):
        monitor = direct(CoverMonitor, parse_sere("p ; q"), "cov")
        run_monitor(monitor, trace("p", "q", "p", "q"), stop_early=False)
        assert monitor.hits == 2
        assert monitor.verdict() is Verdict.HOLDS_STRONGLY

    def test_cover_uncovered_pending(self):
        monitor = direct(CoverMonitor, parse_sere("p ; q"), "cov")
        assert run_monitor(monitor, trace("p", "p")) is Verdict.PENDING

    def test_eventually(self):
        monitor = direct(EventuallyMonitor, parse_formula("p").expr, "ev")
        assert run_monitor(monitor, trace("", "")) is Verdict.PENDING
        assert run_monitor(monitor, trace("", "p")) is Verdict.HOLDS_STRONGLY

    def test_boolean_until(self):
        monitor = direct(
            BooleanUntilMonitor,
            parse_formula("p").expr, parse_formula("q").expr, strong=True,
        )
        assert run_monitor(monitor, trace("p", "pq")) is Verdict.HOLDS_STRONGLY
        assert run_monitor(monitor, trace("p", "p")) is Verdict.PENDING
        assert run_monitor(monitor, trace("", "q") [:1]) is Verdict.FAILS

    def test_replay_monitor_general(self):
        monitor = direct(ReplayMonitor, parse_formula("eventually! (p && next q)"), "rp")
        assert run_monitor(monitor, trace("", "p", "q")) is Verdict.HOLDS_STRONGLY


class TestBuilder:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("always p", BooleanInvariantMonitor),
            ("never p", BooleanInvariantMonitor),
            ("always !p", BooleanInvariantMonitor),
            ("always {p} |=> {q}", SuffixImplicationMonitor),
            ("always (p -> next[2] q)", SuffixImplicationMonitor),
            ("never {p ; q}", NeverSereMonitor),
            ("eventually! p", EventuallyMonitor),
            ("p until! q", BooleanUntilMonitor),
            ("always (p -> eventually! q)", ReplayMonitor),
        ],
    )
    def test_strategy_selection(self, text, expected):
        monitor = build_monitor(parse_formula(text))
        assert isinstance(monitor, expected)

    def test_cover_directive_builds_cover_monitor(self):
        directive = Directive(
            DirectiveKind.COVER, Property("c", parse_formula("{p ; q}"))
        )
        assert isinstance(build_monitor(directive), CoverMonitor)

    def test_property_report_carried(self):
        prop = Property("named", parse_formula("always p"), report="p must hold")
        monitor = build_monitor(prop)
        monitor.reset()
        monitor.step({"p": False})
        assert monitor.report().message == "p must hold"

    def test_monitor_report_lists_variables(self):
        monitor = build_monitor(parse_formula("always (p -> q)"))
        monitor.reset()
        monitor.step({"p": True, "q": False})
        assert set(monitor.report().watched) == {"p", "q"}


class TestSnapshotRestore:
    def test_suffix_monitor_roundtrip(self):
        monitor = build_monitor(parse_formula("always {p ; p} |=> {q}"))
        monitor.reset()
        monitor.step({"p": True, "q": False})
        snap = monitor.snapshot()
        monitor.step({"p": True, "q": False})
        monitor.step({"p": False, "q": False})  # obligation fails
        assert monitor.verdict() is Verdict.FAILS
        monitor.restore(snap)
        assert monitor.verdict() is not Verdict.FAILS
        # replaying the good path after restore succeeds
        monitor.step({"p": True, "q": False})
        monitor.step({"p": False, "q": True})
        assert monitor.verdict() is not Verdict.FAILS

    def test_snapshots_hashable(self):
        for text in ("always p", "always {p} |=> {q}", "never {p ; q}",
                     "eventually! p", "p until! q"):
            monitor = build_monitor(parse_formula(text))
            monitor.reset()
            monitor.step({"p": True, "q": False})
            hash(monitor.snapshot())
