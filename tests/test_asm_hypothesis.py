"""Property-based tests for the ASM substrate."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.asm import (
    ActionCall,
    AsmMachine,
    AsmModel,
    AsmSet,
    InconsistentUpdateError,
    Map,
    Seq,
    StateVar,
    action,
    freeze,
    require,
)
from repro.asm.state import FullState, Location, StateKey
from repro.asm.updates import PARALLEL, SEQUENTIAL, StepMode, UpdateSet

scalars = st.one_of(
    st.booleans(), st.integers(-100, 100), st.text(max_size=5)
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.integers(0, 5), children, max_size=3),
    ),
    max_leaves=8,
)


@settings(max_examples=150, deadline=None)
@given(values)
def test_freeze_is_idempotent_and_hashable(value):
    frozen = freeze(value)
    assert freeze(frozen) == frozen
    hash(frozen)


@settings(max_examples=150, deadline=None)
@given(st.lists(scalars, max_size=6))
def test_seq_roundtrip_and_immutability(items):
    sequence = Seq(items)
    extended = sequence.add("sentinel")
    assert list(sequence) == items
    assert extended[-1] == "sentinel"
    assert len(extended) == len(items) + 1


@settings(max_examples=150, deadline=None)
@given(st.dictionaries(st.integers(0, 10), scalars, max_size=6))
def test_map_set_remove_laws(data):
    mapping = Map(data)
    grown = mapping.set("k", 1)
    assert grown["k"] == 1
    assert "k" not in mapping
    assert grown.remove("k") == mapping
    assert hash(Map(dict(data))) == hash(mapping)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 3)),
        min_size=1,
        max_size=8,
    )
)
def test_update_set_parallel_consistency(assignments):
    """A parallel update set raises iff some location receives two
    different values; otherwise the last recording sticks."""
    updates = UpdateSet(StepMode.PARALLEL)
    expected: dict = {}
    conflict = False
    for name, value in assignments:
        if name in expected and expected[name] != value:
            conflict = True
            break
        expected[name] = value
    try:
        for name, value in assignments:
            updates.record(Location("m", name), value)
    except InconsistentUpdateError:
        assert conflict
    else:
        assert not conflict
        assert {loc.variable: v for loc, v in updates.items()} == expected


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["a", "b"]), st.integers(0, 3)),
        min_size=1,
        max_size=8,
    )
)
def test_update_set_sequential_last_write_wins(assignments):
    updates = UpdateSet(StepMode.SEQUENTIAL)
    for name, value in assignments:
        updates.record(Location("m", name), value)
    final: dict = {}
    for name, value in assignments:
        final[name] = value
    assert {loc.variable: v for loc, v in updates.items()} == final


class Walker(AsmMachine):
    """A machine whose actions form a random-walkable state space."""

    position = StateVar(0)
    fuel = StateVar(4)

    @action
    def forward(self):
        require(self.fuel > 0 and self.position < 3)
        self.position = self.position + 1
        self.fuel = self.fuel - 1

    @action
    def back(self):
        require(self.fuel > 0 and self.position > 0)
        self.position = self.position - 1
        self.fuel = self.fuel - 1

    @action
    def refuel(self):
        require(self.fuel == 0)
        self.fuel = 4


def _walker_model() -> AsmModel:
    model = AsmModel("walk")
    Walker(model=model, name="w")
    model.seal()
    return model


@settings(max_examples=100, deadline=None)
@given(st.lists(st.sampled_from(["forward", "back", "refuel"]), max_size=12))
def test_snapshot_restore_is_exact_after_any_run(script):
    """full_state/restore round-trips through arbitrary action runs."""
    model = _walker_model()
    initial = model.full_state()
    for name in script:
        model.try_execute(ActionCall("w", name))
    middle = model.full_state()
    for name in reversed(script):
        model.try_execute(ActionCall("w", name))
    model.restore(middle)
    assert model.full_state() == middle
    model.restore(initial)
    assert model.full_state() == initial


@settings(max_examples=100, deadline=None)
@given(st.lists(st.sampled_from(["forward", "back", "refuel"]), max_size=12))
def test_failed_actions_never_mutate_state(script):
    model = _walker_model()
    for name in script:
        before = model.full_state()
        ok, _ = model.try_execute(ActionCall("w", name))
        if not ok:
            assert model.full_state() == before


@settings(max_examples=100, deadline=None)
@given(st.lists(st.sampled_from(["forward", "back", "refuel"]), max_size=10))
def test_state_key_is_function_of_full_state(script):
    """Equal full states always project to equal keys."""
    model_a = _walker_model()
    model_b = _walker_model()
    for name in script:
        model_a.try_execute(ActionCall("w", name))
        model_b.try_execute(ActionCall("w", name))
    assert model_a.full_state() == model_b.full_state()
    assert model_a.state_key() == model_b.state_key()
    assert hash(model_a.state_key()) == hash(model_b.state_key())


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["x", "y", "z"]), st.integers(0, 4)),
        min_size=1,
        max_size=6,
        unique_by=lambda kv: kv[0],
    )
)
def test_full_state_ordering_is_canonical(pairs):
    """FullState equality/hash are insertion-order independent."""
    forward = FullState([(Location("m", k), v) for k, v in pairs])
    backward = FullState([(Location("m", k), v) for k, v in reversed(pairs)])
    assert forward == backward
    assert hash(forward) == hash(backward)
    assert forward.locations() == backward.locations()


def test_exploration_deterministic():
    """Two explorations of the same sealed model agree exactly."""
    from repro.explorer import explore

    first = explore(_walker_model())
    second = explore(_walker_model())
    assert first.fsm.state_count() == second.fsm.state_count()
    assert first.fsm.transition_count() == second.fsm.transition_count()
    assert {s.key for s in first.fsm.states} == {s.key for s in second.fsm.states}
