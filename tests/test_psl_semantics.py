"""Unit tests for the four-valued finite-trace semantics."""

import pytest

from repro.psl import (
    Verdict,
    View,
    parse_formula,
    satisfies,
    verdict,
)
from repro.psl.semantics import dual


def trace(*bits: str) -> list[dict]:
    names = "pqrab"
    return [{n: n in cycle for n in names} for cycle in bits]


class TestBooleans:
    def test_simple_bool(self):
        assert verdict(parse_formula("p"), trace("p")) is Verdict.HOLDS_STRONGLY
        assert verdict(parse_formula("p"), trace("q")) is Verdict.FAILS

    def test_connectives(self):
        assert verdict(parse_formula("p && q"), trace("pq")).is_ok
        assert verdict(parse_formula("p || q"), trace("q")).is_ok
        assert verdict(parse_formula("p -> q"), trace("")) is not Verdict.FAILS
        assert verdict(parse_formula("p <-> q"), trace("pq")).is_ok
        assert verdict(parse_formula("p <-> q"), trace("p")) is Verdict.FAILS

    def test_unknown_signal_holds_weakly_only(self):
        result = verdict(parse_formula("zz"), trace("p"))
        assert result is Verdict.FAILS or result is Verdict.PENDING


class TestAlwaysNever:
    def test_always_holds_neutrally(self):
        assert verdict(parse_formula("always p"), trace("p", "p")) is Verdict.HOLDS

    def test_always_never_holds_strongly_on_finite_trace(self):
        # no finite trace can guarantee always p on every extension
        assert verdict(parse_formula("always p"), trace("p")) is not Verdict.HOLDS_STRONGLY

    def test_always_fails_on_first_violation(self):
        assert verdict(parse_formula("always p"), trace("p", "")) is Verdict.FAILS

    def test_never(self):
        assert verdict(parse_formula("never q"), trace("p", "p")) is Verdict.HOLDS
        assert verdict(parse_formula("never q"), trace("q")) is Verdict.FAILS


class TestNext:
    def test_weak_next_at_end_holds(self):
        assert verdict(parse_formula("next p"), trace("q")) is Verdict.HOLDS

    def test_strong_next_at_end_pending(self):
        assert verdict(parse_formula("next! p"), trace("q")) is Verdict.PENDING

    def test_next_with_count(self):
        assert verdict(parse_formula("next[2] p"), trace("", "", "p")).is_ok
        assert verdict(parse_formula("next[2] p"), trace("", "", "q")) is Verdict.FAILS

    def test_next_a_window(self):
        good = trace("", "p", "p", "p")
        assert verdict(parse_formula("next_a[1:3] p"), good).is_ok
        bad = trace("", "p", "", "p")
        assert verdict(parse_formula("next_a[1:3] p"), bad) is Verdict.FAILS

    def test_next_e_window(self):
        assert verdict(parse_formula("next_e[1:3] p"), trace("", "", "p")).is_ok
        assert (
            verdict(parse_formula("next_e[1:3] p"), trace("", "", "", ""))
            is Verdict.FAILS
        )

    def test_next_event(self):
        t = trace("", "q", "", "pq")
        assert verdict(parse_formula("next_event(q)[2](p)"), t).is_ok
        t2 = trace("", "q", "", "q")
        assert verdict(parse_formula("next_event(q)[2](p)"), t2) is Verdict.FAILS

    def test_next_event_no_trigger_weak(self):
        assert verdict(parse_formula("next_event(q)(p)"), trace("", "")) is Verdict.HOLDS
        assert (
            verdict(parse_formula("next_event!(q)(p)"), trace("", ""))
            is Verdict.PENDING
        )


class TestEventuallyUntil:
    def test_eventually_strong(self):
        assert verdict(parse_formula("eventually! p"), trace("", "p")) is Verdict.HOLDS_STRONGLY
        assert verdict(parse_formula("eventually! p"), trace("", "")) is Verdict.PENDING

    def test_until_weak_released(self):
        assert verdict(parse_formula("p until q"), trace("p", "pq")).is_ok

    def test_until_weak_unreleased_holds(self):
        assert verdict(parse_formula("p until q"), trace("p", "p")) is Verdict.HOLDS

    def test_until_strong_unreleased_pending(self):
        assert verdict(parse_formula("p until! q"), trace("p", "p")) is Verdict.PENDING

    def test_until_fails_when_left_breaks(self):
        assert verdict(parse_formula("p until! q"), trace("p", "", "q")) is Verdict.FAILS

    def test_until_inclusive(self):
        # until_ requires p to hold at the release cycle too
        assert verdict(parse_formula("p until_ q"), trace("p", "pq")).is_ok
        assert verdict(parse_formula("p until_ q"), trace("p", "q")) is Verdict.FAILS

    def test_before(self):
        assert verdict(parse_formula("p before q"), trace("", "p", "q")).is_ok
        assert verdict(parse_formula("p before q"), trace("", "q")) is Verdict.FAILS

    def test_before_inclusive_allows_same_cycle(self):
        assert verdict(parse_formula("p before_ q"), trace("", "pq")).is_ok


class TestSereFormulas:
    def test_weak_sere_pending_while_alive(self):
        assert verdict(parse_formula("{p ; q}"), trace("p")) is Verdict.PENDING

    def test_weak_sere_fails_when_dead(self):
        assert verdict(parse_formula("{p ; q}"), trace("q")) is Verdict.FAILS

    def test_strong_sere_needs_completion(self):
        assert verdict(parse_formula("{p ; q}!"), trace("p")) is Verdict.PENDING
        assert verdict(parse_formula("{p ; q}!"), trace("p", "q")) is Verdict.HOLDS_STRONGLY

    def test_suffix_implication_overlapping(self):
        # {p} |-> q : q at the same cycle as the match end
        assert verdict(parse_formula("{p} |-> q"), trace("pq")).is_ok
        assert verdict(parse_formula("{p} |-> q"), trace("p")) is Verdict.FAILS

    def test_suffix_implication_non_overlapping(self):
        assert verdict(parse_formula("{p} |=> q"), trace("p", "q")).is_ok
        assert verdict(parse_formula("{p} |=> q"), trace("p", "")) is Verdict.FAILS

    def test_suffix_implication_vacuous(self):
        assert verdict(parse_formula("{p} |=> q"), trace("", "")).is_ok

    def test_always_suffix_implication(self):
        formula = parse_formula("always {p} |=> {q}")
        assert verdict(formula, trace("p", "q", "p", "q")) is Verdict.HOLDS
        assert verdict(formula, trace("p", "q", "p", "")) is Verdict.FAILS


class TestAbortAndClock:
    def test_abort_discharges_failure(self):
        formula = parse_formula("(always p) abort r")
        # p fails at cycle 1 but r fires there: aborted -> holds
        assert verdict(formula, trace("p", "r")).is_ok

    def test_abort_without_reset_fails(self):
        formula = parse_formula("(always p) abort r")
        assert verdict(formula, trace("p", "")) is Verdict.FAILS

    def test_clocked_projection(self):
        formula = parse_formula("(always p) @ q")
        # p only needs to hold on q-cycles
        t = [
            {"p": True, "q": True},
            {"p": False, "q": False},
            {"p": True, "q": True},
        ]
        assert verdict(formula, t).is_ok

    def test_clocked_failure_on_tick(self):
        formula = parse_formula("(always p) @ q")
        t = [{"p": False, "q": True}]
        assert verdict(formula, t) is Verdict.FAILS


class TestViews:
    def test_dual_involution(self):
        for view in View:
            assert dual(dual(view)) is view

    def test_view_monotonicity_examples(self):
        cases = [
            ("always p", trace("p", "p")),
            ("eventually! p", trace("", "")),
            ("p until! q", trace("p",)),
            ("{p ; q}", trace("p",)),
            ("never q", trace("p",)),
        ]
        for text, t in cases:
            formula = parse_formula(text)
            strong = satisfies(formula, t, view=View.STRONG)
            neutral = satisfies(formula, t, view=View.NEUTRAL)
            weak = satisfies(formula, t, view=View.WEAK)
            assert (not strong or neutral) and (not neutral or weak), text

    def test_position_past_end(self):
        formula = parse_formula("p")
        assert satisfies(formula, trace("p"), position=5, view=View.WEAK)
        assert not satisfies(formula, trace("p"), position=5, view=View.NEUTRAL)


class TestVerdictProperties:
    def test_is_definite(self):
        assert Verdict.FAILS.is_definite
        assert Verdict.HOLDS_STRONGLY.is_definite
        assert not Verdict.HOLDS.is_definite
        assert not Verdict.PENDING.is_definite

    def test_is_ok(self):
        assert Verdict.HOLDS.is_ok
        assert not Verdict.FAILS.is_ok
