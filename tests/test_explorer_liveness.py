"""Unit tests for FSM-level liveness checking (eventually! goals)."""

from repro.asm import ActionCall
from repro.asm.state import Location, StateKey
from repro.explorer import Fsm, check_eventually


def key(**values) -> StateKey:
    return StateKey(tuple((Location("m", k), v) for k, v in values.items()))


def pred(**wanted):
    def check(state_key: StateKey) -> bool:
        return all(state_key.value("m", k) == v for k, v in wanted.items())

    return check


class TestEventually:
    def test_holds_on_straight_line_to_goal(self):
        fsm = Fsm()
        a = fsm.add_state(key(req=True, gnt=False), is_initial=True)
        b = fsm.add_state(key(req=False, gnt=True))
        fsm.add_transition(a.index, b.index, ActionCall("m", "grant"))
        result = check_eventually(fsm, pred(req=True), pred(gnt=True))
        assert result.holds
        assert result.triggers_checked == 1

    def test_goal_free_cycle_is_violation(self):
        fsm = Fsm()
        a = fsm.add_state(key(req=True, gnt=False, k=0), is_initial=True)
        b = fsm.add_state(key(req=True, gnt=False, k=1))
        fsm.add_transition(a.index, b.index, ActionCall("m", "spin"))
        fsm.add_transition(b.index, a.index, ActionCall("m", "spin_back"))
        result = check_eventually(fsm, pred(req=True), pred(gnt=True))
        assert not result.holds
        assert result.violation is not None
        assert not result.violation.is_deadlock
        assert len(result.violation.cycle) == 2

    def test_goal_free_deadlock_is_violation(self):
        fsm = Fsm()
        a = fsm.add_state(key(req=True, gnt=False, k=0), is_initial=True)
        b = fsm.add_state(key(req=True, gnt=False, k=1))
        fsm.add_transition(a.index, b.index, ActionCall("m", "stall"))
        result = check_eventually(fsm, pred(req=True), pred(gnt=True))
        assert not result.holds
        assert result.violation.is_deadlock

    def test_cycle_through_goal_is_fine(self):
        fsm = Fsm()
        a = fsm.add_state(key(req=True, gnt=False), is_initial=True)
        b = fsm.add_state(key(req=False, gnt=True))
        fsm.add_transition(a.index, b.index, ActionCall("m", "grant"))
        fsm.add_transition(b.index, a.index, ActionCall("m", "again"))
        result = check_eventually(fsm, pred(req=True), pred(gnt=True))
        assert result.holds

    def test_trigger_state_that_is_goal_passes(self):
        fsm = Fsm()
        fsm.add_state(key(req=True, gnt=True), is_initial=True)
        result = check_eventually(fsm, pred(req=True), pred(gnt=True))
        assert result.holds

    def test_no_trigger_states_vacuous(self):
        fsm = Fsm()
        fsm.add_state(key(req=False, gnt=False), is_initial=True)
        result = check_eventually(fsm, pred(req=True), pred(gnt=True))
        assert result.holds
        assert result.triggers_checked == 0

    def test_violation_description_mentions_kind(self):
        fsm = Fsm()
        a = fsm.add_state(key(req=True, gnt=False, k=0), is_initial=True)
        b = fsm.add_state(key(req=True, gnt=False, k=1))
        fsm.add_transition(a.index, b.index, ActionCall("m", "spin"))
        fsm.add_transition(b.index, b.index, ActionCall("m", "self_loop"))
        result = check_eventually(fsm, pred(req=True), pred(gnt=True))
        assert not result.holds
        text = result.violation.describe(fsm)
        assert "cycle" in text


class TestOnRealModel:
    def test_toy_arbiter_grants_eventually_with_fairness_caveat(self, arbiter_model):
        """The toy arbiter can starve m1 if m0 keeps cycling -- the FSM
        contains a goal-free cycle; this is exactly the class of result
        only model checking can produce (paper Section 4)."""
        from repro.explorer import ExplorationConfig, explore

        result = explore(arbiter_model)

        def m1_requesting(state_key: StateKey) -> bool:
            return state_key.value("m1", "m_req") is True

        def m1_granted(state_key: StateKey) -> bool:
            return state_key.value("m1", "m_gnt") is True

        liveness = check_eventually(
            result.fsm, m1_requesting, m1_granted, "m1_eventually_granted"
        )
        # the unfair lowest-index arbiter has a starvation lasso
        assert not liveness.holds
        assert liveness.violation is not None
