"""Unit tests for the FSM-generation engine."""

import pytest

from repro.asm import ActionCall, AsmMachine, AsmModel, StateVar, action, require
from repro.explorer import (
    ExplorationConfig,
    Filter,
    SearchOrder,
    explore,
    violation_filter,
)


class MutexProperty:
    """At most one ToyMaster granted (plain StateProperty, no PSL)."""

    name = "mutex"

    def __init__(self):
        self._status = (False, True)

    def reset(self):
        self._status = (True, True)

    def observe(self, model):
        from conftest import ToyMaster

        granted = sum(1 for m in model.machines_of(ToyMaster) if m.m_gnt)
        self._status = (True, granted <= 1)
        return self._status

    def status(self):
        return self._status

    def snapshot(self):
        return None

    def restore(self, snap):
        pass


class TestBasicExploration:
    def test_counter_reachable_states(self, counter_model):
        result = explore(counter_model)
        # counter values 0..3
        assert result.fsm.state_count() == 4
        assert result.ok
        assert result.stats.completed

    def test_transitions_are_action_calls(self, counter_model):
        result = explore(counter_model)
        labels = {t.label() for t in result.fsm.transitions}
        assert "counter.tick()" in labels
        assert "counter.reset()" in labels

    def test_initial_state_marked(self, counter_model):
        result = explore(counter_model)
        initials = result.fsm.initial_states()
        assert len(initials) == 1
        assert initials[0].key.value("counter", "value") == 0

    def test_arbiter_model_passes_mutex(self, arbiter_model):
        result = explore(
            arbiter_model, ExplorationConfig(properties=[MutexProperty()])
        )
        assert result.ok
        assert result.stats.violations == 0

    def test_broken_arbiter_caught(self, broken_arbiter_model):
        result = explore(
            broken_arbiter_model, ExplorationConfig(properties=[MutexProperty()])
        )
        assert not result.ok
        assert result.stats.stopped_on_violation
        assert result.counterexample is not None

    def test_counterexample_replays_to_violation(self, broken_arbiter_model):
        from conftest import ToyMaster

        result = explore(
            broken_arbiter_model, ExplorationConfig(properties=[MutexProperty()])
        )
        cex = result.counterexample
        cex.replay(broken_arbiter_model)
        granted = sum(
            1 for m in broken_arbiter_model.machines_of(ToyMaster) if m.m_gnt
        )
        assert granted == 2

    def test_stop_on_violation_false_keeps_going(self, broken_arbiter_model):
        result = explore(
            broken_arbiter_model,
            ExplorationConfig(
                properties=[MutexProperty()], stop_on_violation=False
            ),
        )
        assert not result.ok
        assert result.counterexample is None
        assert result.stats.violations >= 1
        # violation states are terminal but exploration continued elsewhere
        assert result.fsm.state_count() > 3


class TestBounds:
    def test_max_states(self, arbiter_model):
        result = explore(arbiter_model, ExplorationConfig(max_states=3))
        assert result.fsm.state_count() <= 4
        assert result.stats.hit_state_bound

    def test_max_transitions(self, arbiter_model):
        result = explore(arbiter_model, ExplorationConfig(max_transitions=5))
        assert result.stats.hit_transition_bound
        assert result.fsm.transition_count() <= 6

    def test_max_depth(self, counter_model):
        result = explore(counter_model, ExplorationConfig(max_depth=1))
        # depth 0 = initial; depth 1 states are not expanded
        assert result.stats.hit_depth_bound
        assert result.fsm.state_count() <= 3

    def test_max_seconds_zero(self, arbiter_model):
        result = explore(arbiter_model, ExplorationConfig(max_seconds=0.0))
        assert result.stats.hit_time_bound

    def test_under_approximation_is_flagged(self, arbiter_model):
        bounded = explore(arbiter_model, ExplorationConfig(max_states=3))
        full = explore(arbiter_model)
        assert not bounded.stats.completed
        assert full.stats.completed
        assert bounded.fsm.state_count() <= full.fsm.state_count()


class TestFilters:
    def test_filter_prunes_expansion(self, counter_model):
        keep_small = Filter(
            "value<2", lambda m: m.machine("counter").value < 2
        )
        result = explore(counter_model, ExplorationConfig(filters=[keep_small]))
        # states 0,1 expanded; state 2 recorded but filtered
        values = {
            s.key.value("counter", "value") for s in result.fsm.states
        }
        assert 3 not in values
        assert result.stats.filtered_states >= 1

    def test_filtered_states_marked_terminal(self, counter_model):
        keep_zero = Filter("zero", lambda m: m.machine("counter").value == 0)
        result = explore(counter_model, ExplorationConfig(filters=[keep_zero]))
        reasons = {s.terminal_reason for s in result.fsm.terminal_states()}
        assert any(r and r.startswith("filter:") for r in reasons)

    def test_violation_filter_from_properties(self, broken_arbiter_model):
        prop = MutexProperty()
        filt = violation_filter([prop])
        result = explore(
            broken_arbiter_model,
            ExplorationConfig(
                properties=[prop], filters=[filt], stop_on_violation=True
            ),
        )
        assert not result.ok


class TestSearchOrder:
    def test_bfs_and_dfs_cover_same_states(self, arbiter_model):
        bfs = explore(arbiter_model, ExplorationConfig(search_order=SearchOrder.BFS))
        arbiter_model.reset()
        dfs = explore(arbiter_model, ExplorationConfig(search_order=SearchOrder.DFS))
        bfs_keys = {s.key for s in bfs.fsm.states}
        dfs_keys = {s.key for s in dfs.fsm.states}
        assert bfs_keys == dfs_keys

    def test_bfs_counterexample_is_minimal(self, broken_arbiter_model):
        result = explore(
            broken_arbiter_model,
            ExplorationConfig(
                properties=[MutexProperty()], search_order=SearchOrder.BFS
            ),
        )
        # minimal scenario: m0.request, grant, m1.request, grant
        assert result.counterexample.length == 4


class TestInitAction:
    def test_init_action_runs_first(self):
        class Gate(AsmMachine):
            ready = StateVar(False)
            fired = StateVar(False)

            @action
            def init(self):
                require(not self.ready)
                self.ready = True

            @action
            def fire(self):
                require(self.ready)
                self.fired = True

        model = AsmModel()
        Gate(model=model, name="gate")
        model.seal()
        without = explore(model)
        assert without.fsm.state_count() >= 2
        model.reset()
        with_init = explore(model, ExplorationConfig(init_action="gate.init"))
        initial = with_init.fsm.initial_states()[0]
        assert initial.key.value("gate", "ready") is True


class TestActionRestriction:
    def test_actions_whitelist_shrinks_fsm(self, arbiter_model):
        full = explore(arbiter_model)
        arbiter_model.reset()
        only_requests = explore(
            arbiter_model,
            ExplorationConfig(actions=["m0.request", "m1.request"]),
        )
        assert only_requests.fsm.state_count() < full.fsm.state_count()
        assert only_requests.fsm.state_count() == 4  # 2^2 request subsets

    def test_state_variable_selection_merges_states(self, arbiter_model):
        from repro.asm import Location

        selected = [Location("arbiter", "m_owner")]
        result = explore(
            arbiter_model, ExplorationConfig(state_variables=selected)
        )
        full = explore(arbiter_model)
        assert result.fsm.state_count() <= full.fsm.state_count()
        assert result.fsm.state_count() <= 3  # owner in {-1, 0, 1}
