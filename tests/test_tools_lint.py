"""The repo lint framework (``tools/lint``).

The registry carries four built-in checks sharing the analyzer's
findings pipeline.  The real repo must gate clean; each rule must also
actually fire, proven against planted fixture trees, and honour the
shared ``# repro: allow[rule-id]`` suppression syntax.
"""

import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT))
try:
    from tools.lint import registered_checks, run_checks
finally:
    sys.path.pop(0)

BUILTIN_RULES = (
    "lint.docstring",
    "lint.monitor-construction",
    "lint.wall-clock",
    "lint.wire-parity",
)


def _plant(tmp_path, relative, text):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


class TestRegistry:
    def test_builtin_rules_registered(self):
        checks = registered_checks()
        for rule in BUILTIN_RULES:
            assert rule in checks
            assert checks[rule]

    def test_unknown_rule_rejected(self):
        with pytest.raises(KeyError):
            run_checks(rules=["lint.no-such-rule"])

    def test_repo_gates_clean(self):
        report = run_checks()
        assert report.ok, report.render()
        assert sorted(report.facts["checks"]) == sorted(BUILTIN_RULES)


class TestMonitorConstruction:
    def test_direct_construction_outside_psl_flagged(self, tmp_path):
        _plant(tmp_path, "src/repro/abv.py",
               "import repro.psl\n\n\ndef build(prop):\n"
               "    return Monitor(prop)\n")
        report = run_checks(tmp_path, rules=["lint.monitor-construction"])
        assert not report.ok
        [finding] = report.findings
        assert finding.path == "src/repro/abv.py"
        assert "compile_properties" in finding.message

    def test_construction_inside_psl_allowed(self, tmp_path):
        _plant(tmp_path, "src/repro/psl/factory.py",
               "def build(prop):\n    return Monitor(prop)\n")
        assert run_checks(tmp_path, rules=["lint.monitor-construction"]).ok

    def test_subclasses_found_transitively(self, tmp_path):
        _plant(tmp_path, "src/repro/psl/monitor.py",
               "class Monitor:\n    pass\n\n\n"
               "class SereMonitor(Monitor):\n    pass\n\n\n"
               "class FancyMonitor(SereMonitor):\n    pass\n")
        _plant(tmp_path, "src/repro/user.py",
               "def build():\n    return FancyMonitor()\n")
        report = run_checks(tmp_path, rules=["lint.monitor-construction"])
        assert [f.path for f in report.unsuppressed()] == ["src/repro/user.py"]


class TestWallClock:
    def test_time_time_flagged(self, tmp_path):
        _plant(tmp_path, "src/repro/stamp.py",
               "import time\n\n\ndef stamp():\n    return time.time()\n")
        report = run_checks(tmp_path, rules=["lint.wall-clock"])
        assert not report.ok
        assert "time.time()" in report.findings[0].message

    def test_datetime_now_flagged(self, tmp_path):
        _plant(tmp_path, "src/repro/stamp.py",
               "from datetime import datetime\n\n\ndef stamp():\n"
               "    return datetime.now()\n")
        assert not run_checks(tmp_path, rules=["lint.wall-clock"]).ok

    def test_perf_counter_allowed(self, tmp_path):
        _plant(tmp_path, "src/repro/timing.py",
               "import time\n\n\ndef measure():\n"
               "    return time.perf_counter()\n")
        assert run_checks(tmp_path, rules=["lint.wall-clock"]).ok

    def test_suppression_comment_allows_a_hit(self, tmp_path):
        _plant(tmp_path, "src/repro/stamp.py",
               "import time\n\n\ndef stamp():\n"
               "    # repro: allow[lint.wall-clock] report header only,"
               " never digested\n"
               "    return time.time()\n")
        report = run_checks(tmp_path, rules=["lint.wall-clock"])
        assert report.ok
        [finding] = report.findings
        assert finding.suppressed is True
        assert "never digested" in finding.suppression_reason


class TestWireParity:
    def test_reader_of_unwritten_field_flagged(self, tmp_path):
        _plant(tmp_path, "src/repro/wire.py",
               "class Spec:\n"
               "    def to_json(self):\n"
               "        return {\"name\": self.name}\n\n"
               "    @classmethod\n"
               "    def from_json(cls, doc):\n"
               "        return cls(doc[\"name\"], doc[\"seed\"])\n")
        report = run_checks(tmp_path, rules=["lint.wire-parity"])
        assert not report.ok
        assert "'seed'" in report.findings[0].message

    def test_matched_wire_forms_pass(self, tmp_path):
        _plant(tmp_path, "src/repro/wire.py",
               "class Spec:\n"
               "    def to_json(self):\n"
               "        return {\"name\": self.name, \"seed\": self.seed}\n\n"
               "    @classmethod\n"
               "    def from_json(cls, doc):\n"
               "        return cls(doc[\"name\"], doc.get(\"seed\", 0))\n")
        assert run_checks(tmp_path, rules=["lint.wire-parity"]).ok


class TestEntryPoints:
    def test_module_invocation_gates_clean(self):
        result = subprocess.run(
            [sys.executable, "-m", "tools.lint"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "analyze clean" in result.stdout

    def test_module_list_shows_rules(self):
        result = subprocess.run(
            [sys.executable, "-m", "tools.lint", "--list"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        for rule in BUILTIN_RULES:
            assert rule in result.stdout
