"""The coordinator tier: elastic pool, spec cache, result store, auth.

The contract under test extends the dispatch invariant one level up:
the coordinator's merged report digest is byte-identical to a serial
run at any fleet size *and under churn* -- workers registering after a
job started, workers dying mid-shard -- and a repeat submission of the
same ``(spec fingerprint, seed set)`` is answered from the persistent
result store with its digest re-verified on the way out.
"""

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import replace

import pytest

from repro.checkpoint import (
    global_registry,
    reset_global_registry,
    snapshot_scenario_run,
)
from repro.coordinator import (
    Coordinator,
    CoordinatorClient,
    CoordinatorError,
    ResultStore,
    UnknownFingerprintError,
    WorkerRegistry,
    start_coordinator,
    store_key,
)
from repro.dispatch import (
    CachingHttpHost,
    HostFailure,
    InProcessHost,
    plan_shards,
    specs_fingerprint,
)
from repro.coordinator.store import ShardStore
from repro.dispatch.worker import start_worker
from repro.scenarios.regression import RegressionRunner, ScenarioSpec, build_specs
from repro.workbench import SerialEngine, Workbench

SPECS = build_specs(count=6, cycles=120)
FINGERPRINT = specs_fingerprint(SPECS)


@pytest.fixture(scope="module")
def serial_report():
    return RegressionRunner(SPECS, engine=SerialEngine()).run()


class TestSpecsFingerprint:
    """The spec-cache / job key: pure content, no plan geometry."""

    def test_stable_and_content_sensitive(self):
        assert specs_fingerprint(SPECS) == FINGERPRINT
        assert len(FINGERPRINT) == 16
        other = build_specs(count=6, cycles=120, base_seed=999)
        assert specs_fingerprint(other) != FINGERPRINT

    def test_independent_of_shard_count(self):
        """However the list is later partitioned, the key is the same --
        that is what lets a worker re-derive any (index, of) slice from
        one cached upload."""
        for of in (1, 2, 3, 6):
            reassembled = [
                spec for shard in plan_shards(SPECS, of) for spec in shard.specs
            ]
            assert sorted(s.label for s in reassembled) == sorted(
                s.label for s in SPECS
            )
        assert specs_fingerprint(list(SPECS)) == FINGERPRINT


class TestResultStore:
    """Persistence with the digest re-verified on every read."""

    def test_roundtrip(self, tmp_path, serial_report):
        store = ResultStore(str(tmp_path))
        seeds = sorted({s.seed for s in SPECS})
        store.put(FINGERPRINT, seeds, serial_report)
        assert store.entries() == 1
        fetched = store.fetch(FINGERPRINT, seeds)
        assert fetched is not None
        assert fetched.digest() == serial_report.digest()

    def test_miss_on_unknown_key(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert store.fetch("feedface00000000", [1, 2]) is None

    def test_key_covers_fingerprint_and_seed_set(self):
        assert store_key("abc", [3, 1, 2]) == store_key("abc", [1, 2, 3, 3])
        assert store_key("abc", [1, 2]) != store_key("abc", [1, 3])
        assert store_key("abc", [1, 2]) != store_key("abd", [1, 2])

    def test_tampered_entry_reads_as_miss_and_is_dropped(
        self, tmp_path, serial_report
    ):
        """A stored report whose content no longer matches its recorded
        digest must never be served: the entry is removed and counted."""
        store = ResultStore(str(tmp_path))
        seeds = sorted({s.seed for s in SPECS})
        path = store.put(FINGERPRINT, seeds, serial_report)
        with open(path) as handle:
            doc = json.load(handle)
        doc["report"]["verdicts"][0]["stream_digest"] = "0" * 16
        with open(path, "w") as handle:
            json.dump(doc, handle)
        assert store.fetch(FINGERPRINT, seeds) is None
        assert store.corruptions == 1
        assert store.entries() == 0
        # and the miss re-runs cleanly: a fresh put serves again
        store.put(FINGERPRINT, seeds, serial_report)
        assert store.fetch(FINGERPRINT, seeds).digest() == serial_report.digest()

    def test_unparseable_entry_reads_as_miss(self, tmp_path, serial_report):
        store = ResultStore(str(tmp_path))
        seeds = [1]
        path = store.put(FINGERPRINT, seeds, serial_report)
        with open(path, "w") as handle:
            handle.write("not json at all")
        assert store.fetch(FINGERPRINT, seeds) is None
        assert store.corruptions == 1


class TestShardStore:
    """Per-shard checkpoints: the resumable-job ledger on disk."""

    def test_roundtrip_geometry_keying_and_prune(
        self, tmp_path, serial_report
    ):
        store = ShardStore(str(tmp_path))
        seeds = sorted({s.seed for s in SPECS})
        store.put_shard(FINGERPRINT, seeds, 0, 4, serial_report)
        store.put_shard(FINGERPRINT, seeds, 2, 4, serial_report)
        assert store.entries() == 2
        fetched = store.fetch_shard(FINGERPRINT, seeds, 0, 4)
        assert fetched is not None
        assert fetched.digest() == serial_report.digest()
        # the plan geometry is part of the key: the same index under a
        # different split, or a never-completed index, reads as a miss
        assert store.fetch_shard(FINGERPRINT, seeds, 0, 2) is None
        assert store.fetch_shard(FINGERPRINT, seeds, 1, 4) is None
        assert store.prune(FINGERPRINT, seeds) == 2
        assert store.entries() == 0

    def test_tampered_shard_reads_as_miss_and_is_dropped(
        self, tmp_path, serial_report
    ):
        """A resume must never trust a rotted checkpoint: the digest is
        re-verified on read, the bad entry removed and counted, and the
        shard simply re-runs as a miss."""
        store = ShardStore(str(tmp_path))
        seeds = [1, 2]
        path = store.put_shard(FINGERPRINT, seeds, 1, 3, serial_report)
        with open(path) as handle:
            doc = json.load(handle)
        doc["report"]["verdicts"][0]["stream_digest"] = "0" * 16
        with open(path, "w") as handle:
            json.dump(doc, handle)
        assert store.fetch_shard(FINGERPRINT, seeds, 1, 3) is None
        assert store.corruptions == 1
        assert store.entries() == 0


@pytest.fixture()
def worker():
    handle = start_worker()
    yield handle
    handle.stop()


class TestWorkerSpecCache:
    """The POST /specs + by-reference /run protocol on a real worker."""

    def _healthz(self, handle):
        with urllib.request.urlopen(
            f"http://{handle.address}/healthz", timeout=5
        ) as response:
            return json.loads(response.read())

    def test_by_reference_run_matches_by_value(self, worker, serial_report):
        host = CachingHttpHost(worker.address)
        host.prime(FINGERPRINT, SPECS)
        shards = plan_shards(SPECS, 2)
        from repro.dispatch import ShardWork, merge_reports

        reports = [
            host.run_shard(ShardWork(shard=s, spec_file="")) for s in shards
        ]
        assert merge_reports(reports).digest() == serial_report.digest()
        # the list crossed the wire once; both shards ran by reference
        assert host.bytes_shipped > 0
        assert host.bytes_saved > host.bytes_shipped / 2
        assert self._healthz(worker)["spec_cache_entries"] == 1

    def test_unknown_fingerprint_is_a_404(self, worker):
        body = json.dumps(
            {
                "version": 1,
                "shard": {"index": 0, "of": 2, "fingerprint": "ab" * 8},
                "workers": 1,
            }
        ).encode("utf-8")
        request = urllib.request.Request(
            f"http://{worker.address}/run", data=body, method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 404
        assert "unknown spec fingerprint" in json.loads(excinfo.value.read())[
            "error"
        ]

    def test_upload_fingerprint_mismatch_is_a_400(self, worker):
        body = json.dumps(
            {
                "version": 1,
                "fingerprint": "00" * 8,
                "specs": [spec.to_json() for spec in SPECS],
            }
        ).encode("utf-8")
        request = urllib.request.Request(
            f"http://{worker.address}/specs", data=body, method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400
        assert "mismatch" in json.loads(excinfo.value.read())["error"]

    def test_worker_that_lost_the_entry_gets_one_reupload(
        self, worker, serial_report
    ):
        """A worker that restarted (or evicted the entry) answers the
        by-reference run with the 404; the caching host re-ships the
        list once and retries instead of failing the shard."""
        host = CachingHttpHost(worker.address)
        host.prime(FINGERPRINT, SPECS)
        # claim the upload already happened without performing it: the
        # worker-side state a restart would have wiped
        host._uploaded.add(FINGERPRINT)
        from repro.dispatch import ShardWork

        shard = plan_shards(SPECS, 6)[0]
        report = host.run_shard(ShardWork(shard=shard, spec_file=""))
        assert [v.spec.label for v in report.verdicts] == [
            s.label for s in shard.specs
        ]
        assert host.bytes_shipped > 0     # the recovery upload happened


class TestAuth:
    """One shared bearer secret across worker and coordinator POSTs."""

    def test_worker_refuses_unauthenticated_posts(self, serial_report):
        handle = start_worker(token="fleet-secret")
        try:
            body = json.dumps(
                {
                    "version": 1,
                    "shard": {
                        "index": 0,
                        "of": 1,
                        "specs": [s.to_json() for s in SPECS[:1]],
                    },
                }
            ).encode("utf-8")
            request = urllib.request.Request(
                f"http://{handle.address}/run", data=body, method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=5)
            assert excinfo.value.code == 401
            # GET probes stay open: no secret needed for liveness
            with urllib.request.urlopen(
                f"http://{handle.address}/healthz", timeout=5
            ) as response:
                assert json.loads(response.read())["ok"] is True
            # the right token serves normally
            from repro.dispatch import HttpHost, ShardWork

            host = HttpHost(handle.address, token="fleet-secret")
            report = host.run_shard(
                ShardWork(shard=plan_shards(SPECS[:1], 1)[0], spec_file="")
            )
            assert len(report.verdicts) == 1
        finally:
            handle.stop()

    def test_coordinator_gates_everything_but_healthz(self, tmp_path):
        handle = start_coordinator(
            store_path=str(tmp_path), token="fleet-secret"
        )
        try:
            with urllib.request.urlopen(
                f"{handle.url}/healthz", timeout=5
            ) as response:
                assert json.loads(response.read())["ok"] is True
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{handle.url}/status", timeout=5)
            assert excinfo.value.code == 401
            request = urllib.request.Request(
                f"{handle.url}/jobs", data=b"{}", method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=5)
            assert excinfo.value.code == 401
            assert CoordinatorClient(
                handle.url, token="fleet-secret"
            ).status()["ok"]
        finally:
            handle.stop()


class _ScriptedWorkerHost:
    """In-process stand-in for a CachingHttpHost with controlled fate.

    ``delay`` stretches every shard so the test can interleave joins
    and deaths mid-job; flipping ``dead`` makes the next run raise the
    connection-refused failure a crashed daemon would produce.
    """

    def __init__(self, name, delay=0.15):
        self.name = name
        self.delay = delay
        self.dead = False
        self.primed = {}
        self.served = 0
        self.bytes_saved = 0

    def prime(self, fingerprint, specs):
        self.primed[fingerprint] = list(specs)

    def run_shard(self, work):
        time.sleep(self.delay)
        if self.dead:
            raise HostFailure(
                self.name,
                work.shard.label,
                "transport failed: connection refused",
                kind="refused",
            )
        report = InProcessHost(self.name).run_shard(work)
        self.served += 1
        return report


class TestElasticService:
    """The coordinator core driven directly with injected hosts."""

    def _coordinator(self, tmp_path, hosts, **kwargs):
        registry = WorkerRegistry(
            stale_after=60.0,
            host_factory=lambda address, token: hosts[address],
        )
        return Coordinator(
            store=ResultStore(str(tmp_path)), registry=registry, **kwargs
        )

    def test_churn_mid_job_keeps_the_digest(self, tmp_path, serial_report):
        """Satellite: a worker registers after dispatch starts and
        another dies mid-shard; the merged digest still equals serial.
        """
        early = _ScriptedWorkerHost("early", delay=0.25)
        late = _ScriptedWorkerHost("late", delay=0.05)
        hosts = {"early:1": early, "late:1": late}
        coordinator = self._coordinator(tmp_path, hosts)
        coordinator.registry.register("early:1")
        job = coordinator.submit(specs=SPECS)
        assert job.status == "queued"

        runner = threading.Thread(target=coordinator.run_next)
        runner.start()
        # join mid-run: by now 'early' holds its first shard
        time.sleep(0.1)
        coordinator.registry.register("late:1")
        # die mid-shard: 'early' is still inside that first shard (its
        # 0.25s stretch ends after this flip), so the failure lands on
        # an in-flight shard, which is re-queued to the late joiner
        time.sleep(0.1)
        early.dead = True
        runner.join(timeout=60)
        assert not runner.is_alive()

        assert job.status == "done", job.error
        assert job.report_doc["digest"] == serial_report.digest()
        assert late.served >= 1            # the late joiner stole work
        assert job.dispatch["worker_joins"] == 2
        assert job.dispatch["worker_leaves"] >= 1
        assert "late" in job.dispatch["hosts"]

    def test_killed_job_resumes_from_shard_checkpoints(
        self, tmp_path, serial_report
    ):
        """Satellite: the whole pool dies mid-job; resubmission resumes
        from the shards checkpointed before the death instead of
        starting over, and the merged digest still equals serial.
        """
        hosts = {}
        coordinator = self._coordinator(
            tmp_path, hosts, idle_timeout=0.5, poll_interval=0.02
        )
        first = _ScriptedWorkerHost("first", delay=0.12)
        hosts["first:1"] = first
        coordinator.registry.register("first:1")
        job = coordinator.submit(specs=SPECS)
        runner = threading.Thread(target=coordinator.run_next)
        runner.start()
        # let a couple of shards land, then kill the only worker: the
        # job fails (no live workers), but every completed shard was
        # checkpointed to the shard store as it finished
        time.sleep(0.3)
        first.dead = True
        runner.join(timeout=60)
        assert not runner.is_alive()
        assert job.status == "failed", (job.status, job.error)
        resumable = coordinator.shard_store.entries()
        assert resumable >= 1, "no shard checkpoints written before death"

        # a fresh worker joins and the job is resubmitted: checkpointed
        # shards are pre-completed from disk, only the rest re-run
        second = _ScriptedWorkerHost("second", delay=0.0)
        hosts["second:1"] = second
        coordinator.registry.register("second:1")
        retry = coordinator.submit(specs=SPECS)
        coordinator.run_pending()
        assert retry.status == "done", retry.error
        assert retry.report_doc["digest"] == serial_report.digest()
        assert retry.dispatch["shards_resumed"] == resumable
        assert (
            coordinator.metrics.counter("coordinator.checkpoint.resume").value
            == 1
        )
        assert (
            coordinator.metrics.counter(
                "coordinator.checkpoint.shards_skipped"
            ).value
            == resumable
        )
        # the finished job pruned its checkpoints from the shard store
        assert coordinator.shard_store.entries() == 0

    def test_repeat_submission_is_served_from_the_store(
        self, tmp_path, serial_report
    ):
        host = _ScriptedWorkerHost("only", delay=0.0)
        coordinator = self._coordinator(tmp_path, {"only:1": host})
        coordinator.registry.register("only:1")
        first = coordinator.submit(specs=SPECS)
        coordinator.run_pending()
        assert first.status == "done"
        assert first.from_cache is False
        served_before = host.served
        second = coordinator.submit(specs=SPECS)
        # already done at submit time: no queueing, no worker touched
        assert second.status == "done"
        assert second.from_cache is True
        assert host.served == served_before
        assert second.report_doc["digest"] == serial_report.digest()
        assert first.report_doc["digest"] == second.report_doc["digest"]

    def test_by_reference_submission_needs_an_upload(self, tmp_path):
        coordinator = self._coordinator(tmp_path, {})
        with pytest.raises(UnknownFingerprintError, match="unknown spec"):
            coordinator.submit(fingerprint="ab" * 8)
        # after a by-value submission the fingerprint resolves
        job = coordinator.submit(specs=SPECS)
        assert job.fingerprint == FINGERPRINT
        again = coordinator.submit(fingerprint=FINGERPRINT)
        assert again.fingerprint == FINGERPRINT

    def test_job_with_no_workers_fails_after_idle_timeout(self, tmp_path):
        coordinator = self._coordinator(
            tmp_path, {}, idle_timeout=0.3, poll_interval=0.02
        )
        job = coordinator.submit(specs=SPECS)
        coordinator.run_pending()
        assert job.status == "failed"
        assert "no live workers" in job.error

    def test_stale_workers_are_pruned(self):
        registry = WorkerRegistry(stale_after=0.1)
        registry.register("w:1")
        assert [r.address for r in registry.live()] == ["w:1"]
        time.sleep(0.25)
        assert registry.live() == []
        assert registry.leaves == 1
        # heartbeat from a pruned worker says "re-register"
        assert registry.heartbeat("w:1") is False


class TestCoordinatorHttp:
    """The daemon end to end: registration, jobs, cache, workbench."""

    @pytest.fixture()
    def fleet(self, tmp_path):
        coordinator = start_coordinator(
            store_path=str(tmp_path), token="fleet-secret"
        )
        workers = [
            start_worker(
                token="fleet-secret",
                coordinator=coordinator.url,
                heartbeat=0.2,
            )
            for _ in range(2)
        ]
        client = CoordinatorClient(
            coordinator.url, token="fleet-secret", timeout=120
        )
        deadline = time.monotonic() + 10
        while len(client.status()["workers"]) < 2:
            assert time.monotonic() < deadline, "workers never registered"
            time.sleep(0.05)
        yield coordinator, workers, client
        for worker in workers:
            worker.stop()
        coordinator.stop()

    def test_submit_poll_resubmit_roundtrip(self, fleet, serial_report):
        coordinator, _workers, client = fleet
        report, job = client.run(list(SPECS))
        assert report.digest() == serial_report.digest()
        assert job["from_cache"] is False
        assert job["dispatch"]["shards"] >= 2
        # the identical submission never reaches a worker again
        report_again, job_again = client.run(list(SPECS))
        assert job_again["from_cache"] is True
        assert report_again.digest() == serial_report.digest()
        status = client.status()
        assert status["worker_joins"] >= 2
        assert status["store_entries"] == 1
        assert status["spec_lists_cached"] == 1

    def test_workbench_regress_over_coordinator(self, fleet):
        coordinator, _workers, _client = fleet
        workbench = Workbench("master_slave")
        result = workbench.regress(
            scenarios=4,
            cycles=120,
            coordinator=coordinator.url,
            token="fleet-secret",
        )
        assert result.status.name == "PASSED"
        assert result.metrics["engine"] == "coordinator"
        assert result.metrics["coordinator"]["from_cache"] is False
        specs = build_specs(
            models=["master_slave"], count=4, base_seed=2005, cycles=120
        )
        serial = RegressionRunner(specs, engine=SerialEngine()).run()
        assert result.data["regression_digest"] == serial.digest()

    def test_resume_spec_ships_its_checkpoint_through_the_fleet(
        self, fleet
    ):
        """A spec carrying ``resume_from`` works end to end: the client
        uploads the checkpoint to the coordinator, the coordinator fans
        it out to workers, and the job's digest equals the same spec
        run fresh from reset."""
        coordinator, _workers, client = fleet
        spec = ScenarioSpec(
            "master_slave", 2005, (2, 2, 2), "bursty", 120, None, True, (),
            True,
        )
        baseline = RegressionRunner([spec]).run()
        reset_global_registry()
        try:
            checkpoint = snapshot_scenario_run(replace(spec, cycles=60), 60)
            digest = global_registry().put(checkpoint)
            resumed = replace(spec, resume_from=digest)
            report, job = client.run([resumed])
            assert report.digest() == baseline.digest()
            assert job["from_cache"] is False
            uploads = coordinator.coordinator.metrics.counter(
                "coordinator.checkpoint_uploads"
            ).value
            assert uploads >= 1
        finally:
            reset_global_registry()

    def test_corrupt_checkpoint_upload_is_a_400(self, fleet):
        """The coordinator applies the same wire taxonomy as a worker:
        a tampered checkpoint is refused with a 400, not accepted or
        crashed on."""
        coordinator, _workers, _client = fleet
        spec = ScenarioSpec(
            "master_slave", 2005, (2, 2, 2), "bursty", 60, None, True, (),
            True,
        )
        reset_global_registry()
        try:
            doc = snapshot_scenario_run(spec, 30).to_json()
            doc["payload"]["cycles_run"] += 1      # digest now lies
            body = json.dumps(
                {"version": 1, "checkpoint": doc}
            ).encode("utf-8")
            request = urllib.request.Request(
                f"{coordinator.url}/checkpoints",
                data=body,
                headers={"Authorization": "Bearer fleet-secret"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=5)
            assert excinfo.value.code == 400
            message = json.loads(excinfo.value.read())["error"]
            assert "rejected checkpoint upload" in message
        finally:
            reset_global_registry()

    def test_worker_reregisters_after_coordinator_forgets_it(self, fleet):
        coordinator, workers, client = fleet
        address = workers[0].link.advertise
        assert coordinator.coordinator.registry.deregister(address)
        # the worker's next heartbeat gets the 404 and re-registers
        deadline = time.monotonic() + 10
        while address not in [
            w["address"] for w in client.status()["workers"]
        ]:
            assert time.monotonic() < deadline, "worker never came back"
            time.sleep(0.05)

    def test_unknown_job_is_a_404(self, fleet):
        _coordinator, _workers, client = fleet
        with pytest.raises(CoordinatorError, match="404"):
            client.job("job-9999-deadbeef")


class TestCliCoordinator:
    """--coordinator flag plumbing and conflict validation."""

    def test_coordinator_conflicts_with_local_dispatch_flags(self):
        from repro.cli import main

        for extra in (
            ["--shards", "2"],
            ["--shard", "1/2"],
            ["--hosts", "127.0.0.1:8421"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(
                    [
                        "regress",
                        "--model",
                        "pci",
                        "--coordinator",
                        "http://127.0.0.1:1",
                    ]
                    + extra
                )
            assert excinfo.value.code == 2

    def test_unreachable_coordinator_is_a_stage_error(self):
        workbench = Workbench("master_slave")
        result = workbench.regress(
            scenarios=2, cycles=60, coordinator="http://127.0.0.1:1"
        )
        assert result.status.name == "ERROR"
        assert "unreachable" in result.error
