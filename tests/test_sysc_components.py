"""Unit tests for signals, clocks, modules/ports, datatypes, tracing
and reporting."""

import io

import pytest

from repro.asm import BitVector
from repro.sysc import (
    BindingError,
    Clock,
    ElaborationError,
    In,
    Logic,
    Module,
    Out,
    Report,
    ReportHandler,
    Severity,
    Signal,
    Simulator,
    SyscError,
    VcdTracer,
    format_time,
    logic_vector,
    ns,
    us,
)


class TestSignal:
    def test_unattached_signal_updates_immediately(self):
        signal = Signal(0, "s")
        signal.write(5)
        assert signal.read() == 5

    def test_no_event_on_same_value(self):
        sim = Simulator()
        signal = Signal(1, "s", sim)
        hits = []
        sim.method(lambda: hits.append(1), sensitive=(signal,), dont_initialize=True)

        def driver():
            signal.write(1)  # unchanged
            yield ns(1)
            signal.write(2)

        sim.thread(driver)
        sim.run(ns(5))
        assert len(hits) == 1

    def test_posedge_negedge_events(self):
        sim = Simulator()
        signal = Signal(False, "s", sim)
        edges = []

        def pos_watcher():
            while True:
                yield signal.posedge_event
                edges.append("pos")

        def neg_watcher():
            while True:
                yield signal.negedge_event
                edges.append("neg")

        def driver():
            yield ns(1)
            signal.write(True)
            yield ns(1)
            signal.write(False)

        sim.thread(pos_watcher)
        sim.thread(neg_watcher)
        sim.thread(driver)
        sim.run(ns(10))
        assert edges == ["pos", "neg"]


class TestClock:
    def test_period_and_cycles(self):
        sim = Simulator()
        clock = Clock("clk", ns(10), sim)
        sim.run(ns(100))
        assert clock.cycle_count == 11  # posedge at t=0 plus every 10ns

    def test_duty_cycle(self):
        sim = Simulator()
        clock = Clock("clk", ns(10), sim, duty_cycle=0.3)
        transitions = []

        def watch():
            while True:
                yield clock.value_changed
                transitions.append((sim.time, clock.read()))

        sim.thread(watch)
        sim.run(ns(20))
        # high for 3ns, low for 7ns
        assert (ns(3), False) in transitions

    def test_start_time(self):
        sim = Simulator()
        clock = Clock("clk", ns(10), sim, start_time=ns(25))
        rises = []

        def watch():
            while True:
                yield clock.posedge_event
                rises.append(sim.time)

        sim.thread(watch)
        sim.run(ns(40))
        assert rises and rises[0] == ns(25)

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(SyscError):
            Clock("bad", 1, sim)
        with pytest.raises(SyscError):
            Clock("bad", ns(10), sim, duty_cycle=1.5)


class TestModulePorts:
    def test_port_binding_and_io(self):
        sim = Simulator()
        wire = Signal(0, "wire", sim)

        class Producer(Module):
            def __init__(self, name, simulator):
                super().__init__(name, simulator)
                self.out = self.out_port("out")

        class Consumer(Module):
            def __init__(self, name, simulator):
                super().__init__(name, simulator)
                self.inp = self.in_port("inp")

        producer = Producer("producer", sim)
        consumer = Consumer("consumer", sim)
        producer.out.bind(wire)
        consumer.inp.bind(wire)
        producer.check_bindings()
        consumer.check_bindings()
        producer.out.write(3)
        sim.run(ns(1))
        assert consumer.inp.read() == 3

    def test_unbound_port_read_raises(self):
        sim = Simulator()

        class M(Module):
            def __init__(self, name, simulator):
                super().__init__(name, simulator)
                self.inp = self.in_port("inp")

        module = M("m", sim)
        with pytest.raises(BindingError):
            module.inp.read()
        with pytest.raises(BindingError):
            module.check_bindings()

    def test_port_to_port_binding(self):
        sim = Simulator()
        wire = Signal(7, "w", sim)
        parent_port: Out = Out("parent")
        parent_port.bind(wire)
        child_port: In = In("child")
        child_port.bind(parent_port)
        assert child_port.read() == 7

    def test_binding_to_unbound_port_rejected(self):
        dangling: Out = Out("dangling")
        child: In = In("child")
        with pytest.raises(BindingError):
            child.bind(dangling)

    def test_module_hierarchy_names(self):
        sim = Simulator()
        parent = Module("top", sim)
        child = Module("child", parent=parent)
        assert child.name == "top.child"
        assert child in parent.children
        assert child.simulator is sim

    def test_module_needs_simulator(self):
        with pytest.raises(ElaborationError):
            Module("orphan")

    def test_module_signals_collected(self):
        sim = Simulator()
        parent = Module("top", sim)
        parent.signal(0, "a")
        child = Module("child", parent=parent)
        child.signal(0, "b")
        names = [s.name for s in parent.signals()]
        assert names == ["top.a", "top.child.b"]


class TestLogic:
    def test_coercions(self):
        assert Logic(1).value == "1"
        assert Logic(True) == "1"
        assert Logic("z").value == "Z"

    def test_unknown_propagation(self):
        assert (Logic("X") & Logic("1")).value == "X"
        assert (Logic("X") & Logic("0")).value == "0"
        assert (Logic("X") | Logic("1")).value == "1"
        assert (Logic("Z") ^ Logic("1")).value == "X"
        assert (~Logic("Z")).value == "X"

    def test_known_algebra(self):
        assert (Logic("1") & Logic("1")) == Logic("1")
        assert (Logic("0") | Logic("1")) == Logic("1")
        assert (Logic("1") ^ Logic("1")) == Logic("0")
        assert (~Logic("0")) == Logic("1")

    def test_to_bool(self):
        assert Logic("1").to_bool() is True
        with pytest.raises(SyscError):
            Logic("X").to_bool()

    def test_logic_vector_parse(self):
        values = logic_vector("01XZ")
        assert [l.value for l in values] == ["0", "1", "X", "Z"]

    def test_invalid_literal(self):
        with pytest.raises(SyscError):
            Logic("q")
        with pytest.raises(SyscError):
            Logic(3)


class TestVcd:
    def test_vcd_structure(self):
        sim = Simulator()
        clock = Clock("clk", ns(10), sim)
        counter = Signal(0, "count", sim)

        def body():
            while True:
                yield clock.posedge_event
                counter.write(counter.read() + 1)

        sim.thread(body)
        tracer = VcdTracer(sim)
        tracer.trace(clock)
        tracer.trace(counter)
        sim.run(ns(45))
        text = tracer.dump()
        assert "$timescale 1ps $end" in text
        assert "$var wire 1 ! clk $end" in text
        assert "$enddefinitions $end" in text
        assert "#0" in text or "#10000" in text

    def test_write_to_stream(self):
        sim = Simulator()
        clock = Clock("clk", ns(10), sim)
        tracer = VcdTracer(sim)
        tracer.trace(clock)
        sim.run(ns(25))
        buffer = io.StringIO()
        tracer.write(buffer)
        assert buffer.getvalue().startswith("$date")

    def test_duplicate_trace_ignored(self):
        sim = Simulator()
        clock = Clock("clk", ns(10), sim)
        tracer = VcdTracer(sim)
        tracer.trace(clock)
        tracer.trace(clock)
        assert len(tracer._signals) == 1

    def test_bitvector_formatting(self):
        sim = Simulator()
        vector = Signal(BitVector("1010"), "bus", sim)
        tracer = VcdTracer(sim)
        tracer.trace(vector)
        sim.run(ns(1))
        assert "b1010" in tracer.dump()


class TestReporting:
    def test_counts_and_summary(self):
        handler = ReportHandler()
        handler.info("label", "hello")
        handler.warning("label", "careful")
        handler.error("label", "bad", time=ns(5))
        assert handler.counts[Severity.ERROR] == 1
        assert len(handler.errors()) == 1
        assert "1 error" in handler.summary()

    def test_stop_escalation(self):
        handler = ReportHandler(stop_severity=Severity.ERROR)
        assert handler.should_stop(Severity.ERROR)
        assert not handler.should_stop(Severity.WARNING)

    def test_sink_callback(self):
        seen = []
        handler = ReportHandler(sink=seen.append)
        handler.error("x", "boom")
        assert seen and isinstance(seen[0], Report)


class TestTimeHelpers:
    def test_conversions(self):
        assert ns(1) == 1000
        assert us(1) == ns(1000)

    def test_format(self):
        assert format_time(ns(30)) == "30 ns"
        assert format_time(500) == "500 ps"
        assert format_time(us(2)) == "2 us"
