"""Tests for the runnable ASM -> SystemC translation and monitor binding."""

import pytest

from repro.asm import ActionCall, AsmModel
from repro.explorer import ExplorationConfig, explore
from repro.psl import Property, PslTypeError, parse_formula
from repro.translate import (
    AsmSystemCModule,
    FirstEnabledPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    build_runtime,
    make_extractor,
    validate_binding,
)
from conftest import ToyArbiter, ToyMaster


def build_arbiter_model() -> AsmModel:
    model = AsmModel("bus")
    ToyMaster(model=model, name="m0")
    ToyMaster(model=model, name="m1")
    ToyArbiter(model=model, name="arbiter")
    model.seal()
    return model


class TestRuntimeModule:
    def test_signals_mirror_state_vars(self):
        simulator, clock, module = build_runtime(build_arbiter_model())
        assert "m0.m_req" in module.state_signals
        assert "arbiter.m_owner" in module.state_signals
        assert module.state_signals["arbiter.m_owner"].read() == -1

    def test_action_signals_exist(self):
        _, _, module = build_runtime(build_arbiter_model())
        assert "arbiter.grant" in module.action_signals
        assert "m1.request" in module.action_signals

    def test_simulation_executes_actions(self):
        simulator, clock, module = build_runtime(build_arbiter_model())
        simulator.run(clock.period * 50)
        assert module.executed
        assert module.cycle >= 50

    def test_signals_track_asm_state(self):
        simulator, clock, module = build_runtime(build_arbiter_model())
        simulator.run(clock.period * 50)
        owner_signal = module.state_signals["arbiter.m_owner"].read()
        assert owner_signal == module.asm_model.machine("arbiter").m_owner

    def test_letter_contains_qualified_and_bare_names(self):
        _, _, module = build_runtime(build_arbiter_model())
        letter = module.letter()
        assert "m0.m_req" in letter
        assert "m_owner" in letter
        assert "arbiter.grant" in letter

    def test_round_robin_policy_rotates(self):
        policy = RoundRobinPolicy()
        calls = [ActionCall("m", "a"), ActionCall("m", "b")]
        chosen = [policy.choose(calls, i).action for i in range(4)]
        assert chosen == ["a", "b", "a", "b"]

    def test_first_enabled_policy(self):
        policy = FirstEnabledPolicy()
        calls = [ActionCall("m", "a"), ActionCall("m", "b")]
        assert policy.choose(calls, 0).action == "a"
        assert policy.choose([], 0) is None

    def test_random_policy_deterministic_by_seed(self):
        calls = [ActionCall("m", "a"), ActionCall("m", "b"), ActionCall("m", "c")]
        first = [RandomPolicy(7).choose(calls, i).action for i in range(6)]
        second = [RandomPolicy(7).choose(calls, i).action for i in range(6)]
        assert first == second

    def test_candidate_filter(self):
        model = build_arbiter_model()
        simulator, clock, module = (
            None, None, None
        )
        from repro.sysc import Clock, Simulator

        simulator = Simulator()
        clock = Clock("clk", 30_000, simulator)
        module = AsmSystemCModule(
            "rtl", simulator, clock, model,
            candidate_filter=lambda c: c.machine != "m1",
        )
        simulator.run(clock.period * 30)
        assert all(call.machine != "m1" for call in module.executed)


class TestSemanticPreservation:
    """The translated simulation only takes transitions the explorer
    also finds -- the point of the purely-syntactic translation rules."""

    def test_simulation_trace_is_subset_of_explored(self):
        model = build_arbiter_model()
        exploration = explore(model, ExplorationConfig())
        explored_labels = {t.label() for t in exploration.fsm.transitions}

        model2 = build_arbiter_model()
        simulator, clock, module = build_runtime(model2)
        simulator.run(clock.period * 200)
        executed_labels = {c.label() for c in module.executed}
        assert executed_labels <= explored_labels

    def test_simulation_states_are_explored_states(self):
        model = build_arbiter_model()
        exploration = explore(model, ExplorationConfig())
        explored_keys = {s.key for s in exploration.fsm.states}

        model2 = build_arbiter_model()
        simulator, clock, module = build_runtime(model2)
        for _ in range(100):
            simulator.run(clock.period)
            assert model2.state_key() in explored_keys


class TestBinding:
    def test_binding_resolves_variables(self):
        _, _, module = build_runtime(build_arbiter_model())
        prop = Property("p", parse_formula("never (m0.m_gnt && m1.m_gnt)"))
        plan = validate_binding(prop, module)
        assert plan.ok
        assert {v.name for v in plan.variables} == {"m0.m_gnt", "m1.m_gnt"}
        assert all(v.python_type == "bool" for v in plan.variables)

    def test_binding_reports_missing(self):
        _, _, module = build_runtime(build_arbiter_model())
        prop = Property("p", parse_formula("always ghost_signal"))
        plan = validate_binding(prop, module)
        assert not plan.ok
        assert plan.missing == ("ghost_signal",)

    def test_assert_bindings_raises(self):
        from repro.translate import assert_bindings

        _, _, module = build_runtime(build_arbiter_model())
        bad = Property("p", parse_formula("always nope"))
        with pytest.raises(PslTypeError):
            assert_bindings([bad], module)

    def test_extractor_is_read_only_view(self):
        _, _, module = build_runtime(build_arbiter_model())
        extract = make_extractor(module)
        letter = extract()
        letter_copy = dict(letter)
        # mutating the extracted letter does not touch the design
        letter_copy["m0.m_req"] = True
        assert module.state_signals["m0.m_req"].read() is False

    def test_binding_describe(self):
        _, _, module = build_runtime(build_arbiter_model())
        prop = Property("p", parse_formula("always m0.m_req"))
        text = validate_binding(prop, module).describe()
        assert "read-only" in text
