"""The ``python -m repro`` CLI and the JSON report surfaces."""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.cli import main as repro_main
from repro.scenarios.regression import main as regression_main


def run_cli(capsys, *argv):
    code = repro_main(list(argv))
    return code, capsys.readouterr().out


class TestList:
    def test_text_lists_both_models(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        assert "master_slave" in out and "pci" in out

    def test_json_lists_descriptions(self, capsys):
        code, out = run_cli(capsys, "list", "--json")
        assert code == 0
        doc = json.loads(out)
        names = {entry["name"] for entry in doc}
        assert {"master_slave", "pci"} <= names
        assert all(entry["description"] for entry in doc)


class TestExplore:
    def test_explore_master_slave_json(self, capsys):
        code, out = run_cli(
            capsys, "explore", "--model", "master_slave", "--liveness", "--json"
        )
        assert code == 0
        doc = json.loads(out)
        assert doc["ok"] is True
        stages = {s["stage"]: s for s in doc["stages"]}
        assert stages["explore"]["data"]["states"] > 0
        assert stages["explore"]["data"]["residue"]["transition_coverage"] == 0.0
        assert stages["check_liveness"]["data"]["checks"][0]["holds"] is True

    def test_explore_with_topology(self, capsys):
        code, out = run_cli(
            capsys, "explore", "--model", "pci", "--topology", "1,1", "--json"
        )
        assert code == 0
        doc = json.loads(out)
        assert doc["ok"] is True

    def test_unknown_model_fails_loudly(self, capsys):
        with pytest.raises(KeyError):
            run_cli(capsys, "explore", "--model", "warp_core")


class TestRegress:
    def test_regress_json_contains_digest(self, capsys):
        code, out = run_cli(
            capsys,
            "regress", "--model", "master_slave",
            "--scenarios", "3", "--cycles", "150", "--workers", "1", "--json",
        )
        assert code == 0
        doc = json.loads(out)
        stage = doc["stages"][0]
        assert stage["stage"] == "regress"
        assert stage["data"]["regression_digest"]
        assert stage["data"]["scenarios"] == 3


class TestClose:
    def test_close_json_reports_achieved_transitions(self, capsys):
        code, out = run_cli(
            capsys,
            "close",
            "--model",
            "master_slave",
            "--rounds",
            "1",
            "--cycles",
            "140",
            "--json",
        )
        assert code == 0
        doc = json.loads(out)
        stages = {stage["stage"]: stage for stage in doc["stages"]}
        assert set(stages) == {"explore", "close_coverage"}
        close = stages["close_coverage"]
        assert close["ok"]
        assert close["data"]["achieved"] > 0
        assert close["data"]["residue"]["transition_coverage"] > 0

    def test_scenarios_directed_mode(self, capsys):
        code = regression_main(
            [
                "--models",
                "master_slave",
                "--directed",
                "--rounds",
                "1",
                "--cycles",
                "140",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)
        assert doc["master_slave"]["data"]["achieved"] > 0

    def test_directed_rejects_regression_only_flags(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            regression_main(["--directed", "--shard", "1/2"])
        assert excinfo.value.code == 2
        assert "--shard" in capsys.readouterr().err


class TestFlow:
    @pytest.mark.slow
    def test_flow_digest_invariant_across_workers(self, capsys):
        docs = []
        for workers in ("1", "2"):
            code, out = run_cli(
                capsys,
                "flow", "--model", "master_slave",
                "--cycles", "400", "--scenarios", "4",
                "--scenario-cycles", "150", "--workers", workers, "--json",
            )
            assert code == 0
            docs.append(json.loads(out))
        assert all(doc["ok"] for doc in docs)
        assert docs[0]["digest"] == docs[1]["digest"]
        stage_names = [s["stage"] for s in docs[0]["stages"]]
        assert stage_names == [
            "explore", "check_liveness", "translate", "simulate_abv", "regress",
        ]

    def test_flow_text_output(self, capsys):
        code, out = run_cli(
            capsys,
            "flow", "--model", "master_slave",
            "--cycles", "300", "--scenarios", "2",
            "--scenario-cycles", "150", "--workers", "1",
        )
        assert code == 0
        assert "workbench session: master_slave" in out
        assert "VERIFIED" in out


class TestScenariosJson:
    def test_regression_cli_emits_json(self, capsys):
        code = regression_main(
            [
                "--models", "master_slave",
                "--scenarios", "3", "--cycles", "150", "--workers", "1",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)
        assert doc["ok"] is True
        assert doc["scenarios"] == 3
        assert doc["digest"]
        assert len(doc["verdicts"]) == 3
        assert doc["verdicts"][0]["scoreboard_digest"]

    def test_regression_cli_profile_restriction(self, capsys):
        code = regression_main(
            [
                "--models", "master_slave",
                "--scenarios", "4", "--cycles", "150", "--workers", "1",
                "--profiles", "bursty", "--json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)
        assert {v["profile"] for v in doc["verdicts"]} == {"bursty"}


class TestModuleEntryPoint:
    @pytest.mark.slow
    def test_python_dash_m_repro_runs(self):
        import repro

        src = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "master_slave" in proc.stdout
