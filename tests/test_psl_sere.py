"""Unit tests for SERE tight matching and partial-match liveness."""

import pytest

from repro.psl import (
    Const,
    Not,
    SereAnd,
    SereBool,
    SereConcat,
    SereFusion,
    SereGoto,
    SereNonConsec,
    SereOr,
    SereRepeat,
    Var,
    parse_sere,
    sere_within,
)
from repro.psl.sere import Matcher, match_ends, tightly_matches

A, B, C = Var("a"), Var("b"), Var("c")


def trace(*bits: str) -> list[dict]:
    """Build a trace from per-cycle signal strings, e.g. 'ab', '', 'c'."""
    return [{name: name in cycle for name in "abc"} for cycle in bits]


class TestBooleanStep:
    def test_matches_one_letter(self):
        assert sorted(match_ends(SereBool(A), trace("a"), 0)) == [1]

    def test_no_match_on_false(self):
        assert not match_ends(SereBool(A), trace("b"), 0)

    def test_no_match_past_end(self):
        assert not match_ends(SereBool(A), trace("a"), 1)

    def test_missing_signal_is_false(self):
        assert not match_ends(SereBool(Var("zz")), trace("a"), 0)


class TestConcat:
    def test_simple(self):
        item = SereConcat((SereBool(A), SereBool(B)))
        assert sorted(match_ends(item, trace("a", "b"), 0)) == [2]

    def test_fails_midway(self):
        item = SereConcat((SereBool(A), SereBool(B)))
        assert not match_ends(item, trace("a", "a"), 0)

    def test_with_star_padding(self):
        item = parse_sere("a ; b[*] ; c")
        assert sorted(match_ends(item, trace("a", "b", "b", "c"), 0)) == [4]
        assert sorted(match_ends(item, trace("a", "c"), 0)) == [2]


class TestFusion:
    def test_overlap_one_cycle(self):
        item = SereFusion(SereBool(A), SereBool(B))
        # last letter of a-match == first letter of b-match
        assert sorted(match_ends(item, trace("ab"), 0)) == [1]

    def test_fusion_of_sequences(self):
        item = parse_sere("{a ; b} : {b ; c}")
        assert sorted(match_ends(item, trace("a", "b", "c"), 0)) == [3]

    def test_fusion_requires_nonempty_sides(self):
        item = SereFusion(SereRepeat(SereBool(A), 0, None), SereBool(B))
        # left side must contribute at least one letter
        assert sorted(match_ends(item, trace("ab"), 0)) == [1]
        assert not match_ends(item, trace("b"), 0) - {1} - {1}


class TestOrAnd:
    def test_or(self):
        item = SereOr(SereBool(A), SereBool(B))
        assert match_ends(item, trace("b"), 0)

    def test_length_matching_and(self):
        item = SereAnd(parse_sere("a ; a"), parse_sere("true ; a"), True)
        assert sorted(match_ends(item, trace("a", "a"), 0)) == [2]

    def test_length_matching_and_rejects_unequal(self):
        item = SereAnd(SereBool(A), parse_sere("a ; b"), True)
        assert not match_ends(item, trace("a", "b"), 0)

    def test_non_length_matching_and(self):
        item = SereAnd(SereBool(A), parse_sere("a ; b"), False)
        # shorter operand matches a prefix; end = longer's end
        assert sorted(match_ends(item, trace("a", "b"), 0)) == [2]


class TestRepeat:
    def test_star_matches_all_prefixes(self):
        item = SereRepeat(SereBool(A), 0, None)
        assert sorted(match_ends(item, trace("a", "a"), 0)) == [0, 1, 2]

    def test_plus_needs_one(self):
        item = SereRepeat(SereBool(A), 1, None)
        assert sorted(match_ends(item, trace("a", "a"), 0)) == [1, 2]
        assert not match_ends(item, trace("b"), 0)

    def test_exact_count(self):
        item = SereRepeat(SereBool(A), 2, 2)
        assert sorted(match_ends(item, trace("a", "a", "a"), 0)) == [2]

    def test_range(self):
        item = SereRepeat(SereBool(A), 1, 2)
        assert sorted(match_ends(item, trace("a", "a", "a"), 0)) == [1, 2]

    def test_zero_repeat_matches_empty(self):
        item = SereRepeat(SereBool(A), 0, 0)
        assert sorted(match_ends(item, trace("b"), 0)) == [0]

    def test_nullable_body_terminates(self):
        inner = SereRepeat(SereBool(A), 0, None)
        item = SereRepeat(inner, 0, None)  # (a[*])[*] -- nullable body
        ends = match_ends(item, trace("a", "a"), 0)
        assert sorted(ends) == [0, 1, 2]

    def test_bounds_validation(self):
        with pytest.raises(Exception):
            SereRepeat(SereBool(A), 3, 1)


class TestGotoAndNonConsec:
    def test_goto_single(self):
        item = SereGoto(B, 1)
        assert sorted(match_ends(item, trace("a", "b"), 0)) == [2]

    def test_goto_ends_on_occurrence(self):
        item = SereGoto(B, 2)
        ends = match_ends(item, trace("", "b", "", "b", ""), 0)
        assert sorted(ends) == [4]

    def test_goto_range(self):
        item = SereGoto(B, 1, 2)
        ends = match_ends(item, trace("b", "b"), 0)
        assert sorted(ends) == [1, 2]

    def test_nonconsec_allows_tail(self):
        item = SereNonConsec(B, 1)
        ends = match_ends(item, trace("b", "", ""), 0)
        assert sorted(ends) == [1, 2, 3]

    def test_within(self):
        item = sere_within(parse_sere("a ; b"), parse_sere("c[*]"))
        assert not match_ends(item, trace("a", "b"), 0)
        both = [{"a": True, "c": True}, {"b": True, "c": True}]
        assert sorted(match_ends(item, both, 0)) == [2]


class TestAlive:
    def test_alive_mid_concat(self):
        matcher = Matcher(trace("a"))
        assert matcher.alive(parse_sere("a ; b"), 0)

    def test_dead_after_mismatch(self):
        matcher = Matcher(trace("b"))
        assert not matcher.alive(parse_sere("a ; b"), 0)

    def test_alive_at_trace_end(self):
        matcher = Matcher(trace())
        assert matcher.alive(SereBool(A), 0)

    def test_const_false_never_alive(self):
        matcher = Matcher(trace())
        assert not matcher.alive(SereBool(Const(False)), 0)

    def test_alive_in_repeat(self):
        matcher = Matcher(trace("a", "a"))
        assert matcher.alive(SereRepeat(SereBool(A), 3, 3), 0)

    def test_not_alive_when_bounded_repeat_exhausted(self):
        matcher = Matcher(trace("a", "a"))
        item = SereConcat((SereRepeat(SereBool(A), 1, 2), SereBool(B)))
        assert matcher.alive(item, 0)  # b could still come
        matcher2 = Matcher(trace("b", "b"))
        assert not matcher2.alive(item, 0)


class TestTightlyMatches:
    def test_whole_trace(self):
        assert tightly_matches(parse_sere("a ; b"), trace("a", "b"))
        assert not tightly_matches(parse_sere("a ; b"), trace("a", "b", "c"))

    def test_empty_trace_with_star(self):
        assert tightly_matches(SereRepeat(SereBool(A), 0, None), [])
