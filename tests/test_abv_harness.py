"""Tests for the runtime assertion-based verification harness."""

import pytest

from repro.psl import CoverMonitor, Verdict, build_monitor, parse_formula, parse_sere
from repro.abv import AbvHarness, CoverageCollector, FailureAction
from repro.sysc import Clock, ReportHandler, Signal, Simulator, ns


def direct(cls, *args, **kwargs):
    """Instantiate a monitor class directly, expecting the shim warning."""
    with pytest.warns(DeprecationWarning, match="direct Monitor construction"):
        return cls(*args, **kwargs)


def make_design():
    """A toggling design: p alternates, q mirrors p one cycle late."""
    sim = Simulator()
    clock = Clock("clk", ns(10), sim)
    p = Signal(False, "p", sim)
    q = Signal(False, "q", sim)

    def driver():
        while True:
            yield clock.posedge()
            q.write(p.read())
            p.write(not p.read())

    sim.thread(driver)
    return sim, clock, p, q


class TestSampling:
    def test_monitor_samples_every_cycle(self):
        sim, clock, p, q = make_design()
        harness = AbvHarness(sim, clock, lambda: {"p": p.read(), "q": q.read()})
        monitor = build_monitor(parse_formula("always (p || !p)"), "taut")
        harness.add_monitor(monitor)
        sim.run(ns(10) * 20)
        assert harness.cycles_observed >= 19
        assert monitor.verdict() is Verdict.HOLDS

    def test_delayed_copy_property_holds(self):
        sim, clock, p, q = make_design()
        harness = AbvHarness(sim, clock, lambda: {"p": p.read(), "q": q.read()})
        monitor = build_monitor(parse_formula("always {p} |=> {q}"), "follow")
        harness.add_monitor(monitor)
        sim.run(ns(10) * 30)
        assert monitor.verdict() is Verdict.HOLDS
        assert monitor.triggered > 5

    def test_failing_property_reported(self):
        sim, clock, p, q = make_design()
        handler = ReportHandler()
        harness = AbvHarness(
            sim, clock, lambda: {"p": p.read(), "q": q.read()}, handler
        )
        monitor = build_monitor(parse_formula("never p"), "never_p")
        harness.add_monitor(monitor, actions=[FailureAction.REPORT])
        sim.run(ns(10) * 10)
        assert monitor.verdict() is Verdict.FAILS
        assert handler.errors()
        assert handler.errors()[0].label == "never_p"

    def test_each_assertion_fires_once(self):
        sim, clock, p, q = make_design()
        harness = AbvHarness(sim, clock, lambda: {"p": p.read()})
        monitor = build_monitor(parse_formula("never p"), "never_p")
        harness.add_monitor(monitor)
        sim.run(ns(10) * 20)
        assert len(harness.reports.errors()) == 1


class CountingSignal(Signal):
    """A signal that counts its write() calls."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.write_calls = 0

    def write(self, value):
        self.write_calls += 1
        super().write(value)


class TestWarnAction:
    """The paper's third failure action: 'send a warning signal to
    other modules (if required)'."""

    def test_warn_without_signal_is_rejected(self):
        sim, clock, p, q = make_design()
        harness = AbvHarness(sim, clock, lambda: {"p": p.read()})
        monitor = build_monitor(parse_formula("never p"), "never_p")
        with pytest.raises(ValueError, match="warning signal"):
            harness.add_monitor(monitor, actions=[FailureAction.WARN])

    def test_warn_pulses_the_signal_on_failure(self):
        sim, clock, p, q = make_design()
        warn = Signal(False, "warn", sim)
        harness = AbvHarness(sim, clock, lambda: {"p": p.read()})
        monitor = build_monitor(parse_formula("never p"), "never_p")
        harness.add_monitor(
            monitor, actions=[FailureAction.WARN], warning_signal=warn
        )
        sim.run(ns(10) * 20)
        assert monitor.verdict() is Verdict.FAILS
        assert warn.read() is True

    def test_warn_signal_is_observable_by_other_modules(self):
        """Another process (the 'other module') reacts to the pulse."""
        sim, clock, p, q = make_design()
        warn = Signal(False, "warn", sim)
        observed = []

        def watcher():
            yield warn.posedge_event
            observed.append(sim.time)

        sim.thread(watcher)
        harness = AbvHarness(sim, clock, lambda: {"p": p.read()})
        monitor = build_monitor(parse_formula("never p"), "never_p")
        harness.add_monitor(
            monitor, actions=[FailureAction.WARN], warning_signal=warn
        )
        sim.run(ns(10) * 20)
        assert observed, "the warning pulse never reached the watcher"

    def test_warn_fires_exactly_once(self):
        """The failure actions run once per assertion even though the
        property keeps failing every subsequent cycle."""
        sim, clock, p, q = make_design()
        warn = CountingSignal(False, "warn", sim)
        harness = AbvHarness(sim, clock, lambda: {"p": p.read()})
        monitor = build_monitor(parse_formula("never p"), "never_p")
        binding = harness.add_monitor(
            monitor, actions=[FailureAction.WARN], warning_signal=warn
        )
        sim.run(ns(10) * 40)
        assert binding.fired is True
        assert warn.write_calls == 1

    def test_warn_combines_with_report(self):
        sim, clock, p, q = make_design()
        warn = Signal(False, "warn", sim)
        handler = ReportHandler()
        harness = AbvHarness(sim, clock, lambda: {"p": p.read()}, handler)
        monitor = build_monitor(parse_formula("never p"), "never_p")
        harness.add_monitor(
            monitor,
            actions=[FailureAction.REPORT, FailureAction.WARN],
            warning_signal=warn,
        )
        sim.run(ns(10) * 20)
        assert warn.read() is True
        assert len(handler.errors()) == 1

    def test_warn_signal_untouched_while_assertions_hold(self):
        sim, clock, p, q = make_design()
        warn = CountingSignal(False, "warn", sim)
        harness = AbvHarness(sim, clock, lambda: {"p": p.read()})
        monitor = build_monitor(parse_formula("always (p || !p)"), "taut")
        harness.add_monitor(
            monitor, actions=[FailureAction.WARN], warning_signal=warn
        )
        sim.run(ns(10) * 20)
        assert warn.write_calls == 0
        assert warn.read() is False


class TestFailureActions:
    def test_stop_action_halts_simulation(self):
        sim, clock, p, q = make_design()
        harness = AbvHarness(sim, clock, lambda: {"p": p.read()})
        monitor = build_monitor(parse_formula("never p"), "never_p")
        harness.add_monitor(
            monitor, actions=[FailureAction.REPORT, FailureAction.STOP]
        )
        sim.run(ns(10) * 100)
        assert sim.stopped
        assert "never_p" in (sim.stop_reason or "")
        assert sim.time < ns(10) * 100

    def test_warning_signal_raised(self):
        sim, clock, p, q = make_design()
        warn = Signal(False, "warn", sim)
        harness = AbvHarness(sim, clock, lambda: {"p": p.read()})
        monitor = build_monitor(parse_formula("never p"), "never_p")
        harness.add_monitor(
            monitor, actions=[FailureAction.WARN], warning_signal=warn
        )
        sim.run(ns(10) * 10)
        assert warn.read() is True

    def test_warn_without_signal_rejected(self):
        sim, clock, p, q = make_design()
        harness = AbvHarness(sim, clock, lambda: {"p": p.read()})
        monitor = build_monitor(parse_formula("never p"), "never_p")
        with pytest.raises(ValueError):
            harness.add_monitor(monitor, actions=[FailureAction.WARN])

    def test_simulation_continues_without_stop_action(self):
        sim, clock, p, q = make_design()
        harness = AbvHarness(sim, clock, lambda: {"p": p.read()})
        monitor = build_monitor(parse_formula("never p"), "never_p")
        harness.add_monitor(monitor, actions=[FailureAction.REPORT])
        sim.run(ns(10) * 50)
        assert not sim.stopped
        assert harness.cycles_observed >= 49


class TestFinish:
    def test_uncovered_cover_warns(self):
        sim, clock, p, q = make_design()
        harness = AbvHarness(sim, clock, lambda: {"p": p.read(), "z": False})
        cover = direct(CoverMonitor, parse_sere("z"), "cover_z")
        harness.add_monitor(cover)
        sim.run(ns(10) * 10)
        harness.finish()
        warnings = [
            r for r in harness.reports.reports if r.severity.name == "WARNING"
        ]
        assert any("coverage" in w.message for w in warnings)

    def test_pending_strong_obligation_warns(self):
        sim, clock, p, q = make_design()
        harness = AbvHarness(sim, clock, lambda: {"z": False})
        monitor = build_monitor(parse_formula("eventually! z"), "ev_z")
        harness.add_monitor(monitor)
        sim.run(ns(10) * 10)
        harness.finish()
        warnings = [
            r for r in harness.reports.reports if r.severity.name == "WARNING"
        ]
        assert any("pending" in w.message for w in warnings)

    def test_summary_and_flags(self):
        sim, clock, p, q = make_design()
        harness = AbvHarness(sim, clock, lambda: {"p": p.read()})
        good = build_monitor(parse_formula("always (p || !p)"), "ok")
        bad = build_monitor(parse_formula("never p"), "bad")
        harness.add_monitors([good, bad])
        sim.run(ns(10) * 10)
        assert not harness.all_passing
        assert [b.monitor.name for b in harness.failed] == ["bad"]
        assert "2 assertions" in harness.summary()


class TestCoverageCollector:
    def test_report_includes_hits_and_vacuous(self):
        sim, clock, p, q = make_design()
        harness = AbvHarness(
            sim, clock, lambda: {"p": p.read(), "q": q.read(), "z": False}
        )
        follow = build_monitor(parse_formula("always {p} |=> {q}"), "follow")
        ghost = build_monitor(parse_formula("always {z} |=> {q}"), "ghost")
        cover = direct(CoverMonitor, parse_sere("p ; q"), "cov_pq")
        harness.add_monitors([follow, ghost, cover])
        sim.run(ns(10) * 30)
        collector = CoverageCollector([follow, ghost, cover])
        text = collector.report()
        assert "cov_pq" in text
        assert "ghost" in collector.never_triggered
        assert "follow" not in collector.never_triggered
        assert collector.uncovered == []
