"""Scoreboard divergence paths: faults must produce mismatches, clean
designs must not, and everything must reproduce from its seed."""

import pytest

from repro.models.master_slave.scenario import MsReferenceAdapter, MsScenarioSystem
from repro.models.pci.scenario import PciReferenceAdapter, PciScenarioSystem
from repro.scenarios.scoreboard import (
    DivergenceKind,
    FaultPlan,
    Mismatch,
    Scoreboard,
)
from repro.scenarios.sequences import SequenceItem, sequence_for_profile
from repro.sysc.bus import BusMode, BusStatus, Transaction

SEQUENCE = sequence_for_profile("default")
CYCLES = 300


def ms_system(seed=7, fault=None):
    system = MsScenarioSystem(1, 2, 2, SEQUENCE, seed=seed, fault=fault)
    system.run_cycles(CYCLES)
    return system


def pci_system(seed=7, fault=None):
    system = PciScenarioSystem(2, 2, SEQUENCE, seed=seed, fault=fault)
    system.run_cycles(CYCLES)
    return system


class TestCleanDesigns:
    def test_master_slave_matches_asm_reference(self):
        report = ms_system().check()
        assert report.ok, report.summary()
        assert report.matches > 20
        assert report.words_checked > report.matches  # blocking bursts move >1 word
        assert report.replayed_calls > report.matches * 4

    def test_pci_matches_asm_reference(self):
        system = pci_system()
        report = system.check()
        assert report.ok, report.summary()
        assert report.matches > 20
        # STOP#-retried attempts never produce records, only retries
        assert sum(m.completed for m in system.masters) == len(system.records())

    def test_transactions_carry_correlation_fields(self):
        for txn, _ in ms_system().records():
            assert txn.txn_id >= 0
            assert txn.end_cycle >= txn.start_cycle >= 0
            assert txn.latency >= 0
            assert txn.status is BusStatus.OK
        ids = [txn.txn_id for txn, _ in ms_system().records()]
        assert len(ids) == len(set(ids))  # unique per system


class TestInjectedFaults:
    def test_ms_slave_corruption_is_detected(self):
        report = ms_system(fault=FaultPlan("corrupt-read", unit=0, nth=3)).check()
        assert not report.ok
        kinds = {m.kind for m in report.mismatches}
        assert DivergenceKind.DATA in kinds
        first = next(m for m in report.mismatches if m.kind is DivergenceKind.DATA)
        assert first.expected and first.observed and first.expected != first.observed
        assert "txn#" in first.describe()

    def test_ms_dropped_transaction_is_detected(self):
        report = ms_system(fault=FaultPlan("drop", unit=1, nth=2)).check()
        assert not report.ok
        kinds = {m.kind for m in report.mismatches}
        assert DivergenceKind.DROPPED in kinds
        dropped = next(
            m for m in report.mismatches if m.kind is DivergenceKind.DROPPED
        )
        assert dropped.master == "master1"

    def test_pci_corruption_is_detected(self):
        report = pci_system(fault=FaultPlan("corrupt-read", unit=0, nth=2)).check()
        assert not report.ok
        assert {m.kind for m in report.mismatches} == {DivergenceKind.DATA}

    def test_pci_dropped_transaction_is_detected(self):
        report = pci_system(fault=FaultPlan("drop", unit=1, nth=1)).check()
        assert not report.ok
        assert {m.kind for m in report.mismatches} == {DivergenceKind.DROPPED}

    def test_fault_reports_reproduce_from_seed(self):
        fault = FaultPlan("corrupt-read", unit=0, nth=3)
        first = ms_system(fault=fault).check("x")
        second = ms_system(fault=fault).check("x")
        assert not first.ok
        assert first.digest() == second.digest()
        assert [m.describe() for m in first.mismatches] == [
            m.describe() for m in second.mismatches
        ]

    def test_fault_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan("meltdown")
        with pytest.raises(ValueError):
            FaultPlan("drop", nth=0)


class TestProtocolDivergence:
    def _observe(self, adapter, txn):
        adapter.begin()
        item = SequenceItem(target=0, is_write=txn.is_write, burst=1, address_offset=0)
        return list(adapter.observe(txn, item))

    def test_ms_rejects_transaction_to_unmapped_slave(self):
        adapter = MsReferenceAdapter(1, 1, 2)
        txn = Transaction(
            master="master0", address=5 * 0x100, is_write=True, data=(1, 2),
            mode=BusMode.BLOCKING, start_cycle=0, end_cycle=3, txn_id=0,
        )
        mismatches = self._observe(adapter, txn)
        assert [m.kind for m in mismatches] == [DivergenceKind.PROTOCOL]
        assert "rejected" in mismatches[0].observed
        assert mismatches[0].reference_state  # divergence context present

    def test_ms_rejects_short_blocking_burst(self):
        # blocking master0 must move BLOCKING_BURST words; a 1-word
        # record cannot replay (arbiter.release finds the master busy)
        adapter = MsReferenceAdapter(1, 1, 2)
        txn = Transaction(
            master="master0", address=0, is_write=True, data=(1,),
            mode=BusMode.BLOCKING, start_cycle=0, end_cycle=2, txn_id=0,
        )
        mismatches = self._observe(adapter, txn)
        assert [m.kind for m in mismatches] == [DivergenceKind.PROTOCOL]

    def test_ms_recovers_after_divergence(self):
        # a bad transaction must not poison checking of later good ones
        adapter = MsReferenceAdapter(1, 1, 2)
        bad = Transaction(
            master="master0", address=5 * 0x100, is_write=True, data=(1, 2),
            mode=BusMode.BLOCKING, start_cycle=0, end_cycle=3, txn_id=0,
        )
        good = Transaction(
            master="master1", address=0x100, is_write=True, data=(9,),
            mode=BusMode.NON_BLOCKING, start_cycle=4, end_cycle=6, txn_id=1,
        )
        item = SequenceItem(target=1, is_write=True, burst=1, address_offset=0,
                            payload=(9,))
        report = Scoreboard(adapter, "recovery").check(
            [(bad, item), (good, item)]
        )
        assert report.matches == 1
        assert len(report.mismatches) == 1

    def test_pci_rejects_unmapped_target(self):
        adapter = PciReferenceAdapter(1, 1)
        txn = Transaction(
            master="master0", address=0x5000, is_write=False, data=(0,),
            mode=BusMode.BLOCKING, start_cycle=0, end_cycle=9, txn_id=0,
        )
        adapter.begin()
        item = SequenceItem(target=4, is_write=False, burst=1, address_offset=0)
        mismatches = list(adapter.observe(txn, item))
        assert [m.kind for m in mismatches] == [DivergenceKind.PROTOCOL]
        assert "rejected" in mismatches[0].observed


class TestDeterminism:
    def test_same_seed_byte_identical_stream(self):
        assert (
            ms_system(seed=99).transaction_stream()
            == ms_system(seed=99).transaction_stream()
        )
        assert (
            pci_system(seed=99).transaction_stream()
            == pci_system(seed=99).transaction_stream()
        )

    def test_different_seed_different_stream(self):
        assert (
            ms_system(seed=1).transaction_stream()
            != ms_system(seed=2).transaction_stream()
        )

    def test_verdict_digest_is_stable(self):
        assert ms_system(seed=5).check("s").digest() == ms_system(seed=5).check("s").digest()
