"""The coverage-driven feedback loop."""

import pytest

from repro.abv.coverage import CoverageCollector
from repro.explorer import ExplorationConfig, explore
from repro.models.master_slave import ms_cover_properties
from repro.models.master_slave.scenario import MsScenarioSystem
from repro.psl import build_monitor
from repro.scenarios.coverage_driven import (
    BinCoverage,
    CoverageDrivenLoop,
    CoverageFeedback,
    StimulusBin,
    bin_universe,
    burst_bucket,
)
from repro.scenarios.random_ import ScenarioRng
from repro.scenarios.sequences import RandomTraffic, StimulusContext, TrafficProfile
from repro.sysc.bus import Transaction


def txn(address, is_write, words):
    return Transaction(
        master="master0", address=address, is_write=is_write,
        data=tuple(range(words)),
    )


class TestBins:
    def test_burst_bucket_mapping(self):
        assert burst_bucket(1) == "single"
        assert burst_bucket(2) == burst_bucket(3) == "short"
        assert burst_bucket(4) == burst_bucket(64) == "long"

    def test_burst_bucket_rejects_invalid_lengths(self):
        # a burst below one word used to fall through to "long" and
        # misclassify into the largest bucket; now it raises
        with pytest.raises(ValueError):
            burst_bucket(0)
        with pytest.raises(ValueError):
            burst_bucket(-3)

    def test_universe_respects_burst_range(self):
        ctx = StimulusContext(n_targets=2, min_burst=1, max_burst=2)
        buckets = {b.bucket for b in bin_universe(ctx)}
        assert buckets == {"single", "short"}
        assert len(bin_universe(ctx)) == 2 * 2 * 2

    def test_record_and_unhit(self):
        ctx = StimulusContext(n_targets=2, min_burst=1, max_burst=2)
        coverage = BinCoverage(ctx)
        coverage.record(txn(0x000, True, 1))
        coverage.record(txn(0x100, False, 2))
        assert StimulusBin(0, True, "single") not in coverage.unhit()
        assert StimulusBin(1, False, "short") not in coverage.unhit()
        assert len(coverage.unhit()) == 6
        assert 0 < coverage.ratio < 1
        assert "unhit" in coverage.summary()

    def test_record_with_base_rebases_pci_pages(self):
        ctx = StimulusContext(n_targets=2, min_burst=1, max_burst=2)
        coverage = BinCoverage(ctx)
        coverage.record(txn(0x1000, True, 1), window=0x1000, base=1)
        assert StimulusBin(0, True, "single") in coverage.hits

    def test_off_universe_transactions_are_counted_not_binned(self):
        ctx = StimulusContext(n_targets=2, min_burst=1, max_burst=2)
        coverage = BinCoverage(ctx)
        # below the universe (PCI page 0 with base=1 -> target -1) and
        # above it (target 7): neither may land in hits, which would
        # inflate new-bin accounting and never match bin_universe
        coverage.record(txn(0x000, True, 1), window=0x1000, base=1)
        coverage.record(txn(0x700, False, 2), window=0x100, base=0)
        assert coverage.hits == {}
        assert coverage.off_universe == 2
        assert "2 off-universe transaction(s)" in coverage.summary()
        # on-universe traffic still bins normally alongside
        coverage.record(txn(0x100, True, 1), window=0x100, base=0)
        assert StimulusBin(1, True, "single") in coverage.hits
        assert coverage.off_universe == 2


class TestFeedback:
    def setup_method(self):
        self.ctx = StimulusContext(n_targets=3, min_burst=1, max_burst=4)
        self.feedback = CoverageFeedback(self.ctx, TrafficProfile())

    def test_unhit_targets_get_boosted(self):
        # hit everything on target 0, nothing on targets 1 and 2
        for words in (1, 2, 4):
            self.feedback.observe_transactions(
                [txn(0x000, True, words), txn(0x000, False, words)]
            )
        profile = self.feedback.next_profile()
        assert profile.target_weights
        assert profile.target_weights[1] > profile.target_weights[0]
        assert profile.target_weights[2] > profile.target_weights[0]

    def test_unhit_long_bursts_select_long_profile(self):
        self.feedback.observe_transactions(
            [txn(t * 0x100, w, 1) for t in range(3) for w in (True, False)]
        )
        profile = self.feedback.next_profile()
        assert profile.burst.kind == "geometric"
        assert profile.burst.p > 0.5  # the "long" shape

    def test_starved_monitors_shrink_idle(self):
        cover = build_monitor(ms_cover_properties(1, 1)[0])
        collector = CoverageCollector([cover])  # never stepped: 0 hits
        self.feedback.observe_monitors(collector)
        assert self.feedback.starved_monitors
        profile = self.feedback.next_profile()
        assert profile.idle_max <= TrafficProfile().idle_max // 2

    def test_fsm_residue_applies_pressure(self, counter_model):
        result = explore(counter_model, ExplorationConfig())
        from repro.explorer.sim_coverage import SimCoverage

        self.feedback.observe_fsm(SimCoverage(result.fsm))  # nothing visited
        profile = self.feedback.next_profile()
        assert profile.idle_max <= TrafficProfile().idle_max // 2
        assert "FSM transition coverage" in self.feedback.report()

    def test_empty_fsm_is_vacuously_covered_no_pressure(self):
        # an empty FSM used to read as 0.0 coverage and trigger the
        # pressure bias on a design with nothing left to cover
        from repro.explorer.fsm import Fsm
        from repro.explorer.sim_coverage import SimCoverage

        # saturate the bins so only the FSM signal could apply pressure
        for words in (1, 2, 4):
            for target in range(3):
                for is_write in (True, False):
                    self.feedback.observe_transactions(
                        [txn(target * 0x100, is_write, words)]
                    )
        self.feedback.observe_fsm(SimCoverage(Fsm("empty")))
        assert self.feedback.fsm_transition_ratio == 1.0
        profile = self.feedback.next_profile()
        assert profile.idle_max == TrafficProfile().idle_max

    def test_boost_is_once_per_target_not_per_bin(self):
        # target 0 fully hit; targets 1 and 2 each have *every* bin
        # unhit (8 bins apiece) -- the boost must not compound per bin
        for words in (1, 2, 4):
            self.feedback.observe_transactions(
                [txn(0x000, True, words), txn(0x000, False, words)]
            )
        profile = self.feedback.next_profile()
        assert profile.target_weights == (1.0, 3.0, 3.0)


class TestClosedLoop:
    def test_loop_saturates_ms_stimulus_bins(self):
        ctx = StimulusContext(n_targets=2, min_burst=1, max_burst=2)
        feedback = CoverageFeedback(ctx, TrafficProfile(idle_min=0, idle_max=1))

        def run_batch(profile, round_index):
            system = MsScenarioSystem(
                1, 1, 2, RandomTraffic(profile), seed=1000 + round_index
            )
            system.run_cycles(200)
            return [txn for txn, _ in system.records()]

        loop = CoverageDrivenLoop(feedback, run_batch)
        rounds = loop.run(max_rounds=4)
        assert rounds
        assert rounds[0].new_bins > 0
        ratios = [r.ratio for r in rounds]
        assert ratios == sorted(ratios)  # coverage never regresses
        assert feedback.bins.ratio == 1.0, loop.summary()

    def test_loop_is_seed_deterministic(self):
        ctx = StimulusContext(n_targets=2, min_burst=1, max_burst=2)

        def outcome():
            feedback = CoverageFeedback(ctx, TrafficProfile())

            def run_batch(profile, round_index):
                system = MsScenarioSystem(
                    1, 1, 2, RandomTraffic(profile), seed=50 + round_index
                )
                system.run_cycles(150)
                return [txn for txn, _ in system.records()]

            loop = CoverageDrivenLoop(feedback, run_batch)
            loop.run(max_rounds=2)
            return loop.summary()

        assert outcome() == outcome()
