"""The paper's *modified* sequence diagram notation.

Section 2.1.1 extends UML sequence diagrams so that transaction-level
properties can be captured precisely enough to generate PSL:

* **Clocks** -- "we use the operator to specify the clock that activates
  the current action",
* **Number of cycles** -- ``Mtd[5]()``: when the method starts relative
  to the previous action,
* **Temporal operators** -- ``A`` (always), ``E`` (eventually), ``U``
  (until a condition holds), mapping to PSL's second layer,
* **Sequence operations** -- ordering hints such as ``next``/``prev``,
* **Text output** -- "a message that is displayed in case the method
  fails ... to track the progress of the assertion based verification",
* **Method duration** -- the ``$`` operator: "certain methods are
  supposed to execute for a certain number of cycles (e.g., reading
  for memory may take 4 cycles)".

Messages are observed through boolean expressions over design signals
(``observe``); by default a message ``target.method()`` is observed as
the signal ``<target>.<method>`` being true -- matching how the ASM
translation exposes one boolean per action execution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from .errors import DiagramValidationError, UmlError


class TemporalOp(enum.Enum):
    """The paper's temporal annotations on a message."""

    NONE = "none"
    ALWAYS = "A"
    EVENTUALLY = "E"
    UNTIL = "U"


class SequenceOp(enum.Enum):
    """The paper's sequencing hints between consecutive messages."""

    NEXT = "next"
    PREV = "prev"
    NONE = "none"


@dataclass(frozen=True)
class Lifeline:
    """A participant: an instance (or class role) drawn at the top."""

    name: str
    class_name: str = ""
    doc: str = ""

    def __str__(self) -> str:
        if self.class_name:
            return f"{self.name}:{self.class_name}"
        return self.name


@dataclass(frozen=True)
class Message:
    """One arrow of the diagram, with the paper's annotations.

    ``start_offset`` is the ``[n]`` cycle annotation: the method starts
    ``n`` cycles after the previous message (0 = same cycle, fusion);
    ``duration`` is the ``$n`` annotation (the method executes for n
    consecutive cycles).
    """

    source: str
    target: str
    method: str
    arguments: Tuple[str, ...] = ()
    clock: Optional[str] = None
    start_offset: int = 1
    duration: int = 1
    temporal: TemporalOp = TemporalOp.NONE
    until_condition: Optional[str] = None
    sequence_op: SequenceOp = SequenceOp.NONE
    text_output: str = ""
    #: boolean observation expression; defaults to "<target>.<method>"
    observe: Optional[str] = None

    @property
    def observation(self) -> str:
        return self.observe if self.observe is not None else f"{self.target}.{self.method}"

    def label(self) -> str:
        pieces = [f"{self.source} -> {self.target}: {self.method}"]
        if self.start_offset != 1:
            pieces.append(f"[{self.start_offset}]")
        pieces.append(f"({', '.join(self.arguments)})")
        if self.duration != 1:
            pieces.append(f" ${self.duration}")
        if self.temporal is not TemporalOp.NONE:
            suffix = f" {self.temporal.value}"
            if self.temporal is TemporalOp.UNTIL and self.until_condition:
                suffix += f"({self.until_condition})"
            pieces.append(suffix)
        if self.clock:
            pieces.append(f" @{self.clock}")
        return "".join(pieces)

    def __str__(self) -> str:
        return self.label()


class SequenceDiagram:
    """An ordered list of annotated messages between lifelines."""

    def __init__(self, name: str, clock: Optional[str] = None):
        self.name = name
        #: diagram-level default clock (messages may override)
        self.clock = clock
        self.lifelines: Dict[str, Lifeline] = {}
        self.messages: List[Message] = []

    # -- construction ---------------------------------------------------------

    def add_lifeline(self, name: str, class_name: str = "", doc: str = "") -> Lifeline:
        if name in self.lifelines:
            raise UmlError(f"duplicate lifeline {name!r}")
        lifeline = Lifeline(name, class_name, doc)
        self.lifelines[name] = lifeline
        return lifeline

    def add_message(self, message: Message) -> Message:
        self.messages.append(message)
        return message

    def message(
        self,
        source: str,
        target: str,
        method: str,
        **annotations,
    ) -> Message:
        """Fluent helper: ``d.message("bus", "arbiter", "notify", start_offset=1)``."""
        return self.add_message(Message(source, target, method, **annotations))

    # -- validation ----------------------------------------------------------------

    def validate(self) -> List[str]:
        """Return findings; empty means the diagram is well-formed."""
        findings: List[str] = []
        if not self.messages:
            findings.append("diagram has no messages")
        for position, message in enumerate(self.messages):
            where = f"message #{position} ({message.method})"
            for endpoint in (message.source, message.target):
                if endpoint not in self.lifelines:
                    findings.append(f"{where}: unknown lifeline {endpoint!r}")
            if message.start_offset < 0:
                findings.append(f"{where}: negative start offset")
            if message.duration < 1:
                findings.append(f"{where}: duration must be >= 1 cycle")
            if message.temporal is TemporalOp.UNTIL and not message.until_condition:
                findings.append(f"{where}: U operator needs a condition")
            if (
                message.temporal is not TemporalOp.UNTIL
                and message.until_condition is not None
            ):
                findings.append(f"{where}: condition given without U operator")
            if position == 0 and message.temporal is TemporalOp.EVENTUALLY:
                findings.append(
                    f"{where}: the triggering message cannot be 'eventually'"
                )
        if self.messages and self.messages[0].start_offset not in (0, 1):
            findings.append("the triggering message cannot carry a start offset")
        return findings

    def check(self) -> "SequenceDiagram":
        findings = self.validate()
        if findings:
            raise DiagramValidationError(findings)
        return self

    # -- updates (the Figure 1 loop: "Updates Sequence Diagram") ----------------------

    def replace_message(self, index: int, **changes) -> Message:
        """Functional update used when a property fails model checking
        and the diagram is refined (the feedback arrow of Figure 1)."""
        self.messages[index] = replace(self.messages[index], **changes)
        return self.messages[index]

    def signals(self) -> List[str]:
        """All observation expressions, in order (for binding checks)."""
        return [m.observation for m in self.messages]

    def __len__(self) -> int:
        return len(self.messages)

    def __str__(self) -> str:
        lines = [f"sequence diagram {self.name}" + (f" @ {self.clock}" if self.clock else "")]
        lines.extend(f"  participant {l}" for l in self.lifelines.values())
        lines.extend(f"  {m}" for m in self.messages)
        return "\n".join(lines)


def figure2_diagram() -> SequenceDiagram:
    """The paper's Figure 2, reconstructed.

    "if a bus sends a new request, then in the next cycle the arbiter
    will be notified and will make the arbitration.  In the third
    cycle, the Master starts sending.  The bus is released in the 4
    cycle and a notification will be sent, eventually, by the slave to
    the bus who will forward it in the next cycle to the Master."
    """
    diagram = SequenceDiagram("figure2_bus_request", clock="clk")
    for name, cls in (
        ("master", "Master"),
        ("bus", "Bus"),
        ("arbiter", "Arbiter"),
        ("slave", "Slave"),
    ):
        diagram.add_lifeline(name, cls)
    diagram.message("master", "bus", "new_request")
    diagram.message(
        "bus", "arbiter", "notify", start_offset=1, sequence_op=SequenceOp.NEXT
    )
    diagram.message("arbiter", "arbiter", "arbitrate", start_offset=0)
    diagram.message("master", "bus", "send", start_offset=1)
    diagram.message(
        "bus",
        "bus",
        "release",
        start_offset=1,
        text_output="bus must be released in the fourth cycle",
    )
    diagram.message(
        "slave", "bus", "notify_done", temporal=TemporalOp.EVENTUALLY
    )
    diagram.message(
        "bus",
        "master",
        "forward_notification",
        start_offset=1,
        sequence_op=SequenceOp.NEXT,
        text_output="notification must be forwarded to the master",
    )
    return diagram.check()
