"""Use case diagrams (the lightweight top of the UML level)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .errors import UmlError


@dataclass(frozen=True)
class Actor:
    """An external actor (e.g. a test bench, a host CPU)."""

    name: str
    doc: str = ""


@dataclass
class UseCase:
    """One use case bubble with its participating actors."""

    name: str
    actors: List[str] = field(default_factory=list)
    includes: List[str] = field(default_factory=list)
    extends: List[str] = field(default_factory=list)
    doc: str = ""


class UseCaseDiagram:
    """Actors, use cases and their relationships."""

    def __init__(self, name: str):
        self.name = name
        self.actors: Dict[str, Actor] = {}
        self.use_cases: Dict[str, UseCase] = {}

    def add_actor(self, actor: Actor) -> Actor:
        if actor.name in self.actors:
            raise UmlError(f"duplicate actor {actor.name!r}")
        self.actors[actor.name] = actor
        return actor

    def add_use_case(self, use_case: UseCase) -> UseCase:
        if use_case.name in self.use_cases:
            raise UmlError(f"duplicate use case {use_case.name!r}")
        for actor in use_case.actors:
            if actor not in self.actors:
                raise UmlError(
                    f"use case {use_case.name!r} references unknown actor {actor!r}"
                )
        self.use_cases[use_case.name] = use_case
        return use_case

    def validate(self) -> List[str]:
        findings = []
        known = set(self.use_cases)
        for use_case in self.use_cases.values():
            for ref in list(use_case.includes) + list(use_case.extends):
                if ref not in known:
                    findings.append(
                        f"use case {use_case.name!r} references unknown {ref!r}"
                    )
            if not use_case.actors:
                findings.append(f"use case {use_case.name!r} has no actors")
        return findings

    def __str__(self) -> str:
        lines = [f"use case diagram {self.name}"]
        lines.extend(f"actor {a}" for a in self.actors)
        for use_case in self.use_cases.values():
            lines.append(f"({use_case.name}) <- {', '.join(use_case.actors)}")
        return "\n".join(lines)
