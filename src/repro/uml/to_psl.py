"""Sequence diagram -> PSL property extraction.

"These [properties] are extracted from the UML sequence diagram and
encoded in the PSL syntax" (paper, Section 2).  The mapping:

* the **first message** is the trigger; its observation (repeated for
  its ``$`` duration) forms the antecedent SERE,
* every following message contributes to the consequent SERE:

  - ``start_offset == 0``  -> fused with the previous step (same cycle),
  - ``start_offset == k``  -> ``true[*k-1]`` padding then the step
    (concatenation itself advances one cycle),
  - ``duration == d``      -> the observation repeats ``d`` cycles,
  - ``E`` (eventually)     -> goto repetition ``obs[->1]`` (skip until
    it happens),
  - ``U cond``             -> ``{obs[*] ; cond}`` (observation holds
    until the condition's cycle),
  - ``A`` (always)         -> a separate conjunct
    ``always (trigger -> obs)`` (an invariant, not a chain step),

* the property is ``always {antecedent} |=> {consequent}``, the
  diagram's text outputs join into the PSL ``report`` string, and a
  diagram clock becomes an ``@ rose(clock)`` wrapper when requested.

Because UML "considers only classes" while "PSL was defined for real
instances" (Section 2.1.1), :func:`instantiate` rewrites class-level
observations onto concrete instance names -- the paper's "when mapping
to ASM the UML sequence diagram needs to be instantiated according to
the design objects".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..psl.ast_nodes import (
    Const,
    FlAlways,
    FlAnd,
    FlClocked,
    FlSere,
    FlSuffixImpl,
    Formula,
    Func,
    Property,
    Sere,
    SereBool,
    SereConcat,
    SereFusion,
    SereGoto,
    SereRepeat,
    Var,
)
from ..psl.parser import parse_bool
from .errors import MappingError
from .sequence_diagram import Message, SequenceDiagram, TemporalOp

_TRUE_STEP = SereBool(Const(True))


def _observation(message: Message):
    """Parse the message's observation expression (identifier-friendly)."""
    text = message.observation
    try:
        return parse_bool(text)
    except Exception as error:  # pragma: no cover - defensive
        raise MappingError(
            f"cannot parse observation {text!r} of message {message.method!r}: {error}"
        ) from error


def _step_sere(message: Message) -> Sere:
    """The SERE fragment observing one message (duration included)."""
    observation = _observation(message)
    if message.temporal is TemporalOp.EVENTUALLY:
        step: Sere = SereGoto(observation, 1)
        if message.duration > 1:
            step = SereFusion(
                step, SereRepeat(SereBool(observation), message.duration, message.duration)
            )
        return step
    if message.temporal is TemporalOp.UNTIL:
        condition = parse_bool(message.until_condition or "true")
        return SereConcat(
            (
                SereRepeat(SereBool(observation), 0, None),
                SereBool(condition),
            )
        )
    if message.duration > 1:
        return SereRepeat(SereBool(observation), message.duration, message.duration)
    return SereBool(observation)


def sequence_to_property(
    diagram: SequenceDiagram,
    name: Optional[str] = None,
    apply_clock: bool = False,
) -> Property:
    """Compile a validated diagram into one PSL :class:`Property`."""
    findings = diagram.validate()
    if findings:
        raise MappingError("; ".join(findings))

    messages = list(diagram.messages)
    trigger, rest = messages[0], messages[1:]
    if trigger.temporal is TemporalOp.UNTIL:
        raise MappingError("the triggering message cannot carry U")

    antecedent = _step_sere(trigger)

    invariants: List[Message] = [
        m for m in rest if m.temporal is TemporalOp.ALWAYS
    ]
    chain = [m for m in rest if m.temporal is not TemporalOp.ALWAYS]

    consequent = _build_chain(chain)
    formula: Formula
    if consequent is not None:
        formula = FlAlways(
            FlSuffixImpl(antecedent, FlSere(consequent), overlapping=False)
        )
    else:
        # A trigger-only diagram degenerates to coverage of the trigger.
        formula = FlAlways(FlSere(antecedent))

    for message in invariants:
        invariant = FlAlways(
            FlSuffixImpl(
                antecedent, FlSere(SereBool(_observation(message))), overlapping=False
            )
        )
        formula = FlAnd(formula, invariant)

    if apply_clock and diagram.clock:
        formula = FlClocked(formula, Func("rose", (Var(diagram.clock),)))

    report = "; ".join(m.text_output for m in messages if m.text_output)
    return Property(
        name or diagram.name,
        formula,
        report=report,
    )


def _build_chain(chain: List[Message]) -> Optional[Sere]:
    if not chain:
        return None
    result: Optional[Sere] = None
    for message in chain:
        step = _step_sere(message)
        if result is None:
            # The |=> operator already advances one cycle; extra offset
            # beyond 1 becomes padding before the first step.
            padding = message.start_offset - 1
            if padding > 0:
                result = SereConcat(
                    (SereRepeat(_TRUE_STEP, padding, padding), step)
                )
            elif message.start_offset == 0:
                raise MappingError(
                    "the first consequent message cannot be fused with the "
                    "trigger under |=>; give it start_offset >= 1"
                )
            else:
                result = step
            continue
        if message.start_offset == 0:
            result = SereFusion(result, step)
        else:
            padding = message.start_offset - 1
            parts: Tuple[Sere, ...]
            if padding > 0:
                parts = (result, SereRepeat(_TRUE_STEP, padding, padding), step)
            else:
                parts = (result, step)
            result = SereConcat(parts)
    return result


def instantiate(
    diagram: SequenceDiagram, binding: Dict[str, str], name: Optional[str] = None
) -> SequenceDiagram:
    """Rewrite lifeline (class-role) names onto concrete instance names.

    ``binding`` maps lifeline name -> instance name, e.g. ``{"master":
    "master0"}`` ("we need to specify that the notification must be to
    the original master and not to all the masters").
    """
    renamed = SequenceDiagram(
        name or f"{diagram.name}@{'_'.join(binding.values())}", clock=diagram.clock
    )
    for lifeline in diagram.lifelines.values():
        renamed.add_lifeline(
            binding.get(lifeline.name, lifeline.name), lifeline.class_name
        )
    for message in diagram.messages:
        observation = message.observation
        for role, instance in binding.items():
            observation = observation.replace(f"{role}.", f"{instance}.")
        renamed.add_message(
            Message(
                source=binding.get(message.source, message.source),
                target=binding.get(message.target, message.target),
                method=message.method,
                arguments=message.arguments,
                clock=message.clock,
                start_offset=message.start_offset,
                duration=message.duration,
                temporal=message.temporal,
                until_condition=message.until_condition,
                sequence_op=message.sequence_op,
                text_output=message.text_output,
                observe=observation,
            )
        )
    return renamed
