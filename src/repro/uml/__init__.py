"""The UML level of the paper's design flow.

Class diagrams and use cases capture the design; the *modified
sequence diagram* notation (clock annotations, ``[n]`` cycle offsets,
``A``/``E``/``U`` temporal operators, ``$`` durations, failure text)
captures the properties.  :mod:`repro.uml.to_psl` extracts PSL
properties from sequence diagrams; :mod:`repro.uml.to_asm` generates
ASM model skeletons from class diagrams.
"""

from .class_diagram import (
    Association,
    AssociationKind,
    Attribute,
    ClassDiagram,
    Operation,
    Parameter,
    TYPE_MAP,
    UmlClass,
    Visibility,
)
from .errors import DiagramValidationError, MappingError, UmlError
from .sequence_diagram import (
    Lifeline,
    Message,
    SequenceDiagram,
    SequenceOp,
    TemporalOp,
    figure2_diagram,
)
from .to_asm import (
    GeneratedMachine,
    class_to_asm_source,
    diagram_to_asm_source,
    materialize,
    materialize_class,
)
from .to_psl import instantiate, sequence_to_property
from .use_case import Actor, UseCase, UseCaseDiagram

__all__ = [
    "Association",
    "AssociationKind",
    "Attribute",
    "ClassDiagram",
    "Operation",
    "Parameter",
    "TYPE_MAP",
    "UmlClass",
    "Visibility",
    "DiagramValidationError",
    "MappingError",
    "UmlError",
    "Lifeline",
    "Message",
    "SequenceDiagram",
    "SequenceOp",
    "TemporalOp",
    "figure2_diagram",
    "GeneratedMachine",
    "class_to_asm_source",
    "diagram_to_asm_source",
    "materialize",
    "materialize_class",
    "instantiate",
    "sequence_to_property",
    "Actor",
    "UseCase",
    "UseCaseDiagram",
]
