"""Exceptions raised by the UML layer."""

from __future__ import annotations


class UmlError(Exception):
    """Base class for UML-layer errors."""


class DiagramValidationError(UmlError):
    """A diagram fails its consistency checks."""

    def __init__(self, findings):
        self.findings = list(findings)
        super().__init__(
            "; ".join(str(f) for f in self.findings) or "invalid diagram"
        )


class MappingError(UmlError):
    """A diagram cannot be mapped to PSL / ASM (missing information)."""
