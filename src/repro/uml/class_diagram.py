"""UML class diagrams.

"We model the design in the classical way a C++ design is modeled using
UML (i.e., using use cases, class diagrams, etc.)" (paper, Section 2).

The class diagram is the design-side input of the flow: classes carry
typed attributes (future ASM state variables / SystemC signals, rules
R2.1) and operations with preconditions (future ASM actions with
``require``, rule R3, then SC_THREADs, rule R2.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .errors import UmlError


class Visibility(enum.Enum):
    PUBLIC = "+"
    PRIVATE = "-"
    PROTECTED = "#"


#: UML type name -> (AsmL type name, SystemC type name) -- the left
#: column of translation rule R1.
TYPE_MAP: Dict[str, Tuple[str, str]] = {
    "Boolean": ("Boolean", "bool"),
    "Integer": ("Integer", "int"),
    "Byte": ("Byte", "unsigned char"),
    "BitVector": ("BitVector", "sc_bv"),
    "String": ("String", "std::string"),
    "Real": ("Real", "double"),
}


@dataclass(frozen=True)
class Attribute:
    """A class attribute: ``- m_req : Boolean = false``."""

    name: str
    type_name: str
    initial: Any = None
    visibility: Visibility = Visibility.PRIVATE
    doc: str = ""

    def __post_init__(self):
        if self.type_name not in TYPE_MAP:
            raise UmlError(
                f"attribute {self.name!r}: unknown UML type {self.type_name!r} "
                f"(known: {sorted(TYPE_MAP)})"
            )

    def __str__(self) -> str:
        initial = f" = {self.initial!r}" if self.initial is not None else ""
        return f"{self.visibility.value} {self.name} : {self.type_name}{initial}"


@dataclass(frozen=True)
class Parameter:
    name: str
    type_name: str

    def __str__(self) -> str:
        return f"{self.name} : {self.type_name}"


@dataclass(frozen=True)
class Operation:
    """A class operation; ``preconditions`` become ASM ``require``s."""

    name: str
    parameters: Tuple[Parameter, ...] = ()
    return_type: Optional[str] = None
    preconditions: Tuple[str, ...] = ()
    postconditions: Tuple[str, ...] = ()
    visibility: Visibility = Visibility.PUBLIC
    doc: str = ""

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.parameters)
        returns = f" : {self.return_type}" if self.return_type else ""
        return f"{self.visibility.value} {self.name}({params}){returns}"


@dataclass
class UmlClass:
    """One class box."""

    name: str
    attributes: List[Attribute] = field(default_factory=list)
    operations: List[Operation] = field(default_factory=list)
    is_abstract: bool = False
    stereotype: str = ""  # e.g. "sc_module"
    doc: str = ""

    def attribute(self, name: str) -> Attribute:
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        raise KeyError(name)

    def operation(self, name: str) -> Operation:
        for operation in self.operations:
            if operation.name == name:
                return operation
        raise KeyError(name)

    def add_attribute(self, attribute: Attribute) -> "UmlClass":
        if any(a.name == attribute.name for a in self.attributes):
            raise UmlError(f"duplicate attribute {attribute.name!r} in {self.name}")
        self.attributes.append(attribute)
        return self

    def add_operation(self, operation: Operation) -> "UmlClass":
        if any(o.name == operation.name for o in self.operations):
            raise UmlError(f"duplicate operation {operation.name!r} in {self.name}")
        self.operations.append(operation)
        return self

    def __str__(self) -> str:
        header = f"<<{self.stereotype}>> {self.name}" if self.stereotype else self.name
        lines = [header, "-" * len(header)]
        lines.extend(str(a) for a in self.attributes)
        lines.append("-" * len(header))
        lines.extend(str(o) for o in self.operations)
        return "\n".join(lines)


class AssociationKind(enum.Enum):
    ASSOCIATION = "association"
    AGGREGATION = "aggregation"
    COMPOSITION = "composition"
    GENERALIZATION = "generalization"


@dataclass(frozen=True)
class Association:
    """A relationship edge between two classes."""

    source: str
    target: str
    kind: AssociationKind = AssociationKind.ASSOCIATION
    source_multiplicity: str = "1"
    target_multiplicity: str = "1"
    label: str = ""

    def __str__(self) -> str:
        return (
            f"{self.source} [{self.source_multiplicity}] "
            f"--{self.kind.value}--> [{self.target_multiplicity}] {self.target}"
        )


class ClassDiagram:
    """A named set of classes plus their relationships."""

    def __init__(self, name: str):
        self.name = name
        self.classes: Dict[str, UmlClass] = {}
        self.associations: List[Association] = []

    def add_class(self, cls: UmlClass) -> UmlClass:
        if cls.name in self.classes:
            raise UmlError(f"duplicate class {cls.name!r}")
        self.classes[cls.name] = cls
        return cls

    def new_class(self, name: str, stereotype: str = "") -> UmlClass:
        return self.add_class(UmlClass(name, stereotype=stereotype))

    def add_association(self, association: Association) -> Association:
        for endpoint in (association.source, association.target):
            if endpoint not in self.classes:
                raise UmlError(f"association references unknown class {endpoint!r}")
        self.associations.append(association)
        return self.associations[-1]

    def class_(self, name: str) -> UmlClass:
        return self.classes[name]

    def specializations_of(self, name: str) -> List[UmlClass]:
        return [
            self.classes[a.source]
            for a in self.associations
            if a.kind is AssociationKind.GENERALIZATION and a.target == name
        ]

    def validate(self) -> List[str]:
        findings = []
        for cls in self.classes.values():
            if not cls.attributes and not cls.operations:
                findings.append(f"class {cls.name} is empty")
        return findings

    def __len__(self) -> int:
        return len(self.classes)

    def __str__(self) -> str:
        blocks = [f"class diagram {self.name}"]
        blocks.extend(str(c) for c in self.classes.values())
        blocks.extend(str(a) for a in self.associations)
        return "\n\n".join(blocks)
