"""Class diagram -> ASM skeleton generation.

"Then, we translate the UML model to ASM in order to perform model
checking" (paper, Section 2).  Two outputs:

* :func:`diagram_to_asm_source` -- readable Python source text defining
  one :class:`~repro.asm.machine.AsmMachine` subclass per UML class
  (attributes become ``StateVar``s, operations become ``@action``s with
  ``require`` preconditions -- rules R2.1/R3 in reverse),
* :func:`materialize` -- the same classes built dynamically, ready to
  instantiate into an :class:`~repro.asm.machine.AsmModel`.  Generated
  actions evaluate their UML preconditions (Python expressions over
  ``self``/``model``) and then dispatch to an overridable behaviour
  hook ``on_<operation>`` so the skeleton "could be refined ... at the
  ASM level" exactly as the paper prescribes.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, Type

from ..asm.machine import AsmMachine, StateVar, action, require
from ..asm.types import BitVector
from .class_diagram import Attribute, ClassDiagram, Operation, UmlClass
from .errors import MappingError

#: UML type -> default initial value for the generated StateVar.
_DEFAULTS: Dict[str, Any] = {
    "Boolean": False,
    "Integer": 0,
    "Byte": 0,
    "BitVector": BitVector(0, 8),
    "String": "",
    "Real": 0.0,
}

#: UML type -> AsmL type name used in generated source comments (rule R1).
_ASM_TYPES: Dict[str, str] = {
    "Boolean": "Boolean",
    "Integer": "Integer",
    "Byte": "Byte",
    "BitVector": "BitVector",
    "String": "String",
    "Real": "Real",
}


def _initial_for(attribute: Attribute) -> Any:
    if attribute.initial is not None:
        return attribute.initial
    return _DEFAULTS[attribute.type_name]


# ---------------------------------------------------------------------------
# Source generation
# ---------------------------------------------------------------------------


def class_to_asm_source(cls: UmlClass) -> str:
    """Python source text for the AsmMachine skeleton of one UML class."""
    lines = [f"class {cls.name}(AsmMachine):"]
    doc = cls.doc or f"ASM skeleton generated from UML class {cls.name}."
    lines.append(f'    """{doc}"""')
    lines.append("")
    if not cls.attributes and not cls.operations:
        lines.append("    pass")
        return "\n".join(lines)
    for attribute in cls.attributes:
        initial = _initial_for(attribute)
        lines.append(
            f"    {attribute.name} = StateVar({initial!r})"
            f"  # {_ASM_TYPES[attribute.type_name]}"
        )
    for operation in cls.operations:
        lines.append("")
        params = ", ".join(p.name for p in operation.parameters)
        signature = f"self, {params}" if params else "self"
        lines.append("    @action")
        lines.append(f"    def {operation.name}({signature}):")
        if operation.doc:
            lines.append(f'        """{operation.doc}"""')
        for precondition in operation.preconditions:
            lines.append(f"        require({precondition})")
        hook_args = f", ({params},)" if params else ", ()"
        lines.append(
            f"        return self._behavior({operation.name!r}{hook_args})"
        )
    return "\n".join(lines)


def diagram_to_asm_source(diagram: ClassDiagram) -> str:
    """Source text for the whole diagram (one module)."""
    header = [
        f'"""ASM model skeleton generated from UML class diagram '
        f'{diagram.name!r}."""',
        "",
        "from repro.asm import AsmMachine, StateVar, action, require",
        "",
        "",
    ]
    blocks = [class_to_asm_source(c) for c in diagram.classes.values()]
    return "\n".join(header) + "\n\n\n".join(blocks) + "\n"


# ---------------------------------------------------------------------------
# Dynamic materialization
# ---------------------------------------------------------------------------


class GeneratedMachine(AsmMachine):
    """Base of all materialized skeletons: behaviour hook dispatch."""

    def _behavior(self, operation: str, args: Tuple[Any, ...]) -> Any:
        hook = getattr(self, f"on_{operation}", None)
        if hook is None:
            return None
        return hook(*args)


def _compile_precondition(text: str, cls_name: str, op_name: str):
    try:
        code = compile(text, f"<{cls_name}.{op_name} precondition>", "eval")
    except SyntaxError as error:
        raise MappingError(
            f"{cls_name}.{op_name}: invalid precondition {text!r}: {error}"
        ) from error

    def check(machine: AsmMachine, arguments: Dict[str, Any]) -> bool:
        scope = {"self": machine, "model": machine.model}
        scope.update(arguments)
        return bool(eval(code, {"__builtins__": {}}, scope))  # noqa: S307

    return check


def _make_action(cls_name: str, operation: Operation):
    checks = [
        (_compile_precondition(text, cls_name, operation.name), text)
        for text in operation.preconditions
    ]
    param_names = [p.name for p in operation.parameters]

    def body(self, *args):
        if len(args) != len(param_names):
            raise MappingError(
                f"{cls_name}.{operation.name} expects {len(param_names)} "
                f"arguments, got {len(args)}"
            )
        bound = dict(zip(param_names, args))
        for check, text in checks:
            require(check(self, bound), text)
        return self._behavior(operation.name, args)

    body.__name__ = operation.name
    body.__doc__ = operation.doc or f"Generated from UML operation {operation.name}."
    # Give the wrapper the right introspectable signature for domains.
    import inspect

    parameters = [
        inspect.Parameter("self", inspect.Parameter.POSITIONAL_OR_KEYWORD)
    ] + [
        inspect.Parameter(name, inspect.Parameter.POSITIONAL_OR_KEYWORD)
        for name in param_names
    ]
    body.__signature__ = inspect.Signature(parameters)  # type: ignore[attr-defined]
    return action(body)


def materialize_class(cls: UmlClass) -> Type[GeneratedMachine]:
    """Build a real AsmMachine subclass from one UML class."""
    namespace: Dict[str, Any] = {
        "__doc__": cls.doc or f"Materialized from UML class {cls.name}."
    }
    for attribute in cls.attributes:
        namespace[attribute.name] = StateVar(_initial_for(attribute))
    for operation in cls.operations:
        namespace[operation.name] = _make_action(cls.name, operation)
    return type(cls.name, (GeneratedMachine,), namespace)


def materialize(diagram: ClassDiagram) -> Dict[str, Type[GeneratedMachine]]:
    """Materialize every class of the diagram."""
    return {name: materialize_class(cls) for name, cls in diagram.classes.items()}
