"""Exceptions and control-flow signals of the simulation kernel."""

from __future__ import annotations


class SyscError(Exception):
    """Base class for simulation kernel errors."""


class BindingError(SyscError):
    """A port was used before being bound to a signal/channel."""


class ElaborationError(SyscError):
    """Module construction finished in an inconsistent state."""


class SimulationStopped(Exception):  # noqa: N818 -- control-flow signal
    """Raised inside a process (or by a monitor action) to stop the
    simulation -- the paper's "stop the simulation when the assertion
    is fired" monitor action."""

    def __init__(self, reason: str = ""):
        self.reason = reason
        super().__init__(reason or "sc_stop")


class DeltaCycleLimitExceeded(SyscError):
    """The kernel detected a livelock: too many delta cycles at one time."""
