"""Reporting (``sc_report``-style): severities, counters, stop-on-error.

The assertion monitors route their findings through a
:class:`ReportHandler` so a simulation can be configured to stop on the
first assertion failure, log everything, or merely count -- the three
monitor actions of paper Section 3.2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional


class Severity(enum.IntEnum):
    INFO = 0
    WARNING = 1
    ERROR = 2
    FATAL = 3


@dataclass(frozen=True)
class Report:
    severity: Severity
    label: str
    message: str
    time: int = 0

    def __str__(self) -> str:
        return f"[{self.severity.name}] ({self.label}) {self.message} @ {self.time}"


@dataclass
class ReportHandler:
    """Collects reports; optionally escalates to a stop callback."""

    stop_severity: Severity = Severity.FATAL
    sink: Optional[Callable[[Report], None]] = None
    reports: List[Report] = field(default_factory=list)
    counts: dict = field(default_factory=lambda: {s: 0 for s in Severity})

    def report(
        self, severity: Severity, label: str, message: str, time: int = 0
    ) -> Report:
        entry = Report(severity, label, message, time)
        self.reports.append(entry)
        self.counts[severity] += 1
        if self.sink is not None:
            self.sink(entry)
        return entry

    def info(self, label: str, message: str, time: int = 0) -> Report:
        return self.report(Severity.INFO, label, message, time)

    def warning(self, label: str, message: str, time: int = 0) -> Report:
        return self.report(Severity.WARNING, label, message, time)

    def error(self, label: str, message: str, time: int = 0) -> Report:
        return self.report(Severity.ERROR, label, message, time)

    def should_stop(self, severity: Severity) -> bool:
        return severity >= self.stop_severity

    def errors(self) -> List[Report]:
        return [r for r in self.reports if r.severity >= Severity.ERROR]

    def summary(self) -> str:
        return ", ".join(f"{self.counts[s]} {s.name.lower()}" for s in Severity)
