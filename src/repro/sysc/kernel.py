"""The event-driven simulation kernel.

Implements the SystemC 2.0 scheduler: repeated *delta cycles* of an
evaluation phase (run all runnable processes) followed by an update
phase (commit signal writes) and a delta-notification phase (wake
processes sensitive to the committed changes); when no delta work
remains, time advances to the earliest timed notification.

The kernel also exposes the hooks the ABV layer needs: per-delta and
per-timestep callbacks (monitors sample on clock edges), a cycle
counter, and a ``stop()``/:class:`SimulationStopped` channel so an
assertion monitor can halt the run (paper Section 3.2: the monitor can
"stop the simulation when the assertion is fired").
"""

from __future__ import annotations

import heapq
import time as _wall_time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..obs.runtime import OBS
from .errors import DeltaCycleLimitExceeded, SimulationStopped, SyscError
from .event import Event
from .process_ import MethodProcess, Process, ThreadProcess
from .signal import Signal
from .time_ import format_time


class Simulator:
    """One simulation context: processes, signals, events, and time."""

    def __init__(self, name: str = "sim", max_delta_cycles: int = 10_000):
        self.name = name
        self.time: int = 0
        self.delta_count: int = 0
        self.max_delta_cycles = max_delta_cycles

        self.processes: List[Process] = []
        self.signals: List[Signal] = []
        self._runnable: Deque[Process] = deque()
        self._update_requests: List[Signal] = []
        self._delta_notified: List[Event] = []
        #: cleared scratch lists swapped with the two above per delta
        #: by _instant_fast, so the hot loop never allocates
        self._spare_requests: List[Signal] = []
        self._spare_notified: List[Event] = []
        self._timed: List[Tuple[int, int, Event]] = []
        self._timed_sequence = 0
        self._cancelled: set[int] = set()
        self._timed_ids: Dict[int, int] = {}

        self._initialized = False
        self._stop_reason: Optional[str] = None
        #: set by Signal.write when a queued signal is written again in
        #: the same delta -- a second driver; the instant falls back
        #: from the fast path to the general scheduler
        self._multi_driver_instant = False
        #: called after every update phase (delta boundary)
        self.on_delta: List[Callable[["Simulator"], None]] = []
        #: opt-in analyze witness (repro.analyze.witness.DeltaWitness);
        #: when set, the general scheduler attributes each process run
        #: so the witness can build per-delta access sets.  The witness
        #: also installs an on_delta hook, which keeps the kernel off
        #: the merged fast path for the whole witnessed run.
        self.witness: Optional[Any] = None
        #: called whenever simulated time advances
        self.on_time_advance: List[Callable[["Simulator"], None]] = []

        self.stats = KernelStats()
        #: span id of the most recent traced ``run()`` (None when
        #: tracing is off) -- the ABV harness parents per-property
        #: monitor spans under it so trace self-time folds correctly.
        self.last_run_span_id: Optional[int] = None

    # -- registration ------------------------------------------------------------

    def register_process(self, process: Process) -> Process:
        self.processes.append(process)
        return process

    def register_signal(self, signal: Signal) -> Signal:
        signal.attach(self)
        self.signals.append(signal)
        return signal

    def thread(
        self,
        body,
        name: str | None = None,
        sensitive: tuple = (),
        dont_initialize: bool = False,
    ) -> ThreadProcess:
        """Register a free-standing SC_THREAD (no module needed)."""
        process = ThreadProcess(
            name or getattr(body, "__name__", "thread"),
            body,
            sensitivity=[self._resolve_event(s) for s in sensitive],
            dont_initialize=dont_initialize,
        )
        return self.register_process(process)  # type: ignore[return-value]

    def method(
        self,
        body,
        name: str | None = None,
        sensitive: tuple = (),
        dont_initialize: bool = False,
    ) -> MethodProcess:
        """Register a free-standing SC_METHOD."""
        process = MethodProcess(
            name or getattr(body, "__name__", "method"),
            body,
            sensitivity=[self._resolve_event(s) for s in sensitive],
            dont_initialize=dont_initialize,
        )
        return self.register_process(process)  # type: ignore[return-value]

    def _resolve_event(self, source: Any) -> Event:
        if isinstance(source, Event):
            return source
        if isinstance(source, Signal):
            return source.value_changed
        if hasattr(source, "default_event"):
            return source.default_event()
        raise SyscError(f"cannot derive an event from {source!r}")

    # -- notification plumbing (called by Event) -------------------------------------

    def _notify_delta(self, event: Event) -> None:
        self._delta_notified.append(event)

    def _notify_immediate(self, event: Event) -> None:
        for process in event._collect_waiters():
            self._make_runnable(process)

    def _notify_timed(self, event: Event, delay: int) -> None:
        self._timed_sequence += 1
        self._timed_ids[id(event)] = self._timed_sequence
        heapq.heappush(self._timed, (self.time + delay, self._timed_sequence, event))

    def _notify_timed_fast(self, event: Event, delay: int) -> None:
        """Timed notify for kernel-internal timers (clock drivers,
        thread timeouts) that are never cancelled: skips the
        cancellation registry, which is pure overhead on the hot path."""
        self._timed_sequence += 1
        heapq.heappush(self._timed, (self.time + delay, self._timed_sequence, event))

    def _cancel_timed(self, event: Event) -> None:
        sequence = self._timed_ids.pop(id(event), None)
        if sequence is not None:
            self._cancelled.add(sequence)

    def _request_update(self, signal: Signal) -> None:
        self._update_requests.append(signal)

    def _make_runnable(self, process: Process) -> None:
        if not process.runnable and not process.terminated:
            process.runnable = True
            self._runnable.append(process)

    # -- lifecycle --------------------------------------------------------------------

    def initialize(self) -> None:
        """Elaboration end: wire static sensitivity, seed runnable set."""
        if self._initialized:
            return
        for process in self.processes:
            process.make_static_sensitive()
            if not process.dont_initialize:
                self._make_runnable(process)
        self._initialized = True

    def stop(self, reason: str = "") -> None:
        """Request a graceful stop at the end of the current delta."""
        self._stop_reason = reason or "sc_stop"

    @property
    def stopped(self) -> bool:
        return self._stop_reason is not None

    @property
    def stop_reason(self) -> Optional[str]:
        return self._stop_reason

    # -- the scheduler ---------------------------------------------------------

    def run(self, duration: Optional[int] = None) -> None:
        """Run for ``duration`` time units (None = until starvation)."""
        if OBS.enabled:
            self._run_observed(duration)
            return
        self._run(duration)

    def _run_observed(self, duration: Optional[int]) -> None:
        """Traced variant of :meth:`run`: one ``sysc.kernel.run`` span."""
        before = self.stats.snapshot()
        with OBS.tracer.span(
            "sysc.kernel.run", "sysc.kernel", sim=self.name
        ) as span:
            self.last_run_span_id = span.span_id
            try:
                self._run(duration)
            finally:
                after = self.stats.snapshot()
                span.set(
                    delta_cycles=after["delta_cycles"] - before["delta_cycles"],
                    process_runs=after["process_runs"] - before["process_runs"],
                    signal_changes=(
                        after["signal_changes"] - before["signal_changes"]
                    ),
                    time_advances=(
                        after["time_advances"] - before["time_advances"]
                    ),
                    fast_path_instants=(
                        after["fast_path_instants"] - before["fast_path_instants"]
                    ),
                    full_path_instants=(
                        after["full_path_instants"] - before["full_path_instants"]
                    ),
                    livelock_proximity=round(
                        self.stats.max_deltas_per_instant
                        / self.max_delta_cycles,
                        6,
                    ),
                )
        if OBS.metrics.enabled:
            registry = OBS.metrics
            registry.counter("sysc.kernel.delta_cycles").inc(
                after["delta_cycles"] - before["delta_cycles"]
            )
            registry.counter("sysc.kernel.process_runs").inc(
                after["process_runs"] - before["process_runs"]
            )
            registry.counter("sysc.kernel.runs").inc()
            registry.counter("sysc.kernel.fast_path_instants").inc(
                after["fast_path_instants"] - before["fast_path_instants"]
            )
            registry.counter("sysc.kernel.full_path_instants").inc(
                after["full_path_instants"] - before["full_path_instants"]
            )

    def _run(self, duration: Optional[int]) -> None:
        self.initialize()
        deadline = None if duration is None else self.time + duration
        started_wall = _wall_time.perf_counter()

        stats = self.stats
        while not self.stopped:
            # Fast path: the common instant has one driver per signal
            # and no per-delta hooks, so the merged-phase loop skips
            # the general scheduler's bookkeeping.  Signal.write flags
            # a second driver mid-instant; _instant_fast then hands
            # the rest of the instant to _delta_cycle transparently.
            if self.on_delta:
                self._delta_cycle()
                stats.full_path_instants += 1
            else:
                self._multi_driver_instant = False
                if self._instant_fast():
                    stats.fast_path_instants += 1
                else:
                    stats.full_path_instants += 1
            if self.stopped:
                break
            if self._runnable or self._delta_notified or self._update_requests:
                continue
            if not self._advance_time(deadline):
                break
        self.stats.wall_seconds += _wall_time.perf_counter() - started_wall
        if deadline is not None and self.time < deadline and not self.stopped:
            self.time = deadline

    def _instant_fast(self) -> bool:
        """Merged-phase scheduler for single-driver instants.

        Runs evaluation, update and delta-notification with phase
        transitions inlined and no hook dispatch.  Returns True when
        the whole instant ran here; False when a second driver for a
        queued signal appeared (``_multi_driver_instant``) and the
        remainder of the instant was handed to :meth:`_delta_cycle` --
        the fallback is transparent because signal semantics
        (last-write-wins within a delta) are identical on both paths.
        """
        runnable = self._runnable
        popleft = runnable.popleft
        stats = self.stats
        deltas_here = 0
        process_runs = 0
        signal_changes = 0
        # Scratch lists ping-pong with the live ones so each delta's
        # notify/update batch swap costs no allocation.
        spare_notified = self._spare_notified
        spare_requests = self._spare_requests
        # Counters accumulate in locals and flush once per instant (the
        # finally keeps them correct on SimulationStopped, fallback and
        # model exceptions alike).
        try:
            while True:
                if not runnable:
                    notified = self._delta_notified
                    if notified:
                        self._delta_notified = spare_notified
                        for event in notified:
                            for process in event._collect_waiters():
                                if not process.runnable and not process.terminated:
                                    process.runnable = True
                                    runnable.append(process)
                        notified.clear()
                        spare_notified = notified
                    if not runnable and not self._update_requests:
                        break
                while runnable:
                    process = popleft()
                    process.runnable = False
                    if process.terminated:
                        continue
                    process_runs += 1
                    try:
                        process.execute(self)
                    except SimulationStopped as stop:
                        self.stop(stop.reason)
                        return True
                requests = self._update_requests
                if requests:
                    self._update_requests = spare_requests
                    for signal in requests:
                        if signal._apply():
                            signal_changes += 1
                    requests.clear()
                    spare_requests = requests
                self.delta_count += 1
                deltas_here += 1
                if deltas_here > self.max_delta_cycles:
                    raise DeltaCycleLimitExceeded(
                        f"{deltas_here} delta cycles at time {format_time(self.time)}"
                    )
                if self._multi_driver_instant:
                    self._delta_cycle(deltas_done=deltas_here)
                    return False
            return True
        finally:
            self._spare_notified = spare_notified
            self._spare_requests = spare_requests
            stats.process_runs += process_runs
            stats.delta_cycles += deltas_here
            stats.signal_changes += signal_changes
            if deltas_here > stats.max_deltas_per_instant:
                stats.max_deltas_per_instant = deltas_here

    def _delta_cycle(self, deltas_done: int = 0) -> None:
        deltas_here = deltas_done
        while self._runnable or self._delta_notified or self._update_requests:
            # delta-notification phase (wake first so new runnables join in)
            if not self._runnable and self._delta_notified:
                self._fire_delta_notifications()
            if not self._runnable and not self._update_requests:
                break
            # evaluation phase
            while self._runnable:
                process = self._runnable.popleft()
                process.runnable = False
                if process.terminated:
                    continue
                self.stats.process_runs += 1
                if self.witness is not None:
                    self.witness.process_run(process)
                try:
                    process.execute(self)
                except SimulationStopped as stop:
                    self.stop(stop.reason)
                    return
            # update phase
            if self._update_requests:
                requests, self._update_requests = self._update_requests, []
                for signal in requests:
                    if signal._apply():
                        self.stats.signal_changes += 1
            self.delta_count += 1
            self.stats.delta_cycles += 1
            deltas_here += 1
            if deltas_here > self.stats.max_deltas_per_instant:
                self.stats.max_deltas_per_instant = deltas_here
            if deltas_here > self.max_delta_cycles:
                raise DeltaCycleLimitExceeded(
                    f"{deltas_here} delta cycles at time {format_time(self.time)}"
                )
            for hook in self.on_delta:
                hook(self)
            # loop: delta notifications fired during update wake processes
            if self._delta_notified:
                self._fire_delta_notifications()

    def _fire_delta_notifications(self) -> None:
        notified, self._delta_notified = self._delta_notified, []
        for event in notified:
            for process in event._collect_waiters():
                self._make_runnable(process)

    def _advance_time(self, deadline: Optional[int]) -> bool:
        """Advance to the next timed notification; False = starvation/deadline."""
        timed = self._timed
        cancelled = self._cancelled
        timed_ids = self._timed_ids
        heappop = heapq.heappop
        while timed:
            event_time, sequence, event = timed[0]
            if cancelled and sequence in cancelled:
                heappop(timed)
                cancelled.discard(sequence)
                continue
            if deadline is not None and event_time > deadline:
                self.time = deadline
                return False
            heappop(timed)
            if timed_ids:
                timed_ids.pop(id(event), None)
            self.time = event_time
            self.stats.time_advances += 1
            # fire this and all other notifications at the same instant
            self._wake_timed(event)
            while timed and timed[0][0] == event_time:
                _, sequence2, event2 = heappop(timed)
                if cancelled and sequence2 in cancelled:
                    cancelled.discard(sequence2)
                    continue
                if timed_ids:
                    timed_ids.pop(id(event2), None)
                self._wake_timed(event2)
            for hook in self.on_time_advance:
                hook(self)
            return True
        return False

    def _wake_timed(self, event: Event) -> None:
        runnable = self._runnable
        for process in event._collect_waiters():
            if not process.runnable and not process.terminated:
                process.runnable = True
                runnable.append(process)

    # -- conveniences -------------------------------------------------------------

    def pending_activity(self) -> bool:
        return bool(
            self._runnable
            or self._delta_notified
            or self._update_requests
            or self._timed
        )

    def __repr__(self) -> str:
        return (
            f"Simulator({self.name!r} @ {format_time(self.time)}, "
            f"{len(self.processes)} processes)"
        )


class KernelStats:
    """Cheap counters for benchmarking and sanity checks."""

    __slots__ = (
        "process_runs",
        "delta_cycles",
        "signal_changes",
        "time_advances",
        "wall_seconds",
        "max_deltas_per_instant",
        "fast_path_instants",
        "full_path_instants",
    )

    def __init__(self):
        self.process_runs = 0
        self.delta_cycles = 0
        self.signal_changes = 0
        self.time_advances = 0
        self.wall_seconds = 0.0
        #: deepest delta chain seen at one simulated instant; divided
        #: by ``max_delta_cycles`` this is the livelock proximity the
        #: kernel span reports.
        self.max_deltas_per_instant = 0
        #: instants completed by the merged-phase single-driver fast
        #: path vs. the general delta scheduler (hooks installed, or a
        #: second driver appeared mid-instant).
        self.fast_path_instants = 0
        self.full_path_instants = 0

    def snapshot(self) -> Dict[str, int]:
        """The integer counters as a dict (for span before/after deltas)."""
        return {
            "process_runs": self.process_runs,
            "delta_cycles": self.delta_cycles,
            "signal_changes": self.signal_changes,
            "time_advances": self.time_advances,
            "max_deltas_per_instant": self.max_deltas_per_instant,
            "fast_path_instants": self.fast_path_instants,
            "full_path_instants": self.full_path_instants,
        }

    def summary(self) -> str:
        return (
            f"{self.process_runs} process runs, {self.delta_cycles} deltas, "
            f"{self.signal_changes} signal changes, "
            f"{self.time_advances} time steps in {self.wall_seconds:.3f}s wall"
        )
