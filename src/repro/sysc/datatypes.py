"""Hardware data types (``sc_logic``/``sc_lv`` flavour).

"SystemC provides data-types for hardware modelling and certain types
of software programming as well." (paper, Section 2.2)

:class:`Logic` is the four-valued scalar; vectors reuse
:class:`repro.asm.types.BitVector` (rule R1 maps ASM bit vectors onto
SystemC vectors one-to-one, so sharing the implementation keeps the
translation trivially faithful).
"""

from __future__ import annotations

from typing import Union

from ..asm.types import Bit, BitVector
from .errors import SyscError

LogicLike = Union["Logic", str, int, bool, Bit]

_AND = {
    ("0", "0"): "0", ("0", "1"): "0", ("1", "0"): "0", ("1", "1"): "1",
    ("0", "X"): "0", ("X", "0"): "0", ("1", "X"): "X", ("X", "1"): "X",
    ("X", "X"): "X", ("0", "Z"): "0", ("Z", "0"): "0", ("1", "Z"): "X",
    ("Z", "1"): "X", ("Z", "Z"): "X", ("X", "Z"): "X", ("Z", "X"): "X",
}
_OR = {
    ("0", "0"): "0", ("0", "1"): "1", ("1", "0"): "1", ("1", "1"): "1",
    ("0", "X"): "X", ("X", "0"): "X", ("1", "X"): "1", ("X", "1"): "1",
    ("X", "X"): "X", ("0", "Z"): "X", ("Z", "0"): "X", ("1", "Z"): "1",
    ("Z", "1"): "1", ("Z", "Z"): "X", ("X", "Z"): "X", ("Z", "X"): "X",
}
_NOT = {"0": "1", "1": "0", "X": "X", "Z": "X"}


class Logic:
    """Four-valued logic: ``'0'``, ``'1'``, ``'X'`` (unknown), ``'Z'``
    (high impedance)."""

    __slots__ = ("_value",)

    VALUES = ("0", "1", "X", "Z")

    def __init__(self, value: LogicLike = "X"):
        self._value = _coerce(value)

    @property
    def value(self) -> str:
        return self._value

    def is_known(self) -> bool:
        return self._value in ("0", "1")

    def to_bool(self) -> bool:
        if not self.is_known():
            raise SyscError(f"Logic {self._value!r} has no boolean value")
        return self._value == "1"

    def __bool__(self) -> bool:
        return self._value == "1"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (Logic, str, int, bool, Bit)):
            try:
                return self._value == _coerce(other)
            except SyscError:
                return NotImplemented
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Logic", self._value))

    def __and__(self, other: LogicLike) -> "Logic":
        return Logic(_AND[(self._value, _coerce(other))])

    def __or__(self, other: LogicLike) -> "Logic":
        return Logic(_OR[(self._value, _coerce(other))])

    def __xor__(self, other: LogicLike) -> "Logic":
        a, b = self._value, _coerce(other)
        if a in ("X", "Z") or b in ("X", "Z"):
            return Logic("X")
        return Logic("1" if a != b else "0")

    def __invert__(self) -> "Logic":
        return Logic(_NOT[self._value])

    def __repr__(self) -> str:
        return f"Logic('{self._value}')"


def _coerce(value: LogicLike) -> str:
    if isinstance(value, Logic):
        return value.value
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, Bit):
        return "1" if value.value else "0"
    if isinstance(value, int):
        if value in (0, 1):
            return str(value)
        raise SyscError(f"integer {value} is not a logic scalar")
    if isinstance(value, str):
        upper = value.upper()
        if upper in Logic.VALUES:
            return upper
        raise SyscError(f"invalid logic literal {value!r}")
    raise SyscError(f"cannot interpret {value!r} as Logic")


def logic_vector(text: str) -> list[Logic]:
    """Parse e.g. ``"01XZ"`` into a list of Logic scalars."""
    return [Logic(c) for c in text]


__all__ = ["Logic", "LogicLike", "logic_vector", "Bit", "BitVector"]
