"""Signals: the evaluate/update communication primitive.

``Signal`` follows SystemC's ``sc_signal`` semantics: ``write`` only
*requests* an update; the new value becomes visible in the next delta
cycle, after the evaluation phase, and a change notifies the signal's
``value_changed`` (plus ``posedge``/``negedge`` for boolean-ish
signals).  This is what makes the translation rule R2.1 ("class members
are translated into SystemC signals") behaviourally faithful to ASM
state variables updated by update sets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generic, Optional, TypeVar

from .event import Event

if TYPE_CHECKING:
    from .kernel import Simulator

T = TypeVar("T")

_NOTHING = object()


class Signal(Generic[T]):
    """A single-driver signal with deferred (delta-cycle) updates."""

    __slots__ = (
        "name",
        "simulator",
        "_current",
        "_next",
        "_value_changed",
        "_posedge",
        "_negedge",
        "_last_change_delta",
    )

    def __init__(
        self,
        initial: T = False,  # type: ignore[assignment]
        name: str = "signal",
        simulator: "Simulator | None" = None,
    ):
        self.name = name
        self.simulator = simulator
        self._current: T = initial
        self._next: Any = _NOTHING
        self._value_changed: Optional[Event] = None
        self._posedge: Optional[Event] = None
        self._negedge: Optional[Event] = None
        #: delta count of the last committed change (for event() queries)
        self._last_change_delta: int = -1
        if simulator is not None:
            simulator.register_signal(self)

    # -- events (created lazily; most signals are never waited on) ------------

    @property
    def value_changed(self) -> Event:
        if self._value_changed is None:
            self._value_changed = Event(f"{self.name}.value_changed", self.simulator)
        return self._value_changed

    @property
    def posedge_event(self) -> Event:
        if self._posedge is None:
            self._posedge = Event(f"{self.name}.posedge", self.simulator)
        return self._posedge

    @property
    def negedge_event(self) -> Event:
        if self._negedge is None:
            self._negedge = Event(f"{self.name}.negedge", self.simulator)
        return self._negedge

    def default_event(self) -> Event:
        return self.value_changed

    # -- access -----------------------------------------------------------------

    def read(self) -> T:
        return self._current

    @property
    def value(self) -> T:
        return self._current

    def write(self, value: T) -> None:
        """Request an update; visible after the current delta cycle."""
        simulator = self.simulator
        if simulator is None:
            # Unattached signals update immediately (unit-test comfort).
            self._next = value
            self._apply()
            return
        if self._next is _NOTHING:
            self._next = value
            simulator._update_requests.append(self)
        else:
            # Already queued this delta: a second driver.  Last write
            # wins (exactly as before, when the queue held duplicates)
            # and the kernel's fast path falls back for this instant.
            self._next = value
            simulator._multi_driver_instant = True

    def event(self) -> bool:
        """True if the signal changed in the immediately preceding delta."""
        if self.simulator is None:
            return False
        return self._last_change_delta == self.simulator.delta_count - 1

    # -- kernel side ---------------------------------------------------------------

    def _apply(self) -> bool:
        """Commit the pending write; returns True when the value changed."""
        if self._next is _NOTHING:
            return False
        new_value, self._next = self._next, _NOTHING
        if new_value == self._current:
            return False
        old_value, self._current = self._current, new_value
        if self.simulator is not None:
            self._last_change_delta = self.simulator.delta_count
        if self._value_changed is not None:
            self._value_changed.notify()
        if self._posedge is not None and new_value and not old_value:
            self._posedge.notify()
        if self._negedge is not None and old_value and not new_value:
            self._negedge.notify()
        return True

    def attach(self, simulator: "Simulator") -> None:
        self.simulator = simulator
        for event in (self._value_changed, self._posedge, self._negedge):
            if event is not None:
                event.attach(simulator)

    def __repr__(self) -> str:
        return f"Signal({self.name!r}={self._current!r})"
