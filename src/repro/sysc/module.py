"""Modules and ports: SystemC's structural layer.

"The other core language elements consist of modules and ports for
representing structures.  Interfaces and channels are used to describe
communications."  (paper, Section 2.2)

A :class:`Module` owns signals, events, child modules and processes;
:class:`In`/:class:`Out` ports are bound to signals during elaboration
(rule R3's "naming mapping is used to link different modules
together").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generic, List, Optional, TypeVar

from .errors import BindingError, ElaborationError
from .event import Event
from .process_ import MethodProcess, ThreadProcess
from .signal import Signal

if TYPE_CHECKING:
    from .kernel import Simulator

T = TypeVar("T")


class Port(Generic[T]):
    """Base port: a late-bound reference to a signal."""

    direction = "inout"

    def __init__(self, name: str = "port"):
        self.name = name
        self._signal: Optional[Signal[T]] = None

    def bind(self, signal: "Signal[T] | Port[T]") -> None:
        if isinstance(signal, Port):
            if signal._signal is None:
                raise BindingError(
                    f"cannot bind {self.name!r} to unbound port {signal.name!r}"
                )
            signal = signal._signal
        self._signal = signal

    @property
    def bound(self) -> bool:
        return self._signal is not None

    @property
    def signal(self) -> Signal[T]:
        if self._signal is None:
            raise BindingError(f"port {self.name!r} is not bound")
        return self._signal

    def read(self) -> T:
        return self.signal.read()

    def default_event(self) -> Event:
        return self.signal.value_changed

    def posedge(self) -> Event:
        return self.signal.posedge_event

    def negedge(self) -> Event:
        return self.signal.negedge_event

    def __repr__(self) -> str:
        target = self._signal.name if self._signal is not None else "<unbound>"
        return f"{type(self).__name__}({self.name!r} -> {target})"


class In(Port[T]):
    """Input port (``sc_in``): read-only access."""

    direction = "in"


class Out(Port[T]):
    """Output port (``sc_out``): adds ``write``."""

    direction = "out"

    def write(self, value: T) -> None:
        self.signal.write(value)


class Module:
    """Base class for hardware modules (``sc_module``).

    Subclasses create their structure in ``__init__`` (after calling
    ``super().__init__``) using the ``signal``/``thread``/``method``
    helpers, mirroring how a SystemC module's constructor declares
    ``SC_THREAD``/``SC_METHOD`` with sensitivity (rule R2.2 inserts the
    translated preconditions exactly there).
    """

    def __init__(self, name: str, simulator: "Simulator | None" = None, parent: "Module | None" = None):
        if simulator is None and parent is not None:
            simulator = parent.simulator
        if simulator is None:
            raise ElaborationError(f"module {name!r} needs a simulator or a parent")
        self.simulator: "Simulator" = simulator
        self.parent = parent
        self.basename = name
        self.name = name if parent is None else f"{parent.name}.{name}"
        self.children: List["Module"] = []
        self.ports: List[Port] = []
        self._signals: List[Signal] = []
        if parent is not None:
            parent.children.append(self)

    # -- structure helpers ----------------------------------------------------

    def signal(self, initial: Any = False, name: str = "signal") -> Signal:
        sig = Signal(initial, name=f"{self.name}.{name}", simulator=self.simulator)
        self._signals.append(sig)
        return sig

    def event(self, name: str = "event") -> Event:
        return Event(f"{self.name}.{name}", self.simulator)

    def in_port(self, name: str) -> In:
        port: In = In(f"{self.name}.{name}")
        self.ports.append(port)
        return port

    def out_port(self, name: str) -> Out:
        port: Out = Out(f"{self.name}.{name}")
        self.ports.append(port)
        return port

    def thread(self, body, sensitive: tuple = (), dont_initialize: bool = False, name: str | None = None) -> ThreadProcess:
        """Declare an SC_THREAD with an optional static sensitivity list."""
        events = [self.simulator._resolve_event(s) for s in sensitive]
        process = ThreadProcess(
            f"{self.name}.{name or body.__name__}",
            body,
            owner=self,
            sensitivity=events,
            dont_initialize=dont_initialize,
        )
        self.simulator.register_process(process)
        return process

    def method(self, body, sensitive: tuple = (), dont_initialize: bool = False, name: str | None = None) -> MethodProcess:
        """Declare an SC_METHOD with a static sensitivity list."""
        events = [self.simulator._resolve_event(s) for s in sensitive]
        process = MethodProcess(
            f"{self.name}.{name or body.__name__}",
            body,
            owner=self,
            sensitivity=events,
            dont_initialize=dont_initialize,
        )
        self.simulator.register_process(process)
        return process

    # -- elaboration checks ---------------------------------------------------------

    def check_bindings(self) -> None:
        """Raise if any port (here or below) is unbound."""
        for port in self.ports:
            if not port.bound:
                raise BindingError(f"port {port.name!r} left unbound")
        for child in self.children:
            child.check_bindings()

    def signals(self) -> List[Signal]:
        collected = list(self._signals)
        for child in self.children:
            collected.extend(child.signals())
        return collected

    def __repr__(self) -> str:
        return f"<Module {self.name}>"
