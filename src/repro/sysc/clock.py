"""Clock: a self-toggling boolean signal (``sc_clock``).

The paper's PCI model runs at "33MHz clock speed"; a Clock with
``period=ns(30)`` approximates that.  ``cycle_count`` counts posedges,
which the ABV layer and the benchmark harness use as the cycle base for
the delta (ns/cycle) measurements of Tables 1 and 2.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .errors import SyscError
from .event import Event
from .process_ import Process, ProcessKind
from .signal import Signal

if TYPE_CHECKING:
    from .kernel import Simulator


class _ClockDriver(Process):
    """Native clock toggler: one ``execute`` per edge.

    Replaces the generator thread that used to drive the clock.  Each
    run writes the next level, flips the phase, and rearms a single
    reused timeout event -- no generator resumption, no wait-request
    dispatch, no per-edge event allocation.  The timer is private to
    the driver (nothing else can wait on or cancel it) and is only
    rearmed after its own firing, so reuse is safe.

    When the low phase of a cycle is provably unobservable (no negedge
    or value-changed listeners, no kernel hooks, no concurrent timers
    or runnables -- see :meth:`execute`), the driver *folds* it: one
    wake-up per cycle instead of two, halving kernel instants.  The
    rising-edge cadence, ``cycle_count`` and every posedge notification
    are unchanged; only a process that samples the clock *level*
    between edges via a timed wait it arms after the fold decision
    could tell the difference, and installing any of the guarded
    observers disables folding from the next cycle on.
    """

    __slots__ = ("_clock", "_simulator", "_timer", "_started", "_high_next")

    def __init__(self, clock: "Clock", simulator: "Simulator"):
        super().__init__(f"{clock.name}.driver", owner=None)
        self.kind = ProcessKind.THREAD
        self._clock = clock
        self._simulator = simulator
        self._timer = Event(f"{clock.name}.driver.timeout", simulator)
        self._started = not clock.start_time
        self._high_next = clock.posedge_first

    def _arm(self, delay: int) -> None:
        self._timer.dynamic_waiters.append(self)
        self._simulator._notify_timed_fast(self._timer, delay)

    def execute(self, simulator: "Simulator") -> None:
        if not self._started:
            # First run with a start delay: idle until start_time.
            self._started = True
            self._arm(self._clock.start_time)
            return
        clock = self._clock
        if self._high_next:
            clock.cycle_count += 1
            if (
                clock._negedge is None
                and clock._value_changed is None
                and not simulator.on_delta
                and not simulator.on_time_advance
                and not simulator._timed
                and not simulator._runnable
                and not simulator._delta_notified
                and not simulator._update_requests
            ):
                # Nothing can observe the low phase: no negedge or
                # value-changed listeners, no per-delta/per-time hooks,
                # and no other pending timer or runnable process that
                # could sample the level between edges.  Fold the
                # falling edge away -- drop to low silently, raise a
                # real rising edge, and sleep the whole period in one
                # wake-up instead of two.
                clock._current = False
                clock.write(True)
                self._arm(clock.period)
                return  # stay in the "posedge next" phase
            clock.write(True)
            delay = clock._high_time
        else:
            clock.write(False)
            delay = clock._low_time
        self._high_next = not self._high_next
        self._arm(delay)


class Clock(Signal[bool]):
    """A periodic boolean signal driven by an internal thread."""

    def __init__(
        self,
        name: str,
        period: int,
        simulator: "Simulator",
        duty_cycle: float = 0.5,
        start_time: int = 0,
        posedge_first: bool = True,
    ):
        if period <= 1:
            raise SyscError("clock period must exceed one time unit")
        if not 0.0 < duty_cycle < 1.0:
            raise SyscError("duty cycle must be inside (0, 1)")
        super().__init__(initial=not posedge_first, name=name, simulator=simulator)
        self.period = period
        self.duty_cycle = duty_cycle
        self.start_time = start_time
        self.posedge_first = posedge_first
        self.cycle_count = 0

        self._high_time = max(int(period * duty_cycle), 1)
        self._low_time = max(period - self._high_time, 1)
        simulator.register_process(_ClockDriver(self, simulator))

    def posedge(self):
        """The event to ``yield`` for 'wait until next rising edge'."""
        return self.posedge_event

    def negedge(self):
        return self.negedge_event

    def __repr__(self) -> str:
        return f"Clock({self.name!r}, period={self.period})"
