"""Clock: a self-toggling boolean signal (``sc_clock``).

The paper's PCI model runs at "33MHz clock speed"; a Clock with
``period=ns(30)`` approximates that.  ``cycle_count`` counts posedges,
which the ABV layer and the benchmark harness use as the cycle base for
the delta (ns/cycle) measurements of Tables 1 and 2.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .errors import SyscError
from .process_ import ThreadProcess
from .signal import Signal

if TYPE_CHECKING:
    from .kernel import Simulator


class Clock(Signal[bool]):
    """A periodic boolean signal driven by an internal thread."""

    def __init__(
        self,
        name: str,
        period: int,
        simulator: "Simulator",
        duty_cycle: float = 0.5,
        start_time: int = 0,
        posedge_first: bool = True,
    ):
        if period <= 1:
            raise SyscError("clock period must exceed one time unit")
        if not 0.0 < duty_cycle < 1.0:
            raise SyscError("duty cycle must be inside (0, 1)")
        super().__init__(initial=not posedge_first, name=name, simulator=simulator)
        self.period = period
        self.duty_cycle = duty_cycle
        self.start_time = start_time
        self.posedge_first = posedge_first
        self.cycle_count = 0

        self._high_time = max(int(period * duty_cycle), 1)
        self._low_time = max(period - self._high_time, 1)
        simulator.register_process(
            ThreadProcess(f"{name}.driver", self._drive, owner=None)
        )

    def _drive(self):
        if self.start_time:
            yield self.start_time
        if self.posedge_first:
            while True:
                self.cycle_count += 1
                self.write(True)
                yield self._high_time
                self.write(False)
                yield self._low_time
        else:
            while True:
                self.write(False)
                yield self._low_time
                self.cycle_count += 1
                self.write(True)
                yield self._high_time

    def posedge(self):
        """The event to ``yield`` for 'wait until next rising edge'."""
        return self.posedge_event

    def negedge(self):
        return self.negedge_event

    def __repr__(self) -> str:
        return f"Clock({self.name!r}, period={self.period})"
