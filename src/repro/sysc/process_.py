"""Processes: SC_THREAD and SC_METHOD equivalents.

Threads are Python generators: the body runs until it ``yield``-s a
*wait request*, which is one of

* an :class:`~repro.sysc.event.Event` -- dynamic wait on one event,
* a tuple/list of events -- wait on any of them,
* a positive ``int`` -- wait for that much simulation time,
* ``None`` -- wait on the process's static sensitivity list.

Methods are plain callables triggered by their static sensitivity, run
to completion, and cannot wait -- exactly SystemC's SC_METHOD.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Generator, Iterable, List, Optional, Union

from .errors import SyscError
from .event import Event

if TYPE_CHECKING:
    from .kernel import Simulator
    from .module import Module

#: What a thread may yield.
WaitRequest = Union[Event, int, None, tuple, list]

ThreadBody = Callable[[], Generator[WaitRequest, None, None]]
MethodBody = Callable[[], None]


class ProcessKind(enum.Enum):
    THREAD = "thread"
    METHOD = "method"


class Process:
    """Common bookkeeping for both process kinds."""

    __slots__ = (
        "name",
        "owner",
        "sensitivity",
        "dont_initialize",
        "terminated",
        "runnable",
        "kind",
    )

    def __init__(
        self,
        name: str,
        owner: "Module | None",
        sensitivity: Iterable[Event] = (),
        dont_initialize: bool = False,
    ):
        self.name = name
        self.owner = owner
        self.sensitivity: List[Event] = list(sensitivity)
        self.dont_initialize = dont_initialize
        self.terminated = False
        self.runnable = False
        self.kind: ProcessKind = ProcessKind.METHOD

    def make_static_sensitive(self) -> None:
        for event in self.sensitivity:
            if self not in event.static_waiters:
                event.static_waiters.append(self)

    def clear_static_sensitivity(self) -> None:
        for event in self.sensitivity:
            if self in event.static_waiters:
                event.static_waiters.remove(self)

    def __repr__(self) -> str:
        status = "terminated" if self.terminated else "alive"
        return f"<{self.kind.value} {self.name} ({status})>"


class MethodProcess(Process):
    """SC_METHOD: runs to completion on every trigger."""

    __slots__ = ("body",)

    def __init__(
        self,
        name: str,
        body: MethodBody,
        owner: "Module | None" = None,
        sensitivity: Iterable[Event] = (),
        dont_initialize: bool = False,
    ):
        super().__init__(name, owner, sensitivity, dont_initialize)
        self.kind = ProcessKind.METHOD
        self.body = body

    def execute(self, simulator: "Simulator") -> None:
        self.body()


class ThreadProcess(Process):
    """SC_THREAD: a generator suspended at wait points."""

    __slots__ = ("body", "_generator", "_waiting_on", "_timer", "_timer_fires_at")

    def __init__(
        self,
        name: str,
        body: ThreadBody,
        owner: "Module | None" = None,
        sensitivity: Iterable[Event] = (),
        dont_initialize: bool = False,
    ):
        super().__init__(name, owner, sensitivity, dont_initialize)
        self.kind = ProcessKind.THREAD
        self.body = body
        self._generator: Optional[Generator] = None
        #: events this thread is currently dynamically waiting on
        self._waiting_on: List[Event] = []
        #: reusable timeout event for ``yield <int>`` waits -- a thread
        #: waits on at most one timeout at a time, so one event
        #: (created lazily) serves every timed wait without per-wait
        #: allocation or cancellation bookkeeping
        self._timer: Optional[Event] = None
        #: simulated time the armed timer fires at; resuming before
        #: then (an early wake) means a stale heap entry is pending
        #: and the event must not be rearmed
        self._timer_fires_at = -1

    def execute(self, simulator: "Simulator") -> None:
        """Resume the thread until its next wait (or termination)."""
        waiting = self._waiting_on
        if waiting:
            for event in waiting:
                dynamic = event.dynamic_waiters
                if self in dynamic:
                    dynamic.remove(self)
            waiting.clear()
        if self.terminated:
            return
        if self._generator is None:
            result = self.body()
            if result is None:
                # A body with no yields: a one-shot thread.
                self.terminated = True
                return
            self._generator = result
        try:
            request = next(self._generator)
        except StopIteration:
            self.terminated = True
            return
        # Single-event waits dominate (clocked threads yielding a cached
        # posedge event every cycle) -- handle them inline.
        if request.__class__ is Event:
            request.dynamic_waiters.append(self)
            waiting.append(request)
            return
        self._apply_wait(request, simulator)

    def _apply_wait(self, request: WaitRequest, simulator: "Simulator") -> None:
        if request is None:
            # wait(): static sensitivity (already subscribed).
            if not self.sensitivity:
                raise SyscError(
                    f"thread {self.name!r} waits on empty static sensitivity"
                )
            return
        if isinstance(request, Event):
            request.dynamic_waiters.append(self)
            self._waiting_on.append(request)
            return
        if isinstance(request, int):
            if request < 0:
                raise SyscError(f"negative wait time in {self.name!r}")
            timer = self._timer
            if timer is None or simulator.time < self._timer_fires_at:
                # No timer yet, or the previous timed wait was
                # abandoned by an early wake and its heap entry is
                # still pending: that event would double-fire, so it
                # is dropped and a fresh one takes its place.
                timer = self._timer = Event(f"{self.name}.timeout", simulator)
            delay = max(request, 1)
            self._timer_fires_at = simulator.time + delay
            timer.dynamic_waiters.append(self)
            self._waiting_on.append(timer)
            simulator._notify_timed_fast(timer, delay)
            return
        if isinstance(request, (tuple, list)):
            for event in request:
                if not isinstance(event, Event):
                    raise SyscError(
                        f"thread {self.name!r} yielded a non-event in a wait list"
                    )
                event.dynamic_waiters.append(self)
            self._waiting_on.extend(request)
            return
        raise SyscError(
            f"thread {self.name!r} yielded unsupported wait request {request!r}"
        )

    def _unsubscribe(self) -> None:
        waiting = self._waiting_on
        if not waiting:
            return
        for event in waiting:
            if self in event.dynamic_waiters:
                event.dynamic_waiters.remove(self)
        self._waiting_on = []

    def kill(self) -> None:
        self._unsubscribe()
        if self._generator is not None:
            self._generator.close()
        self.terminated = True
