"""A SystemC-like discrete-event simulation kernel in pure Python.

The reproduction's substitute for OSCI SystemC 2.0 (paper Section 2.2):
an event-driven scheduler with delta cycles, signals with
evaluate/update semantics, generator-based SC_THREADs and SC_METHODs
with static/dynamic sensitivity, clocks, modules/ports, four-valued
logic, bus interfaces, VCD tracing and severity-based reporting.
"""

from .bus import (
    ArbiterIf,
    BlockingBusIf,
    BusMode,
    BusStatistics,
    BusStatus,
    NonBlockingBusIf,
    Transaction,
    TxnIdAllocator,
)
from .clock import Clock
from .datatypes import Bit, BitVector, Logic, logic_vector
from .errors import (
    BindingError,
    DeltaCycleLimitExceeded,
    ElaborationError,
    SimulationStopped,
    SyscError,
)
from .event import Event
from .kernel import KernelStats, Simulator
from .module import In, Module, Out, Port
from .process_ import MethodProcess, ProcessKind, ThreadProcess
from .report import Report, ReportHandler, Severity
from .signal import Signal
from .time_ import MS, NS, PS, US, format_time, ms, ns, ps, us
from .trace import VcdTracer

__all__ = [
    "ArbiterIf",
    "BlockingBusIf",
    "BusMode",
    "BusStatistics",
    "BusStatus",
    "NonBlockingBusIf",
    "Transaction",
    "TxnIdAllocator",
    "Clock",
    "Bit",
    "BitVector",
    "Logic",
    "logic_vector",
    "BindingError",
    "DeltaCycleLimitExceeded",
    "ElaborationError",
    "SimulationStopped",
    "SyscError",
    "Event",
    "KernelStats",
    "Simulator",
    "In",
    "Module",
    "Out",
    "Port",
    "MethodProcess",
    "ProcessKind",
    "ThreadProcess",
    "Report",
    "ReportHandler",
    "Severity",
    "Signal",
    "MS",
    "NS",
    "PS",
    "US",
    "format_time",
    "ms",
    "ns",
    "ps",
    "us",
    "VcdTracer",
]
