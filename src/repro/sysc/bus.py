"""Generic bus interfaces and transaction records.

The SystemC 2.0 distribution ships a Master/Slave bus library whose
masters talk to the bus through *blocking* (burst, the caller waits for
completion) and *non-blocking* (single word, status polled) interfaces;
the paper's second case study "represents a more generic bus structure
including a set of Masters, a set of slaves, an arbiter and a shared
bus" with exactly those two modes (Section 4.1).

This module holds the mode-agnostic pieces: transaction records, status
codes, the abstract interfaces, and a small bookkeeping helper for
per-master statistics.  The concrete bus/arbiter/master/slave modules
live in :mod:`repro.models.master_slave.systemc_model`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class BusStatus(enum.Enum):
    """Status of a (non-blocking) bus request."""

    IDLE = "idle"
    REQUEST = "request"
    WAIT = "wait"
    OK = "ok"
    ERROR = "error"


class BusMode(enum.Enum):
    """The two transfer modes of the Master/Slave bus (paper 4.1):
    blocking moves bursts, non-blocking moves single words."""

    BLOCKING = "blocking"
    NON_BLOCKING = "non_blocking"


class TxnIdAllocator:
    """Hands out stable, per-system transaction identifiers.

    Scoreboards and monitors correlate out-of-order completions by
    ``txn_id``, so ids must be deterministic for a given seed: each
    system model owns one allocator (never a process-global counter,
    which would leak ids across scenarios run in the same process).
    Ids are allocated at *issue* time, so the id order is the issue
    order even when completions reorder.
    """

    __slots__ = ("_next",)

    def __init__(self, first: int = 0):
        self._next = first

    def allocate(self) -> int:
        allocated = self._next
        self._next += 1
        return allocated

    @property
    def issued(self) -> int:
        """How many ids were handed out so far."""
        return self._next


@dataclass
class Transaction:
    """One bus transaction as observed by monitors and scoreboards."""

    master: str
    address: int
    is_write: bool
    data: Tuple[int, ...] = ()
    mode: BusMode = BusMode.NON_BLOCKING
    start_cycle: int = -1
    end_cycle: int = -1
    status: BusStatus = BusStatus.IDLE
    #: stable per-system identifier assigned at issue time (see
    #: :class:`TxnIdAllocator`); -1 means "never assigned".
    txn_id: int = -1

    @property
    def burst_length(self) -> int:
        return max(len(self.data), 1)

    @property
    def latency(self) -> int:
        if self.start_cycle < 0 or self.end_cycle < 0:
            return -1
        return self.end_cycle - self.start_cycle

    def __str__(self) -> str:
        direction = "W" if self.is_write else "R"
        return (
            f"{self.master} {direction}@{self.address:#06x} "
            f"x{self.burst_length} [{self.status.value}]"
        )

    def describe(self) -> str:
        """Full correlation record (used by scoreboards and reports)."""
        direction = "W" if self.is_write else "R"
        words = ",".join(f"{w:#x}" for w in self.data)
        return (
            f"txn#{self.txn_id} {self.master} {direction}@{self.address:#06x} "
            f"x{self.burst_length} cycles[{self.start_cycle}..{self.end_cycle}] "
            f"({self.mode.value}, {self.status.value}) data=[{words}]"
        )

    def to_json(self) -> dict:
        """Lossless wire form (checkpoints, remote dispatch)."""
        return {
            "master": self.master,
            "address": self.address,
            "is_write": self.is_write,
            "data": list(self.data),
            "mode": self.mode.value,
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "status": self.status.value,
            "txn_id": self.txn_id,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "Transaction":
        return cls(
            master=doc["master"],
            address=doc["address"],
            is_write=doc["is_write"],
            data=tuple(doc["data"]),
            mode=BusMode(doc["mode"]),
            start_cycle=doc["start_cycle"],
            end_cycle=doc["end_cycle"],
            status=BusStatus(doc["status"]),
            txn_id=doc["txn_id"],
        )


class BlockingBusIf:
    """Blocking (burst) interface: the caller's thread waits until the
    transfer completes.  Mirrors ``sc_bus``'s ``burst_read``/``burst_write``."""

    def burst_read(self, master_id: int, address: int, length: int):
        """Generator: yields until done, then returns the data tuple."""
        raise NotImplementedError

    def burst_write(self, master_id: int, address: int, data: Tuple[int, ...]):
        """Generator: yields until the burst is fully written."""
        raise NotImplementedError


class NonBlockingBusIf:
    """Non-blocking (single word) interface: request now, poll status."""

    def read(self, master_id: int, address: int) -> BusStatus:
        raise NotImplementedError

    def write(self, master_id: int, address: int, data: int) -> BusStatus:
        raise NotImplementedError

    def get_status(self, master_id: int) -> BusStatus:
        raise NotImplementedError

    def get_data(self, master_id: int) -> Optional[int]:
        raise NotImplementedError


class ArbiterIf:
    """Bus-side arbiter interface: pick one pending request."""

    def arbitrate(self, requests: List[int]) -> Optional[int]:
        """Return the winning master id (or None when nothing pends)."""
        raise NotImplementedError


@dataclass
class BusStatistics:
    """Aggregate counters a bus keeps for reporting and benchmarks."""

    transactions: int = 0
    reads: int = 0
    writes: int = 0
    words_moved: int = 0
    wait_cycles: int = 0
    arbitration_rounds: int = 0
    per_master: dict = field(default_factory=dict)

    def record(self, transaction: Transaction) -> None:
        self.transactions += 1
        if transaction.is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.words_moved += transaction.burst_length
        entry = self.per_master.setdefault(
            transaction.master, {"transactions": 0, "words": 0}
        )
        entry["transactions"] += 1
        entry["words"] += transaction.burst_length

    def summary(self) -> str:
        return (
            f"{self.transactions} transactions ({self.reads} R / "
            f"{self.writes} W), {self.words_moved} words, "
            f"{self.wait_cycles} wait cycles, "
            f"{self.arbitration_rounds} arbitration rounds"
        )
