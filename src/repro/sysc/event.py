"""Events: the primitive the SystemC core language is built on.

"The core language consists of an event-driven simulator as the base.
It works with events and processes." (paper, Section 2.2)

An :class:`Event` can be notified immediately (within the current
evaluation phase), as a *delta* notification (wakes waiters in the next
delta cycle) or at a future simulation time.  Processes wait on events
either statically (sensitivity lists) or dynamically (``yield event``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:
    from .kernel import Simulator
    from .process_ import Process


class Event:
    """A named notification channel."""

    __slots__ = (
        "name",
        "simulator",
        "static_waiters",
        "dynamic_waiters",
        "_scheduled_at",
    )

    def __init__(self, name: str = "event", simulator: "Simulator | None" = None):
        self.name = name
        self.simulator = simulator
        #: processes statically sensitive to this event
        self.static_waiters: List["Process"] = []
        #: processes dynamically waiting (cleared on each notify)
        self.dynamic_waiters: List["Process"] = []
        #: pending timed notification (kernel bookkeeping)
        self._scheduled_at: Optional[int] = None

    def attach(self, simulator: "Simulator") -> None:
        self.simulator = simulator

    # -- notification ---------------------------------------------------------

    def notify(self, delay: Optional[int] = None) -> None:
        """Notify now (``delay=None`` means *delta* notification,
        ``delay=0`` means immediate, ``delay>0`` means timed).

        This mirrors SystemC's ``notify()`` overloads: immediate
        notification can starve evaluation order, so delta is the
        default here.
        """
        if self.simulator is None:
            raise RuntimeError(f"event {self.name!r} is not attached to a simulator")
        if delay is None:
            self.simulator._notify_delta(self)
        elif delay == 0:
            self.simulator._notify_immediate(self)
        else:
            self.simulator._notify_timed(self, delay)

    def cancel(self) -> None:
        """Cancel a pending timed notification."""
        if self.simulator is not None:
            self.simulator._cancel_timed(self)

    # -- kernel bookkeeping -------------------------------------------------------

    def _collect_waiters(self) -> List["Process"]:
        """All processes to wake; clears the dynamic list.

        With no static waiters (the common case: dynamic ``yield``
        waits on clock edges and timers) the dynamic list itself is
        handed over and replaced, avoiding a copy per notification.
        """
        dynamic = self.dynamic_waiters
        if not self.static_waiters:
            if dynamic:
                self.dynamic_waiters = []
            return dynamic
        waiters = list(self.static_waiters)
        if dynamic:
            waiters.extend(dynamic)
            self.dynamic_waiters = []
        return waiters

    def __repr__(self) -> str:
        return f"Event({self.name!r})"
