"""Simulation time.

Time is kept as an integer count of picoseconds (SystemC's default
resolution is 1 ps), so arithmetic is exact.  Helpers construct times
in the usual units:

>>> ns(10)
10000
>>> us(1) == ns(1000)
True
"""

from __future__ import annotations

#: One picosecond: the kernel's time resolution.
PS = 1
#: Nanosecond / microsecond / millisecond in kernel units.
NS = 1_000
US = 1_000_000
MS = 1_000_000_000


def ps(amount: float) -> int:
    return int(amount * PS)


def ns(amount: float) -> int:
    return int(amount * NS)


def us(amount: float) -> int:
    return int(amount * US)


def ms(amount: float) -> int:
    return int(amount * MS)


def format_time(time: int) -> str:
    """Human-readable rendering with the largest exact unit."""
    for unit, label in ((MS, "ms"), (US, "us"), (NS, "ns")):
        if time >= unit and time % unit == 0:
            return f"{time // unit} {label}"
        if time >= unit:
            return f"{time / unit:.3f} {label}"
    return f"{time} ps"
