"""Waveform tracing: a minimal VCD writer.

Attach signals, hook the tracer to the simulator, and every committed
change lands in a standard Value Change Dump readable by GTKWave --
handy when a counterexample from the FSM level is replayed at the
SystemC level.
"""

from __future__ import annotations

from typing import IO, Dict, List, Optional

from ..asm.types import BitVector
from .datatypes import Logic
from .kernel import Simulator
from .signal import Signal


class VcdTracer:
    """Records signal changes into VCD text."""

    _ID_ALPHABET = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"

    def __init__(self, simulator: Simulator, timescale: str = "1ps"):
        self.simulator = simulator
        self.timescale = timescale
        self._signals: List[Signal] = []
        self._ids: Dict[int, str] = {}
        self._last: Dict[int, object] = {}
        self._body: List[str] = []
        self._last_time: Optional[int] = None
        simulator.on_delta.append(self._sample)

    def trace(self, signal: Signal) -> None:
        """Register a signal for tracing (before the run starts)."""
        if id(signal) in self._ids:
            return
        self._ids[id(signal)] = self._make_id(len(self._signals))
        self._signals.append(signal)

    def _make_id(self, index: int) -> str:
        alphabet = self._ID_ALPHABET
        if index < len(alphabet):
            return alphabet[index]
        return alphabet[index // len(alphabet)] + alphabet[index % len(alphabet)]

    # -- sampling -------------------------------------------------------------

    def _sample(self, simulator: Simulator) -> None:
        stamped = False
        for signal in self._signals:
            value = signal.read()
            key = id(signal)
            if self._last.get(key, _UNSET) == value:
                continue
            self._last[key] = value
            if not stamped and self._last_time != simulator.time:
                self._body.append(f"#{simulator.time}")
                self._last_time = simulator.time
                stamped = True
            self._body.append(self._format_change(signal, value))

    def _format_change(self, signal: Signal, value: object) -> str:
        identifier = self._ids[id(signal)]
        if isinstance(value, bool):
            return f"{int(value)}{identifier}"
        if isinstance(value, Logic):
            return f"{value.value.lower()}{identifier}"
        if isinstance(value, BitVector):
            return f"b{value.to_binary_string()} {identifier}"
        if isinstance(value, int):
            return f"b{value:b} {identifier}"
        return f"s{value} {identifier}"

    # -- output --------------------------------------------------------------------

    def _width_of(self, signal: Signal) -> int:
        value = signal.read()
        if isinstance(value, (bool, Logic)):
            return 1
        if isinstance(value, BitVector):
            return value.width
        return 32

    def dump(self) -> str:
        """The complete VCD document for the run so far."""
        lines = [
            "$date today $end",
            "$version repro.sysc VcdTracer $end",
            f"$timescale {self.timescale} $end",
            "$scope module top $end",
        ]
        for signal in self._signals:
            identifier = self._ids[id(signal)]
            name = signal.name.replace(" ", "_")
            lines.append(
                f"$var wire {self._width_of(signal)} {identifier} {name} $end"
            )
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        lines.append("$dumpvars")
        for signal in self._signals:
            lines.append(self._format_change(signal, signal.read()))
        lines.append("$end")
        lines.extend(self._body)
        return "\n".join(lines) + "\n"

    def write(self, stream: IO[str]) -> None:
        stream.write(self.dump())


_UNSET = object()
