"""ASM -> SystemC translation (rules R1-R3) and PSL -> C# monitors.

Section 2.2.2 of the paper defines a purely syntactic translation from
the verified ASM model to SystemC; Section 3.2 compiles the embedded
PSL properties to C# assertion monitors.  This package produces both
the *textual* artifacts (C++ translation units, C# monitor classes)
and the *runnable* equivalents on the Python kernel
(:class:`AsmSystemCModule`), plus the monitor/design binding checks.
"""

from .binding import (
    BindingPlan,
    BoundVariable,
    assert_bindings,
    make_extractor,
    validate_binding,
)
from .class_rules import (
    ModuleSpec,
    SignalSpec,
    ThreadSpec,
    translate_class,
    translate_model_classes,
)
from .csharp_gen import render_monitor_class, render_monitor_suite
from .runtime import (
    AsmSystemCModule,
    FirstEnabledPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    build_runtime,
)
from .systemc_gen import render_module, render_sc_main, render_translation_unit
from .type_rules import (
    TYPE_RULES,
    TypeRule,
    cpp_literal,
    cpp_type_for,
    csharp_literal,
    csharp_type_for,
    rule_by_name,
    rule_for_value,
)

__all__ = [
    "BindingPlan",
    "BoundVariable",
    "assert_bindings",
    "make_extractor",
    "validate_binding",
    "ModuleSpec",
    "SignalSpec",
    "ThreadSpec",
    "translate_class",
    "translate_model_classes",
    "render_monitor_class",
    "render_monitor_suite",
    "AsmSystemCModule",
    "FirstEnabledPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "SchedulingPolicy",
    "build_runtime",
    "render_module",
    "render_sc_main",
    "render_translation_unit",
    "TYPE_RULES",
    "TypeRule",
    "cpp_literal",
    "cpp_type_for",
    "csharp_literal",
    "csharp_type_for",
    "rule_by_name",
    "rule_for_value",
]
