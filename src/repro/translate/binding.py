"""Monitor <-> design binding (paper Section 3.2, steps 1 and 3).

"Most of the effort is spent in updating the SystemC design to get it
connected [to] the assertion monitor.  For instance, we validate the
assertion syntactically by generating the list of its involved
variables.  Then, we perform a type check to make sure the variables
are well instantiated in the SystemC design. ... This transformation
does not affect the behavior of the code as it will only be accessed
in a read-only mode."

:func:`validate_binding` performs the variable/type check;
:class:`BindingPlan` carries the result and builds the read-only
letter extractor the runtime monitors sample each clock cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

from ..psl.ast_nodes import Directive, Property
from ..psl.errors import PslTypeError
from .runtime import AsmSystemCModule


@dataclass(frozen=True)
class BoundVariable:
    """One assertion variable resolved onto a design signal."""

    name: str
    signal_name: str
    python_type: str


@dataclass
class BindingPlan:
    """The validated read-only view a monitor gets of the design."""

    property_name: str
    variables: Tuple[BoundVariable, ...]
    missing: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.missing

    def describe(self) -> str:
        lines = [f"binding for {self.property_name!r}:"]
        lines.extend(
            f"  {v.name} -> {v.signal_name} ({v.python_type}, read-only)"
            for v in self.variables
        )
        lines.extend(f"  MISSING: {name}" for name in self.missing)
        return "\n".join(lines)


def validate_binding(
    source: Property | Directive,
    module: AsmSystemCModule,
) -> BindingPlan:
    """Check every assertion variable exists in the translated design."""
    prop = source.prop if isinstance(source, Directive) else source
    letter = module.letter()
    bound: List[BoundVariable] = []
    missing: List[str] = []
    for name in sorted(prop.variables()):
        if name in letter:
            qualified = name if "." in name else _qualify(name, module)
            bound.append(
                BoundVariable(
                    name=name,
                    signal_name=qualified,
                    python_type=type(letter[name]).__name__,
                )
            )
        else:
            missing.append(name)
    return BindingPlan(
        property_name=prop.name,
        variables=tuple(bound),
        missing=tuple(missing),
    )


def _qualify(bare: str, module: AsmSystemCModule) -> str:
    for key in module.state_signals:
        if key.endswith(f".{bare}"):
            return key
    for key in module.action_signals:
        if key.endswith(f".{bare}"):
            return key
    return bare


def assert_bindings(
    directives: Sequence[Property | Directive],
    module: AsmSystemCModule,
) -> List[BindingPlan]:
    """Validate a suite; raise on the first unresolvable variable."""
    plans = []
    for directive in directives:
        plan = validate_binding(directive, module)
        if not plan.ok:
            raise PslTypeError(
                f"assertion {plan.property_name!r} references design "
                f"variables that do not exist: {list(plan.missing)}"
            )
        plans.append(plan)
    return plans


def make_extractor(module: AsmSystemCModule) -> Callable[[], Mapping[str, Any]]:
    """The read-only letter provider monitors sample every cycle."""

    def extract() -> Mapping[str, Any]:
        return module.letter()

    return extract
