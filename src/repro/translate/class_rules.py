"""Rules R2.1/R2.2 (C++): class translation.

* R2.1 "Class Members are translated into SystemC signals having the
  same basic type.  For e.g., ``var m_val as Integer`` is translated to
  ``sc_signal<int> m_val``."
* R2.2 "Class Methods in ASM contain two parts, first one defining the
  post-/pre-conditions for its execution and the method itself.  The
  first part is integrated in the SystemC module's constructor [as
  SC_THREAD + sensitivity]; the method itself is integrated as it is."

The translator inspects an :class:`~repro.asm.machine.AsmMachine`
subclass and produces a :class:`ModuleSpec` intermediate form that the
C++ generator renders and the runtime builder executes.
"""

from __future__ import annotations

import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple, Type

from ..asm.machine import AsmMachine
from .type_rules import cpp_literal, cpp_type_for


@dataclass(frozen=True)
class SignalSpec:
    """One translated member (rule R2.1)."""

    name: str
    cpp_type: str
    initial: Any

    def declaration(self) -> str:
        return f"sc_signal<{self.cpp_type}> {self.name};"


@dataclass(frozen=True)
class ThreadSpec:
    """One translated method (rule R2.2)."""

    name: str
    sensitivity: Tuple[str, ...]
    preconditions: Tuple[str, ...]
    body_source: str

    def constructor_lines(self) -> List[str]:
        """The SC_THREAD + sensitivity lines inserted into the module
        constructor (the paper's ``SC_THREAD(Send); sensitive << clk;``)."""
        lines = [f"SC_THREAD({self.name});"]
        if self.sensitivity:
            lines.append("sensitive << " + " << ".join(self.sensitivity) + ";")
        return lines


@dataclass
class ModuleSpec:
    """A translated ASM class, ready for rendering / runtime building."""

    name: str
    signals: List[SignalSpec] = field(default_factory=list)
    threads: List[ThreadSpec] = field(default_factory=list)
    source_class: Type[AsmMachine] | None = None

    def signal(self, name: str) -> SignalSpec:
        for spec in self.signals:
            if spec.name == name:
                return spec
        raise KeyError(name)


def _extract_preconditions(source: str) -> Tuple[str, ...]:
    """Pull the ``require(...)`` argument texts out of an action body."""
    found: List[str] = []
    for raw_line in source.splitlines():
        line = raw_line.strip()
        if not line.startswith("require(") and not line.startswith("require ("):
            continue
        inner = line[line.index("(") + 1:]
        depth = 1
        collected = []
        for char in inner:
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
                if depth == 0:
                    break
            collected.append(char)
        text = "".join(collected).strip()
        # Drop a trailing ", message" argument.
        if text.rfind(",") > 0:
            head, _, tail = text.rpartition(",")
            if tail.strip().startswith(("'", '"')):
                text = head.strip()
        found.append(text)
    return tuple(found)


def _sensitivity_from_preconditions(
    preconditions: Tuple[str, ...], member_names: List[str]
) -> Tuple[str, ...]:
    """Rule R2.2: the precondition names the signals the thread is
    sensitive to (e.g. ``require clk = true`` -> ``sensitive << clk``)."""
    sensitive: List[str] = []
    for text in preconditions:
        for member in member_names:
            if member in text and member not in sensitive:
                sensitive.append(member)
    return tuple(sensitive)


def translate_class(machine_class: Type[AsmMachine]) -> ModuleSpec:
    """Apply rules R2.1/R2.2 to one ASM machine class."""
    spec = ModuleSpec(name=machine_class.__name__, source_class=machine_class)

    member_names: List[str] = []
    for var_name, var in machine_class.declared_state_vars().items():
        spec.signals.append(
            SignalSpec(
                name=var_name,
                cpp_type=cpp_type_for(var.default),
                initial=var.default,
            )
        )
        member_names.append(var_name)

    for action_name in machine_class.declared_actions():
        method = getattr(machine_class, action_name)
        unwrapped = inspect.unwrap(method)
        try:
            source = textwrap.dedent(inspect.getsource(unwrapped))
        except (OSError, TypeError):
            source = f"def {action_name}(self): ...  # source unavailable"
        preconditions = _extract_preconditions(source)
        spec.threads.append(
            ThreadSpec(
                name=action_name,
                sensitivity=_sensitivity_from_preconditions(
                    preconditions, member_names
                ),
                preconditions=preconditions,
                body_source=source,
            )
        )
    return spec


def translate_model_classes(
    machine_classes: List[Type[AsmMachine]],
) -> Dict[str, ModuleSpec]:
    """Translate a set of classes (one ModuleSpec each)."""
    return {cls.__name__: translate_class(cls) for cls in machine_classes}
