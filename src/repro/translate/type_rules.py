"""Rule R1 (C++): basic type mapping.

"ASM basic types are all mapped to their equivalent SystemC types
(e.g. Integer to int, Byte to unsigned char, etc.).  AsmL includes the
same types as C++ which are used for SystemC also." (paper, 2.2.2)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Type

from ..asm.types import Bit, BitVector, Byte
from ..sysc.datatypes import Logic


@dataclass(frozen=True)
class TypeRule:
    """One row of the R1 mapping table."""

    asm_name: str
    python_type: Optional[Type]
    cpp_type: str
    csharp_type: str
    default_literal: str

    def matches(self, value: Any) -> bool:
        if self.python_type is None:
            return False
        if self.python_type is bool:
            return isinstance(value, bool)
        if self.python_type is int:
            return isinstance(value, int) and not isinstance(value, bool)
        return isinstance(value, self.python_type)


#: The R1 table.  Order matters: bool before int (bool is an int in
#: Python), Byte before int.
TYPE_RULES: tuple[TypeRule, ...] = (
    TypeRule("Boolean", bool, "bool", "bool", "false"),
    TypeRule("Byte", Byte, "unsigned char", "byte", "0"),
    TypeRule("Integer", int, "int", "int", "0"),
    TypeRule("Bit", Bit, "sc_logic", "bool", "SC_LOGIC_0"),
    TypeRule("BitVector", BitVector, "sc_bv<%d>", "ulong", "0"),
    TypeRule("Logic", Logic, "sc_logic", "char", "SC_LOGIC_X"),
    TypeRule("String", str, "std::string", "string", '""'),
    TypeRule("Real", float, "double", "double", "0.0"),
)

_BY_NAME: Dict[str, TypeRule] = {rule.asm_name: rule for rule in TYPE_RULES}


def rule_for_value(value: Any) -> TypeRule:
    """Find the R1 row for a concrete ASM value (enums map to int)."""
    for rule in TYPE_RULES:
        if rule.matches(value):
            return rule
    import enum

    if isinstance(value, enum.Enum):
        return _BY_NAME["Integer"]
    # Collections and unknown objects are carried as opaque ints in the
    # generated C++ (they do not appear in the paper's designs).
    return _BY_NAME["Integer"]


def rule_by_name(asm_name: str) -> TypeRule:
    return _BY_NAME[asm_name]


def cpp_type_for(value: Any) -> str:
    """The C++/SystemC type of a value (rule R1)."""
    rule = rule_for_value(value)
    if rule.asm_name == "BitVector" and isinstance(value, BitVector):
        return rule.cpp_type % value.width
    return rule.cpp_type


def cpp_literal(value: Any) -> str:
    """Render a value as a C++ literal."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, BitVector):
        return f"\"{value.to_binary_string()}\""
    if isinstance(value, Logic):
        return f"SC_LOGIC_{value.value}" if value.is_known() else "SC_LOGIC_X"
    if isinstance(value, str):
        return f"\"{value}\""
    import enum

    if isinstance(value, enum.Enum):
        index = list(type(value)).index(value)
        return f"{index} /* {value.name} */"
    return repr(value)


def csharp_type_for(value: Any) -> str:
    return rule_for_value(value).csharp_type


def csharp_literal(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return f"\"{value}\""
    if isinstance(value, BitVector):
        return f"0b{value.to_binary_string()}"
    import enum

    if isinstance(value, enum.Enum):
        return str(list(type(value)).index(value))
    return repr(value)
