"""Runnable SystemC models built mechanically from ASM models.

This is the executable counterpart of the C++ text generator: given a
verified :class:`~repro.asm.machine.AsmModel`, build a
:class:`~repro.sysc.module.Module` whose

* signals mirror every machine state variable (rule R2.1) plus one
  boolean *activity* signal per action (``<machine>.<action>`` pulses
  true in the cycle the action fires -- the observation convention the
  UML-extracted properties use),
* single clocked thread executes one enabled ASM action per clock
  cycle (rule R2.2's guarded execution; the round-robin policy
  resolves the nondeterminism that exploration enumerates).

Because the thread runs the *same* ASM actions the explorer ran, the
simulation traces are by construction a subset of the explored
behaviour -- the semantic-preservation property the translation rules
exist for, checked in the integration tests.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence

from ..asm.errors import RequirementFailure
from ..asm.machine import ActionCall, AsmModel
from ..sysc.clock import Clock
from ..sysc.kernel import Simulator
from ..sysc.module import Module
from ..sysc.signal import Signal


class SchedulingPolicy:
    """Chooses which enabled action fires in a cycle."""

    name = "abstract"

    def choose(self, enabled: List[ActionCall], cycle: int) -> Optional[ActionCall]:
        raise NotImplementedError


class RoundRobinPolicy(SchedulingPolicy):
    """Rotate through candidates so every action gets bus time."""

    name = "round_robin"

    def __init__(self):
        self._cursor = 0

    def choose(self, enabled: List[ActionCall], cycle: int) -> Optional[ActionCall]:
        if not enabled:
            return None
        choice = enabled[self._cursor % len(enabled)]
        self._cursor += 1
        return choice


class FirstEnabledPolicy(SchedulingPolicy):
    """Always fire the first enabled candidate (deterministic priority)."""

    name = "first_enabled"

    def choose(self, enabled: List[ActionCall], cycle: int) -> Optional[ActionCall]:
        return enabled[0] if enabled else None


class RandomPolicy(SchedulingPolicy):
    """Pseudo-random choice with a fixed seed (reproducible stress)."""

    name = "random"

    def __init__(self, seed: int = 2005):
        import random

        self._random = random.Random(seed)

    def choose(self, enabled: List[ActionCall], cycle: int) -> Optional[ActionCall]:
        if not enabled:
            return None
        return enabled[self._random.randrange(len(enabled))]


class AsmSystemCModule(Module):
    """The translated design: an ASM model driven by a clock."""

    def __init__(
        self,
        name: str,
        simulator: Simulator,
        clock: Clock,
        asm_model: AsmModel,
        policy: SchedulingPolicy | None = None,
        candidate_filter: Optional[Callable[[ActionCall], bool]] = None,
    ):
        super().__init__(name, simulator)
        self.clock = clock
        self.asm_model = asm_model
        self.policy = policy or RoundRobinPolicy()
        if not asm_model.sealed:
            asm_model.seal()

        self.candidates: List[ActionCall] = list(asm_model.candidate_calls())
        if candidate_filter is not None:
            self.candidates = [c for c in self.candidates if candidate_filter(c)]

        #: state-variable signals, keyed "machine.variable" (rule R2.1)
        self.state_signals: Dict[str, Signal] = {}
        for machine_name in sorted(asm_model.machines):
            machine = asm_model.machines[machine_name]
            for var_name, value in machine.state_items():
                key = f"{machine_name}.{var_name}"
                self.state_signals[key] = self.signal(value, key)

        #: action-activity signals, keyed "machine.action"
        self.action_signals: Dict[str, Signal] = {}
        for call in asm_model.candidate_calls():
            key = f"{call.machine}.{call.action}"
            if key not in self.action_signals:
                self.action_signals[key] = self.signal(False, key)

        self.cycle = 0
        self.executed: List[ActionCall] = []
        self.idle_cycles = 0
        self.thread(self._step_loop, name="asm_step")

    # -- the guarded-execution thread (rule R2.2) ------------------------------

    def _step_loop(self):
        while True:
            yield self.clock.posedge()
            self.cycle += 1
            enabled: List[ActionCall] = []
            snapshot = self.asm_model.full_state()
            for call in self.candidates:
                ok, _ = self.asm_model.try_execute(call)
                if ok:
                    enabled.append(call)
                    self.asm_model.restore(snapshot)
            choice = self.policy.choose(enabled, self.cycle)
            fired: Optional[str] = None
            if choice is not None:
                try:
                    self.asm_model.execute(choice)
                    self.executed.append(choice)
                    fired = f"{choice.machine}.{choice.action}"
                except RequirementFailure:  # pragma: no cover - raced guard
                    pass
            else:
                self.idle_cycles += 1
            self._publish(fired)

    def _publish(self, fired: Optional[str]) -> None:
        """Mirror the ASM state onto the signals (update phase commits)."""
        for machine_name in sorted(self.asm_model.machines):
            machine = self.asm_model.machines[machine_name]
            for var_name, value in machine.state_items():
                self.state_signals[f"{machine_name}.{var_name}"].write(value)
        for key, signal in self.action_signals.items():
            signal.write(key == fired)

    # -- monitor-facing letter extraction ---------------------------------------

    def letter(self) -> Dict[str, object]:
        """Current signal valuation (state + activity), both dot-qualified
        and bare names -- the namespace assertion monitors sample."""
        letter: Dict[str, object] = {}
        for key, signal in itertools.chain(
            self.state_signals.items(), self.action_signals.items()
        ):
            value = signal.read()
            letter[key] = value
            bare = key.split(".", 1)[1]
            letter[bare] = value
        return letter


def build_runtime(
    asm_model: AsmModel,
    clock_period: int = 30_000,  # 30 ns in ps: the PCI 33MHz ballpark
    policy: SchedulingPolicy | None = None,
    name: str | None = None,
) -> tuple[Simulator, Clock, AsmSystemCModule]:
    """One-call construction of the translated simulation."""
    simulator = Simulator(name or f"{asm_model.name}-sim")
    clock = Clock("clk", clock_period, simulator)
    module = AsmSystemCModule(
        name or f"{asm_model.name}_rtl",
        simulator,
        clock,
        asm_model,
        policy=policy,
    )
    return simulator, clock, module
