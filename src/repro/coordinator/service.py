"""The coordinator's core: worker registry, job queue, elastic dispatch.

Pure service objects with no HTTP in sight -- the daemon
(:mod:`.daemon`) is a thin wire adapter over :class:`Coordinator`, and
the elastic churn tests drive this layer directly with injected host
factories.

The pieces:

* :class:`WorkerRegistry` -- the live worker pool.  Workers register
  an address, heartbeat to stay live, and are pruned after
  ``stale_after`` seconds of silence; the registry builds one
  :class:`~repro.dispatch.http_host.CachingHttpHost` per worker (via
  an injectable factory) so spec uploads are cached per worker across
  jobs.
* :class:`Job` -- one submitted regression: a spec-list fingerprint,
  its seed set, a lifecycle status, and eventually the merged report
  (or the abort reason).
* :class:`Coordinator` -- ties them together.  ``submit`` answers from
  the persistent :class:`~.store.ResultStore` when the exact
  ``(fingerprint, seed set)`` ran before (digest re-verified on read),
  otherwise queues a job; ``run_next`` executes the oldest queued job
  over *whatever workers are live while it runs* -- the pool may grow
  (a worker registers mid-run and starts stealing shards) and shrink
  (a worker dies mid-shard; its shard is re-queued elsewhere) without
  changing the merged digest, because shard content is a pure function
  of the spec list and the merge re-sorts canonically.

Jobs are additionally *resumable*: every completed shard's report is
checkpointed to the :class:`~.store.ShardStore` as it lands, so a job
that dies mid-run (every worker gone, daemon killed) picks up from its
last completed shard on resubmission -- checkpointed shards are
pre-completed from disk, only the remainder is dispatched, and the
merged digest is byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from collections import deque

from ..dispatch.dispatcher import DispatchError, ShardQueue, merge_reports
from ..dispatch.hosts import Host, HostFailure, ShardWork
from ..dispatch.http_host import CachingHttpHost
from ..dispatch.planner import (
    OVERSUBSCRIPTION,
    plan_shards,
    specs_fingerprint,
)
from ..obs.metrics import MetricsRegistry
from ..obs.runtime import OBS
from ..scenarios.regression import RegressionReport, ScenarioSpec
from .store import ResultStore, ShardStore

#: Failure kinds that mean "the worker itself is gone", retiring it
#: from the pool, as opposed to "this shard's run went wrong on an
#: otherwise healthy worker" (non-200, garbage-json, digest-mismatch,
#: bad-report), which only re-queues the shard.
FATAL_WORKER_KINDS = frozenset({"refused", "reset", "timeout", "transport"})


class UnknownFingerprintError(KeyError):
    """A by-fingerprint submission referenced specs never uploaded here.

    The daemon maps this to a 404 whose body contains ``"unknown spec
    fingerprint"``; the client reacts by resubmitting with the spec
    list included.
    """


@dataclass
class WorkerRecord:
    """One registered worker: its transport plus liveness bookkeeping."""

    address: str
    host: Host
    version: str = ""
    registered_at: float = 0.0
    last_seen: float = 0.0
    shards_completed: int = 0


def _default_host_factory(
    address: str, token: Optional[str]
) -> CachingHttpHost:
    """Build the production transport for one worker address."""
    return CachingHttpHost(address, token=token)


class WorkerRegistry:
    """The live worker pool, fed by registrations and heartbeats.

    ``host_factory(address, token)`` is injectable so the elastic
    tests can register in-process fakes with controlled latency and
    failure behaviour; production uses
    :class:`~repro.dispatch.http_host.CachingHttpHost`.
    """

    def __init__(
        self,
        token: Optional[str] = None,
        stale_after: float = 10.0,
        host_factory: Optional[Callable[[str, Optional[str]], Host]] = None,
    ):
        self.token = token
        self.stale_after = stale_after
        self.joins = 0
        self.leaves = 0
        self._factory = host_factory or _default_host_factory
        self._workers: Dict[str, WorkerRecord] = {}
        self._lock = threading.Lock()

    def register(self, address: str, version: str = "") -> WorkerRecord:
        """Add (or refresh) a worker; re-registering is idempotent."""
        now = time.monotonic()
        with self._lock:
            record = self._workers.get(address)
            if record is None:
                record = WorkerRecord(
                    address=address,
                    host=self._factory(address, self.token),
                    version=version,
                    registered_at=now,
                )
                self._workers[address] = record
                self.joins += 1
            record.last_seen = now
            if version:
                record.version = version
            return record

    def heartbeat(self, address: str) -> bool:
        """Refresh a worker's liveness; False = unknown, re-register."""
        with self._lock:
            record = self._workers.get(address)
            if record is None:
                return False
            record.last_seen = time.monotonic()
            return True

    def deregister(self, address: str) -> bool:
        """Remove a worker (clean shutdown or dispatch-detected death)."""
        with self._lock:
            record = self._workers.pop(address, None)
            if record is not None:
                self.leaves += 1
            return record is not None

    def live(self) -> List[WorkerRecord]:
        """Current pool, pruning workers silent past ``stale_after``."""
        horizon = time.monotonic() - self.stale_after
        with self._lock:
            stale = [
                address
                for address, record in self._workers.items()
                if record.last_seen < horizon
            ]
            for address in stale:
                del self._workers[address]
                self.leaves += 1
            return list(self._workers.values())

    def to_json(self) -> List[Dict[str, Any]]:
        """Status-endpoint view of the live pool."""
        now = time.monotonic()
        return [
            {
                "address": record.address,
                "version": record.version,
                "seconds_since_seen": round(now - record.last_seen, 3),
                "shards_completed": record.shards_completed,
            }
            for record in self.live()
        ]


#: Job lifecycle states, in order.
JOB_STATUSES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One submitted regression job and everything known about it."""

    job_id: str
    fingerprint: str
    seeds: Tuple[int, ...]
    n_specs: int
    status: str = "queued"
    from_cache: bool = False
    report_doc: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    dispatch: Dict[str, Any] = field(default_factory=dict)
    submitted_at: float = field(default_factory=time.time)

    def to_json(self) -> Dict[str, Any]:
        """The ``GET /jobs/<id>`` wire form."""
        return {
            "job": self.job_id,
            "status": self.status,
            "fingerprint": self.fingerprint,
            "seeds": list(self.seeds),
            "specs": self.n_specs,
            "from_cache": self.from_cache,
            "report": self.report_doc,
            "error": self.error,
            "dispatch": self.dispatch,
        }


class Coordinator:
    """Job queue + spec cache + result store over an elastic worker pool.

    One coordinator serves many clients: a spec list is uploaded once
    (keyed by :func:`~repro.dispatch.planner.specs_fingerprint`),
    submissions reference the fingerprint, repeat submissions are
    served straight from the :class:`~.store.ResultStore`.  Jobs run
    one at a time in submission order (the worker pool is the
    parallelism, not the job queue).
    """

    def __init__(
        self,
        store: ResultStore,
        registry: Optional[WorkerRegistry] = None,
        token: Optional[str] = None,
        max_attempts: int = 6,
        idle_timeout: float = 30.0,
        poll_interval: float = 0.05,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.store = store
        self.shard_store = ShardStore(os.path.join(store.root, "shards"))
        self.registry = registry or WorkerRegistry(token=token)
        self.max_attempts = max_attempts
        self.idle_timeout = idle_timeout
        self.poll_interval = poll_interval
        # the daemon's own registry, never the process-global OBS one
        self.metrics = metrics or MetricsRegistry(enabled=True)
        self.started_monotonic = time.monotonic()
        self._specs: Dict[str, List[ScenarioSpec]] = {}
        self._jobs: Dict[str, Job] = {}
        self._queue: Deque[Job] = deque()
        self._counter = 0
        self._lock = threading.Lock()

    # -- spec cache ---------------------------------------------------------------

    def put_specs(self, specs: Sequence[ScenarioSpec]) -> str:
        """Cache one spec list under its content fingerprint."""
        fingerprint = specs_fingerprint(specs)
        with self._lock:
            self._specs[fingerprint] = list(specs)
        return fingerprint

    def specs_for(self, fingerprint: str) -> List[ScenarioSpec]:
        """The cached list for a fingerprint, or the 404-class miss."""
        with self._lock:
            if fingerprint not in self._specs:
                raise UnknownFingerprintError(
                    f"unknown spec fingerprint {fingerprint} -- resubmit "
                    "the job with its specs included"
                )
            return self._specs[fingerprint]

    # -- submission ---------------------------------------------------------------

    def submit(
        self,
        fingerprint: Optional[str] = None,
        specs: Optional[Sequence[ScenarioSpec]] = None,
    ) -> Job:
        """Queue a regression (or answer it straight from the store).

        By-value submission (``specs`` given) populates the spec cache;
        by-reference submission (``fingerprint`` alone) requires an
        earlier upload and raises :class:`UnknownFingerprintError`
        otherwise.  A store hit returns an already-``done`` job with
        ``from_cache`` set -- no worker is touched and the stored
        report's digest was re-verified by the store read.
        """
        if specs is not None:
            actual = self.put_specs(specs)
            if fingerprint is not None and fingerprint != actual:
                raise ValueError(
                    f"submitted fingerprint {fingerprint} does not match "
                    f"spec content {actual}"
                )
            fingerprint = actual
        elif fingerprint is None:
            raise ValueError("submit needs a fingerprint or a spec list")
        else:
            specs = self.specs_for(fingerprint)
        seeds = tuple(sorted({spec.seed for spec in specs}))
        with self._lock:
            self._counter += 1
            job = Job(
                job_id=f"job-{self._counter:04d}-{fingerprint[:8]}",
                fingerprint=fingerprint,
                seeds=seeds,
                n_specs=len(specs),
            )
            self._jobs[job.job_id] = job
        self.metrics.counter("coordinator.jobs_submitted").inc()
        cached = self.store.fetch(fingerprint, seeds)
        if cached is not None:
            job.status = "done"
            job.from_cache = True
            job.report_doc = cached.to_json()
            self.metrics.counter("coordinator.jobs_from_store").inc()
            return job
        with self._lock:
            self._queue.append(job)
        return job

    def job(self, job_id: str) -> Job:
        """Look a job up by id (KeyError -> daemon 404)."""
        with self._lock:
            return self._jobs[job_id]

    def jobs(self) -> List[Job]:
        """Every job this coordinator has seen, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.job_id)

    # -- execution ----------------------------------------------------------------

    def run_next(self) -> Optional[Job]:
        """Run the oldest queued job to completion; None = queue empty."""
        with self._lock:
            if not self._queue:
                return None
            job = self._queue.popleft()
        self._run_job(job)
        return job

    def run_pending(self) -> int:
        """Drain the queue serially; returns how many jobs ran."""
        ran = 0
        while self.run_next() is not None:
            ran += 1
        return ran

    def _bytes_saved(self) -> int:
        """Fleet-wide spec-cache bytes avoided so far (best effort)."""
        return sum(
            getattr(record.host, "bytes_saved", 0)
            for record in self.registry.live()
        )

    def _run_job(self, job: Job) -> None:
        """Execute one job over the elastic pool (the tentpole loop).

        Shards are planned once from the cached spec list; serving
        threads are spawned for workers as they appear (including ones
        that register while the job is already running) and retire
        their worker on connection-class failures.  The monitor loop
        re-opens shards whose exclusions cover every live worker --
        the churn case the fixed-pool dispatcher never sees -- and
        aborts only after ``idle_timeout`` seconds with no live worker
        at all.
        """
        if OBS.enabled:
            with OBS.tracer.span(
                "coordinator.job", "coordinator", job=job.job_id,
                fingerprint=job.fingerprint, specs=job.n_specs,
            ) as span:
                self._run_job_inner(job)
                span.set(status=job.status, from_cache=job.from_cache)
            return
        self._run_job_inner(job)

    def _run_job_inner(self, job: Job) -> None:
        job.status = "running"
        started = time.perf_counter()
        specs = self.specs_for(job.fingerprint)
        live = self.registry.live()
        shard_count = max(
            1, min(len(specs), max(4, OVERSUBSCRIPTION * max(1, len(live))))
        )
        plan = plan_shards(specs, shard_count)
        shards = [shard for shard in plan if shard.specs]
        # Resume: shards whose completed report survived an earlier,
        # interrupted run of this exact (fingerprint, seeds, plan) are
        # pre-completed from the shard store instead of re-dispatched.
        # The plan is deterministic for a given live-pool size, so a
        # resubmission against the same pool reuses every checkpoint;
        # a different pool size replans and the stale entries simply
        # miss (and are pruned when the job completes).
        precompleted: List[Tuple[Any, RegressionReport]] = []
        remaining = []
        for shard in shards:
            cached = self.shard_store.fetch_shard(
                job.fingerprint, job.seeds, shard.index, shard.of
            )
            if cached is not None and len(cached.verdicts) == len(shard.specs):
                precompleted.append((shard, cached))
            else:
                remaining.append(shard)
        if precompleted:
            self.metrics.counter("coordinator.checkpoint.resume").inc()
            self.metrics.counter(
                "coordinator.checkpoint.shards_skipped"
            ).inc(len(precompleted))
        queue = ShardQueue(remaining, [], self.max_attempts)
        threads: Dict[str, threading.Thread] = {}
        dead: set = set()
        bytes_saved_before = self._bytes_saved()

        def serve(record: WorkerRecord) -> None:
            host = record.host
            prime = getattr(host, "prime", None)
            while True:
                pending = queue.take(host.name)
                if pending is None:
                    return
                work = ShardWork(
                    shard=pending.shard, spec_file="", workers=None
                )
                attempt_started = time.perf_counter()
                try:
                    if prime is not None:
                        prime(job.fingerprint, specs)
                    report = host.run_shard(work)
                except HostFailure as exc:
                    queue.fail(pending, host.name, exc.reason, kind=exc.kind)
                    if exc.kind in FATAL_WORKER_KINDS:
                        dead.add(host.name)
                        if self.registry.deregister(record.address):
                            self.metrics.counter(
                                "coordinator.worker_deaths"
                            ).inc()
                        return
                except Exception as exc:  # noqa: BLE001 -- a crashed serving thread must abort, not hang, the job
                    queue.abort(
                        DispatchError(
                            f"worker {host.name} crashed the coordinator on "
                            f"{pending.shard.label}: "
                            f"{type(exc).__name__}: {exc}"
                        )
                    )
                    return
                else:
                    if queue.complete(
                        pending,
                        host.name,
                        report,
                        wall_seconds=time.perf_counter() - attempt_started,
                    ):
                        record.shards_completed += 1
                        # Checkpoint the completed shard so a job
                        # interrupted later resumes past it.
                        self.shard_store.put_shard(
                            job.fingerprint,
                            job.seeds,
                            pending.shard.index,
                            pending.shard.of,
                            report,
                        )

        idle_since: Optional[float] = None
        while not queue.finished:
            live_names = set()
            for record in self.registry.live():
                name = record.host.name
                if name in dead:
                    continue
                live_names.add(name)
                if name not in threads:
                    queue.add_host(name)
                    thread = threading.Thread(
                        target=serve,
                        args=(record,),
                        name=f"coordinator-{name}",
                        daemon=True,
                    )
                    threads[name] = thread
                    thread.start()
            if live_names:
                idle_since = None
                queue.release_exclusions(live_names)
            else:
                if idle_since is None:
                    idle_since = time.monotonic()
                elif time.monotonic() - idle_since > self.idle_timeout:
                    queue.abort(
                        DispatchError(
                            f"no live workers for {self.idle_timeout:.0f}s "
                            f"with {job.job_id} incomplete -- register a "
                            "worker and resubmit"
                        )
                    )
                    break
            time.sleep(self.poll_interval)
        for thread in threads.values():
            thread.join(timeout=10)
        error = queue.error
        if error is not None:
            job.status = "failed"
            job.error = str(error)
            self.metrics.counter("coordinator.jobs_failed").inc()
            return
        results = queue.results(remaining)
        merged = merge_reports(
            [report for _, report in precompleted]
            + [report for _, report in results]
        )
        merged.wall_seconds = time.perf_counter() - started
        merged.workers = len(shards) or 1
        self.store.put(job.fingerprint, job.seeds, merged)
        self.shard_store.prune(job.fingerprint, job.seeds)
        saved_delta = max(0, self._bytes_saved() - bytes_saved_before)
        job.dispatch = {
            "shards": len(shards),
            "shards_resumed": len(precompleted),
            "hosts": sorted({run.host for run, _ in results}),
            "retries": sum(run.attempts - 1 for run, _ in results),
            "duplicates": queue.duplicates,
            "worker_joins": self.registry.joins,
            "worker_leaves": self.registry.leaves,
            "spec_cache_bytes_saved": saved_delta,
        }
        job.report_doc = merged.to_json()
        job.status = "done"
        self.metrics.counter("coordinator.jobs_completed").inc()
        self.metrics.counter("coordinator.shards_dispatched").inc(len(shards))
        self.metrics.counter("coordinator.spec_cache_bytes_saved").inc(
            saved_delta
        )
        self.metrics.histogram("coordinator.job_seconds").observe(
            merged.wall_seconds
        )

    # -- status -------------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """The ``GET /status`` document."""
        with self._lock:
            queued = len(self._queue)
            jobs = len(self._jobs)
            spec_lists = len(self._specs)
        return {
            "ok": True,
            "uptime_seconds": round(
                time.monotonic() - self.started_monotonic, 3
            ),
            "workers": self.registry.to_json(),
            "worker_joins": self.registry.joins,
            "worker_leaves": self.registry.leaves,
            "jobs": jobs,
            "jobs_queued": queued,
            "spec_lists_cached": spec_lists,
            "store_entries": self.store.entries(),
            "store_corruptions": self.store.corruptions,
            "shard_checkpoints": self.shard_store.entries(),
        }
