"""Regression-as-a-service: an elastic coordinator over the shard fleet.

The tier above :mod:`repro.dispatch`'s fixed-pool dispatcher.  Where
``ShardDispatcher`` is handed a host list and owns it for one
dispatch, the coordinator daemon (``python -m repro.coordinator``) is
long-lived and its pool is *elastic*: workers
(``python -m repro.dispatch.worker --coordinator URL``) register
themselves, heartbeat to stay in, and may join or die while a job is
mid-flight -- the merged
:class:`~repro.scenarios.regression.RegressionReport` digest stays
byte-identical to a serial run regardless, because shard content is a
pure function of the spec list and the merge re-sorts canonically.

Around that core, the service adds what a shared daemon needs:

* **spec caching** -- a regression's spec list crosses the wire once,
  keyed by :func:`~repro.dispatch.planner.specs_fingerprint`; jobs and
  worker shard requests then reference the 16-hex key,
* **a persistent result store** (:class:`~.store.ResultStore`) --
  repeat submissions of the same ``(fingerprint, seed set)`` are
  answered from disk with the digest re-verified on read,
* **shared-secret auth** -- one ``--token`` across coordinator,
  workers, and clients.

Three ways in: the daemon's HTTP API (:mod:`.daemon`, contract in
``docs/coordinator.md``), the blocking client
(:class:`~.client.CoordinatorClient`), and the workbench seam
(:class:`~.client.CoordinatorEngine`, i.e. ``regress(coordinator=URL)``
or ``python -m repro regress --coordinator URL``).
"""

from .client import CoordinatorClient, CoordinatorEngine, CoordinatorError
from .daemon import CoordinatorHandle, start_coordinator
from .service import (
    Coordinator,
    Job,
    UnknownFingerprintError,
    WorkerRegistry,
)
from .store import ResultStore, store_key

__all__ = [
    "Coordinator",
    "CoordinatorClient",
    "CoordinatorEngine",
    "CoordinatorError",
    "CoordinatorHandle",
    "Job",
    "ResultStore",
    "UnknownFingerprintError",
    "WorkerRegistry",
    "start_coordinator",
    "store_key",
]
