"""The coordinator daemon: ``python -m repro.coordinator --port N``.

A thin stdlib-HTTP adapter over :class:`~.service.Coordinator`.  One
long-lived daemon fronts an elastic worker fleet: workers self-register
and heartbeat, clients submit regression jobs and poll for the merged
report, and repeat submissions are answered from the persistent result
store without touching a worker.

Endpoints (full contract in ``docs/coordinator.md``; every request and
response body is JSON):

``POST /workers/register``
    ``{"version": 1, "address": "host:port", "worker_version": ...}``
    -- a worker joins the pool.  Idempotent; re-registering refreshes
    liveness.
``POST /workers/heartbeat``
    Same body; ``404`` when the coordinator does not know the address
    (it restarted, or pruned the worker as stale) -- the worker reacts
    by re-registering.
``POST /workers/deregister``
    Clean worker shutdown.
``POST /jobs``
    ``{"version": 1, "fingerprint": F}`` submits by reference to an
    earlier upload; ``404`` with ``"unknown spec fingerprint"`` in the
    error asks the client to resubmit with ``"specs": [...]`` included
    (which both caches the list under its fingerprint and queues the
    job).  The response is the job document; a result-store hit comes
    back already ``done`` with ``from_cache`` set.
``GET /jobs/<id>``
    The job document: status, and once ``done`` the merged report
    (digest included) plus dispatch facts.
``POST /checkpoints``
    ``{"version": 1, "checkpoint": {...}}`` uploads one scenario
    checkpoint (:class:`repro.checkpoint.Checkpoint` wire form) into
    the coordinator's registry so specs submitted with ``resume_from``
    resolve it; the coordinator's per-worker hosts re-ship it to
    whichever worker draws the shard.  Malformed, truncated, or
    stale-version documents are rejected with ``400``.
``GET /status``
    Pool and queue overview (live workers, joins/leaves, store size).
``GET /metrics``
    The coordinator's counters and histograms
    (:meth:`repro.obs.MetricsRegistry.to_json` wire shape).
``GET /healthz``
    Bare liveness, always open.

Auth mirrors the worker daemon: started with ``--token SECRET`` every
POST and the job/status/metrics GETs require ``Authorization: Bearer
SECRET`` (``401`` otherwise); ``/healthz`` stays open so load-balancer
probes need no secret.

The process writes exactly one line to stdout when ready
(``repro-coordinator listening on http://HOST:PORT``) so parents
spawning ``--port 0`` can parse the ephemeral port; request logging
goes to stderr.  Jobs execute on a single background runner thread in
submission order -- the worker pool is the parallelism, not the job
queue.  In-process embedding goes through :func:`start_coordinator`.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Sequence

from ..cliutil import route_warnings_to_stderr
from ..scenarios.regression import ScenarioSpec
from .service import Coordinator, UnknownFingerprintError, WorkerRegistry
from .store import ResultStore

#: Wire-format version the coordinator speaks.
WIRE_VERSION = 1

#: Default on-disk result-store location (relative to the CWD the
#: daemon was started in).
DEFAULT_STORE = ".repro-results"


class _JobRunner(threading.Thread):
    """Single background thread draining the coordinator's job queue."""

    def __init__(self, coordinator: Coordinator, interval: float = 0.05):
        super().__init__(name="repro-coordinator-jobs", daemon=True)
        self.coordinator = coordinator
        self.interval = interval
        # not named _stop: threading.Thread has a private _stop() method
        self._halt = threading.Event()

    def run(self) -> None:
        """Run queued jobs to completion until :meth:`stop`."""
        while not self._halt.is_set():
            if self.coordinator.run_next() is None:
                self._halt.wait(self.interval)

    def stop(self) -> None:
        """End the loop after the current job (if any) finishes."""
        self._halt.set()


class _CoordinatorRequestHandler(BaseHTTPRequestHandler):
    """HTTP plumbing around the pure :class:`~.service.Coordinator`."""

    server_version = "repro-coordinator/1"
    protocol_version = "HTTP/1.1"

    def _respond(self, status: int, doc: Dict[str, Any]) -> None:
        payload = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _authorized(self) -> bool:
        """Bearer-token gate for everything except bare ``/healthz``."""
        token = self.server.token
        if not token:
            return True
        if self.headers.get("Authorization") == f"Bearer {token}":
            return True
        self._respond(
            401,
            {"error": "missing or invalid bearer token (coordinator has --token)"},
        )
        return False

    def _read_body(self) -> Optional[Dict[str, Any]]:
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = json.loads(self.rfile.read(length)) if length else {}
        except (TypeError, ValueError) as exc:
            self._respond(400, {"error": f"unparseable request body: {exc}"})
            return None
        if not isinstance(body, dict):
            self._respond(400, {"error": "request body must be a JSON object"})
            return None
        version = body.get("version", WIRE_VERSION)
        if isinstance(version, int) and version > WIRE_VERSION:
            self._respond(
                400,
                {
                    "error": f"wire version {version} is newer than this "
                    f"coordinator ({WIRE_VERSION})"
                },
            )
            return None
        return body

    def do_GET(self) -> None:  # noqa: N802 -- http.server API
        """Health, status, metrics, and job polling."""
        coordinator = self.server.coordinator
        if self.path in ("/", "/healthz"):
            self._respond(200, {"ok": True, "role": "coordinator"})
            return
        if not self._authorized():
            return
        if self.path == "/status":
            self._respond(200, coordinator.status())
            return
        if self.path == "/metrics":
            self._respond(
                200, {"ok": True, "metrics": coordinator.metrics.to_json()}
            )
            return
        if self.path.startswith("/jobs/"):
            job_id = self.path[len("/jobs/"):]
            try:
                job = coordinator.job(job_id)
            except KeyError:
                self._respond(404, {"error": f"unknown job {job_id!r}"})
                return
            self._respond(200, job.to_json())
            return
        self._respond(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 -- http.server API
        """Worker lifecycle and job submission."""
        if not self._authorized():
            return
        body = self._read_body()
        if body is None:
            return
        coordinator = self.server.coordinator
        if self.path in (
            "/workers/register",
            "/workers/heartbeat",
            "/workers/deregister",
        ):
            address = body.get("address")
            if not isinstance(address, str) or not address:
                self._respond(400, {"error": 'worker calls need an "address"'})
                return
            if self.path == "/workers/register":
                coordinator.registry.register(
                    address, version=str(body.get("worker_version", ""))
                )
                self._respond(200, {"ok": True, "address": address})
            elif self.path == "/workers/heartbeat":
                if coordinator.registry.heartbeat(address):
                    self._respond(200, {"ok": True, "address": address})
                else:
                    self._respond(
                        404,
                        {"error": f"unknown worker {address!r} -- re-register"},
                    )
            else:
                coordinator.registry.deregister(address)
                self._respond(200, {"ok": True, "address": address})
            return
        if self.path == "/jobs":
            fingerprint = body.get("fingerprint")
            specs = None
            if "specs" in body:
                if not isinstance(body["specs"], list):
                    self._respond(400, {"error": '"specs" must be a list'})
                    return
                try:
                    specs = [
                        ScenarioSpec.from_json(doc) for doc in body["specs"]
                    ]
                except (KeyError, TypeError, ValueError) as exc:
                    self._respond(
                        400, {"error": f"unparseable spec in submission: {exc}"}
                    )
                    return
            try:
                job = coordinator.submit(fingerprint=fingerprint, specs=specs)
            except UnknownFingerprintError as exc:
                self._respond(404, {"error": str(exc.args[0])})
                return
            except ValueError as exc:
                self._respond(400, {"error": str(exc)})
                return
            self._respond(200, job.to_json())
            return
        if self.path == "/checkpoints":
            from ..checkpoint import Checkpoint, CheckpointError
            from ..checkpoint.store import global_registry

            document = body.get("checkpoint")
            if not isinstance(document, dict):
                self._respond(
                    400,
                    {"error": 'checkpoint upload needs a "checkpoint" object'},
                )
                return
            try:
                checkpoint = Checkpoint.from_json(document)
            except CheckpointError as exc:
                self._respond(
                    400, {"error": f"rejected checkpoint upload: {exc}"}
                )
                return
            digest = global_registry().put(checkpoint)
            coordinator.metrics.counter(
                "coordinator.checkpoint_uploads"
            ).inc()
            self._respond(200, {"ok": True, "digest": digest})
            return
        self._respond(404, {"error": f"unknown path {self.path!r}"})

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Request log to stderr; stdout carries only the ready line."""
        sys.stderr.write(
            f"repro-coordinator {self.address_string()} {format % args}\n"
        )


class _CoordinatorServer(ThreadingHTTPServer):
    """Threading server so polls answer while a job dispatches."""

    daemon_threads = True

    def __init__(self, address, handler, coordinator: Coordinator):
        super().__init__(address, handler)
        self.coordinator = coordinator
        self.token = coordinator.registry.token


@dataclass
class CoordinatorHandle:
    """An in-process coordinator daemon (tests, benchmarks, examples)."""

    server: _CoordinatorServer
    thread: threading.Thread
    runner: _JobRunner
    coordinator: Coordinator

    @property
    def port(self) -> int:
        """The actually-bound TCP port (resolved when port 0 was asked)."""
        return self.server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients and workers point at."""
        host = self.server.server_address[0]
        return f"http://{host}:{self.port}"

    def stop(self) -> None:
        """Stop the job runner, shut the server down, join threads."""
        self.runner.stop()
        self.runner.join(timeout=30)
        self.server.shutdown()
        self.thread.join(timeout=10)
        self.server.server_close()


def start_coordinator(
    port: int = 0,
    host: str = "127.0.0.1",
    store_path: str = DEFAULT_STORE,
    token: Optional[str] = None,
    stale_after: float = 10.0,
    idle_timeout: float = 30.0,
) -> CoordinatorHandle:
    """Serve the coordinator from daemon threads; port 0 = ephemeral.

    ``store_path`` roots the persistent result store; ``token`` is the
    fleet's shared bearer secret; ``stale_after`` bounds how long a
    silent worker stays in the pool; ``idle_timeout`` bounds how long a
    running job waits for the pool to become non-empty before failing.
    """
    coordinator = Coordinator(
        store=ResultStore(store_path),
        registry=WorkerRegistry(token=token, stale_after=stale_after),
        idle_timeout=idle_timeout,
    )
    server = _CoordinatorServer(
        (host, port), _CoordinatorRequestHandler, coordinator
    )
    thread = threading.Thread(
        target=server.serve_forever, name="repro-coordinator", daemon=True
    )
    thread.start()
    runner = _JobRunner(coordinator)
    runner.start()
    return CoordinatorHandle(
        server=server, thread=thread, runner=runner, coordinator=coordinator
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry: bind, announce readiness on stdout, serve until killed."""
    parser = argparse.ArgumentParser(
        prog="repro.coordinator",
        description="Regression coordinator daemon: workers register into "
        "an elastic pool, clients submit jobs and poll for the merged "
        "report; repeat submissions are served from the result store.",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8400,
        help="TCP port to listen on (0 picks an ephemeral port, "
        "announced on stdout)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default loopback; 0.0.0.0 to serve "
        "a real fleet)",
    )
    parser.add_argument(
        "--store",
        default=DEFAULT_STORE,
        metavar="DIR",
        help=f"result-store directory (default {DEFAULT_STORE!r}; "
        "created if missing, survives restarts)",
    )
    parser.add_argument(
        "--token",
        default=None,
        help="shared fleet secret: require this bearer token on every "
        "endpoint except /healthz",
    )
    parser.add_argument(
        "--stale-after",
        type=float,
        default=10.0,
        help="seconds of heartbeat silence before a worker is pruned "
        "from the pool (default 10)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=30.0,
        help="seconds a running job waits with zero live workers "
        "before failing (default 30)",
    )
    options = parser.parse_args(argv)
    route_warnings_to_stderr()
    coordinator = Coordinator(
        store=ResultStore(options.store),
        registry=WorkerRegistry(
            token=options.token, stale_after=options.stale_after
        ),
        idle_timeout=options.idle_timeout,
    )
    server = _CoordinatorServer(
        (options.host, options.port), _CoordinatorRequestHandler, coordinator
    )
    runner = _JobRunner(coordinator)
    runner.start()
    bound_host, bound_port = server.server_address[:2]
    # the one stdout line: parents spawning `--port 0` parse it
    print(
        f"repro-coordinator listening on http://{bound_host}:{bound_port}",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        runner.stop()
        server.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
