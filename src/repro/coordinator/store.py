"""Fingerprint-keyed persistent result store for the coordinator.

A regression's merged :class:`~repro.scenarios.regression.RegressionReport`
is a pure function of its spec list, so a coordinator that has already
run a job for a given ``(spec fingerprint, seed set)`` can answer the
same submission again without touching a worker.  The store is that
memo: one JSON file per distinct key under a root directory, written
atomically, surviving daemon restarts.

Trust model: the digest stored alongside a report is *re-verified on
every read* -- the report is rebuilt from its wire form (which
recomputes the digest from the verdict lines) and compared against the
recorded value.  A mismatch means the file rotted or was tampered
with; the entry is dropped and counted, and the job re-runs as a miss.
The cache can therefore serve stale bytes never, wrong bytes never --
only verified reports or nothing.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from typing import Optional, Sequence

from ..scenarios.regression import RegressionReport

#: Store wire-format version, bumped if the entry layout changes.
STORE_VERSION = 1


def _atomic_write_json(doc: dict, directory: str, path: str) -> None:
    """tempfile + fsync + rename: the destination is never observable
    half-written, even through a crash or a killed daemon."""
    handle, tmp = tempfile.mkstemp(dir=directory, prefix=".store-", suffix=".tmp")
    try:
        with os.fdopen(handle, "w") as stream:
            json.dump(doc, stream, sort_keys=True)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def store_key(fingerprint: str, seeds: Sequence[int]) -> str:
    """The filename-safe key for one ``(fingerprint, seed set)`` entry.

    The fingerprint already covers the full spec content (seeds
    included), but the key states the seed set explicitly so an entry
    is self-describing on disk and the pairing the paper's regression
    protocol cares about -- *which seeds produced this digest* -- is
    part of the identity, not a field that could drift.
    """
    seed_part = ",".join(str(seed) for seed in sorted(set(seeds)))
    return hashlib.sha256(
        f"{fingerprint}:{seed_part}".encode("utf-8")
    ).hexdigest()[:32]


class ResultStore:
    """On-disk memo of merged regression reports, digest-verified on read.

    Thread-safe (the coordinator daemon serves submissions from
    handler threads while the job runner writes).  Corrupt entries are
    removed on discovery and counted in :attr:`corruptions`.
    """

    def __init__(self, root: str):
        self.root = root
        self.corruptions = 0
        self._lock = threading.Lock()
        os.makedirs(root, exist_ok=True)

    def _path(self, fingerprint: str, seeds: Sequence[int]) -> str:
        return os.path.join(self.root, f"{store_key(fingerprint, seeds)}.json")

    def put(
        self,
        fingerprint: str,
        seeds: Sequence[int],
        report: RegressionReport,
    ) -> str:
        """Persist one merged report; returns the entry path.

        Written atomically (temp file + rename) so a killed daemon
        never leaves a half-entry that a later read would have to
        distrust.
        """
        doc = {
            "version": STORE_VERSION,
            "fingerprint": fingerprint,
            "seeds": sorted(set(seeds)),
            "report": report.to_json(),
        }
        path = self._path(fingerprint, seeds)
        with self._lock:
            _atomic_write_json(doc, self.root, path)
        return path

    def fetch(
        self, fingerprint: str, seeds: Sequence[int]
    ) -> Optional[RegressionReport]:
        """The stored report for a key, or None -- never an unverified one.

        The report is rebuilt from its wire form (recomputing the
        digest from the verdict lines) and checked against the digest
        recorded at :meth:`put` time; any parse failure or digest
        mismatch deletes the entry and reads as a miss.
        """
        path = self._path(fingerprint, seeds)
        with self._lock:
            try:
                with open(path) as stream:
                    doc = json.load(stream)
            except FileNotFoundError:
                return None
            except (OSError, ValueError):
                self._drop(path)
                return None
            try:
                stored = doc["report"]
                report = RegressionReport.from_json(stored)
                if report.digest() != stored["digest"]:
                    raise ValueError("stored digest does not match content")
            except (KeyError, TypeError, ValueError):
                self._drop(path)
                return None
            return report

    def _drop(self, path: str) -> None:
        """Remove a corrupt entry and count it (lock already held)."""
        self.corruptions += 1
        try:
            os.unlink(path)
        except OSError:
            pass

    def entries(self) -> int:
        """How many entries the store currently holds (status endpoint)."""
        try:
            return sum(
                1
                for name in os.listdir(self.root)
                if name.endswith(".json")
            )
        except OSError:
            return 0


class ShardStore:
    """Per-shard completed-report checkpoints for resumable jobs.

    While a job runs, every shard report that completes is persisted
    here keyed by ``(fingerprint, seed set, shard index, shard count)``
    -- the last-completed-shard checkpoint.  A job interrupted mid-run
    (every worker died, the daemon restarted) resumes on resubmission:
    shards whose entries verify are pre-completed from disk instead of
    re-dispatched, and because a shard is a pure function of the spec
    list, the resumed job's merged digest is byte-identical to an
    uninterrupted serial run.  Entries are pruned when the job's full
    report lands in the :class:`ResultStore`.

    Writes go through the same fsync-and-rename discipline as the
    result store, so a daemon killed mid-write leaves either the
    previous entry or none -- never a half-checkpoint a resume would
    trust.  Reads re-verify the embedded report digest; corrupt
    entries are dropped and counted.
    """

    def __init__(self, root: str):
        self.root = root
        self.corruptions = 0
        self._lock = threading.Lock()
        os.makedirs(root, exist_ok=True)

    def _path(
        self, fingerprint: str, seeds: Sequence[int], index: int, of: int
    ) -> str:
        key = store_key(fingerprint, seeds)
        return os.path.join(self.root, f"{key}.shard-{index}-of-{of}.json")

    def put_shard(
        self,
        fingerprint: str,
        seeds: Sequence[int],
        index: int,
        of: int,
        report: RegressionReport,
    ) -> str:
        """Persist one completed shard's report; returns the entry path."""
        doc = {
            "version": STORE_VERSION,
            "fingerprint": fingerprint,
            "seeds": sorted(set(seeds)),
            "shard": {"index": index, "of": of},
            "report": report.to_json(),
        }
        path = self._path(fingerprint, seeds, index, of)
        with self._lock:
            _atomic_write_json(doc, self.root, path)
        return path

    def fetch_shard(
        self, fingerprint: str, seeds: Sequence[int], index: int, of: int
    ) -> Optional[RegressionReport]:
        """The checkpointed report for one shard, verified, or None."""
        path = self._path(fingerprint, seeds, index, of)
        with self._lock:
            try:
                with open(path) as stream:
                    doc = json.load(stream)
            except FileNotFoundError:
                return None
            except (OSError, ValueError):
                self._drop(path)
                return None
            try:
                stored = doc["report"]
                report = RegressionReport.from_json(stored)
                if report.digest() != stored["digest"]:
                    raise ValueError("stored digest does not match content")
            except (KeyError, TypeError, ValueError):
                self._drop(path)
                return None
            return report

    def prune(self, fingerprint: str, seeds: Sequence[int]) -> int:
        """Drop every shard entry for a finished job; returns the count."""
        prefix = store_key(fingerprint, seeds) + ".shard-"
        removed = 0
        with self._lock:
            try:
                names = os.listdir(self.root)
            except OSError:
                return 0
            for name in names:
                if name.startswith(prefix) and name.endswith(".json"):
                    try:
                        os.unlink(os.path.join(self.root, name))
                        removed += 1
                    except OSError:
                        pass
        return removed

    def _drop(self, path: str) -> None:
        """Remove a corrupt entry and count it (lock already held)."""
        self.corruptions += 1
        try:
            os.unlink(path)
        except OSError:
            pass

    def entries(self) -> int:
        """How many shard checkpoints exist right now (status endpoint)."""
        try:
            return sum(
                1 for name in os.listdir(self.root) if name.endswith(".json")
            )
        except OSError:
            return 0
