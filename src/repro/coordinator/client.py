"""Client side of the coordinator: submit, poll, verify, engine seam.

:class:`CoordinatorClient` speaks the daemon's job protocol --
fingerprint-first submission (the spec list crosses the wire only when
the coordinator asks for it), polling until the job resolves, and
digest verification of the returned report (recomputed from the
verdict lines, compared against the wire value; a coordinator cannot
hand back a report whose digest does not match its content).

:class:`CoordinatorEngine` mounts that protocol behind the workbench's
:class:`~repro.workbench.engines.Engine` seam, so
``Workbench(...).regress(coordinator="http://host:8400")`` and
``python -m repro regress --coordinator URL`` run their regressions on
the elastic fleet without the session code knowing the difference.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..dispatch.planner import specs_fingerprint
from ..obs.runtime import OBS
from ..scenarios.regression import RegressionReport, ScenarioSpec

#: Wire-format version the client speaks.
WIRE_VERSION = 1


class CoordinatorError(RuntimeError):
    """The coordinator refused, failed, or corrupted a job."""


class CoordinatorClient:
    """Blocking JSON-over-HTTP client for one coordinator daemon."""

    def __init__(
        self,
        url: str,
        token: Optional[str] = None,
        timeout: float = 600.0,
        poll_interval: float = 0.2,
        request_timeout: float = 30.0,
    ):
        url = url.rstrip("/")
        if "://" not in url:
            url = f"http://{url}"
        self.url = url
        self.token = token
        self.timeout = timeout
        self.poll_interval = poll_interval
        self.request_timeout = request_timeout

    def _request(
        self, path: str, doc: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """One request; returns (status, body) with HTTP errors decoded."""
        headers = {"Content-Type": "application/json"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        data = (
            json.dumps(doc, sort_keys=True).encode("utf-8")
            if doc is not None
            else None
        )
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=data,
            headers=headers,
            method="POST" if data is not None else "GET",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.request_timeout
            ) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read())
            except (TypeError, ValueError):
                body = {"error": f"HTTP {exc.code}"}
            return exc.code, body
        except (OSError, ValueError) as exc:
            raise CoordinatorError(
                f"coordinator {self.url} unreachable: {exc}"
            ) from exc

    def upload_checkpoints(self, specs: List[ScenarioSpec]) -> int:
        """Ship every checkpoint the specs resume from to the coordinator.

        Specs carrying ``resume_from`` reference checkpoints by digest;
        the coordinator can only fan them out to workers if it holds
        the wire objects, so they are uploaded (from this process's
        :func:`repro.checkpoint.global_registry`) before submission.
        Returns how many were sent.
        """
        digests = sorted(
            {spec.resume_from for spec in specs if spec.resume_from}
        )
        if not digests:
            return 0
        from ..checkpoint.store import global_registry

        registry = global_registry()
        for digest in digests:
            checkpoint = registry.get(digest)
            status, body = self._request(
                "/checkpoints",
                {
                    "version": WIRE_VERSION,
                    "checkpoint": checkpoint.to_json(),
                },
            )
            if status != 200:
                raise CoordinatorError(
                    f"checkpoint upload failed ({status}): "
                    f"{body.get('error', body)}"
                )
        return len(digests)

    def submit(self, specs: List[ScenarioSpec]) -> Dict[str, Any]:
        """Submit a regression; returns the job document.

        Fingerprint-first: the first attempt sends only the 16-hex
        content key.  A 404 naming an unknown spec fingerprint means
        this coordinator has never seen the list (or restarted), so the
        client resubmits with the specs included -- the one upload this
        fingerprint will ever need against a live coordinator.  Specs
        resuming from checkpoints get those shipped first (see
        :meth:`upload_checkpoints`).
        """
        self.upload_checkpoints(specs)
        fingerprint = specs_fingerprint(specs)
        status, body = self._request(
            "/jobs", {"version": WIRE_VERSION, "fingerprint": fingerprint}
        )
        if status == 404 and "unknown spec fingerprint" in str(
            body.get("error", "")
        ):
            status, body = self._request(
                "/jobs",
                {
                    "version": WIRE_VERSION,
                    "fingerprint": fingerprint,
                    "specs": [spec.to_json() for spec in specs],
                },
            )
        if status != 200:
            raise CoordinatorError(
                f"job submission failed ({status}): "
                f"{body.get('error', body)}"
            )
        return body

    def job(self, job_id: str) -> Dict[str, Any]:
        """One poll of ``GET /jobs/<id>``."""
        status, body = self._request(f"/jobs/{job_id}")
        if status != 200:
            raise CoordinatorError(
                f"job {job_id} lookup failed ({status}): "
                f"{body.get('error', body)}"
            )
        return body

    def wait(self, job_id: str) -> Dict[str, Any]:
        """Poll until the job resolves; raises on failure or timeout."""
        deadline = time.monotonic() + self.timeout
        while True:
            doc = self.job(job_id)
            if doc["status"] == "done":
                return doc
            if doc["status"] == "failed":
                raise CoordinatorError(
                    f"job {job_id} failed: {doc.get('error', 'unknown')}"
                )
            if time.monotonic() > deadline:
                raise CoordinatorError(
                    f"job {job_id} still {doc['status']!r} after "
                    f"{self.timeout:.0f}s"
                )
            time.sleep(self.poll_interval)

    def run(
        self, specs: List[ScenarioSpec]
    ) -> Tuple[RegressionReport, Dict[str, Any]]:
        """Submit + wait + verify: the full client round trip.

        The returned report is rebuilt from the wire form (recomputing
        its digest from the verdict lines) and checked against the
        digest the coordinator claimed -- mismatch is an error, not a
        warning, because a wrong report with a plausible digest is
        exactly the failure a regression service must never serve.
        """
        submitted = self.submit(specs)
        doc = (
            submitted
            if submitted["status"] in ("done", "failed")
            else self.wait(submitted["job"])
        )
        if doc["status"] == "failed":
            raise CoordinatorError(
                f"job {doc['job']} failed: {doc.get('error', 'unknown')}"
            )
        report_doc = doc.get("report")
        if not isinstance(report_doc, dict):
            raise CoordinatorError(
                f"job {doc['job']} is done but carries no report"
            )
        report = RegressionReport.from_json(report_doc)
        if report.digest() != report_doc.get("digest"):
            raise CoordinatorError(
                f"job {doc['job']} report digest mismatch: content is "
                f"{report.digest()}, coordinator claimed "
                f"{report_doc.get('digest')}"
            )
        return report, doc

    def status(self) -> Dict[str, Any]:
        """The coordinator's ``GET /status`` document."""
        status, body = self._request("/status")
        if status != 200:
            raise CoordinatorError(
                f"status failed ({status}): {body.get('error', body)}"
            )
        return body


class CoordinatorEngine:
    """Runs scenario regressions on a coordinator's elastic fleet.

    The fourth registered :class:`~repro.workbench.engines.Engine`:
    ``imap`` ships the whole spec list to the coordinator as one job
    (fingerprint-first, so a warm coordinator sees sixteen hex chars
    instead of the list) and yields the merged, digest-verified
    verdicts.  Like :class:`~repro.workbench.engines.ShardedEngine` it
    only accepts the one fan-out with a wire form -- ``run_scenario``
    over :class:`~repro.scenarios.regression.ScenarioSpec` items.

    The last job's document (status, ``from_cache``, dispatch facts)
    is kept on :attr:`last_job` for reporting layers.
    """

    name = "coordinator"

    def __init__(
        self,
        url: str,
        token: Optional[str] = None,
        timeout: float = 600.0,
    ):
        self.url = url
        self.workers = 1
        self.client = CoordinatorClient(url, token=token, timeout=timeout)
        self.last_job: Optional[Dict[str, Any]] = None

    def imap(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> Iterator[Any]:
        """Submit the specs as one coordinator job; yield merged verdicts."""
        from ..scenarios.regression import run_scenario

        specs = list(items)
        if fn is not run_scenario or not all(
            isinstance(item, ScenarioSpec) for item in specs
        ):
            raise TypeError(
                "CoordinatorEngine only runs scenario regressions "
                "(run_scenario over ScenarioSpec items); other fan-outs "
                "have no cross-host wire form"
            )
        if OBS.enabled:
            with OBS.tracer.span(
                "coordinator.client_job",
                "coordinator",
                url=self.url,
                specs=len(specs),
            ) as span:
                report, job = self.client.run(specs)
                span.set(
                    job=job["job"],
                    from_cache=job.get("from_cache", False),
                )
        else:
            report, job = self.client.run(specs)
        self.last_job = job
        yield from report.verdicts

    def __repr__(self) -> str:
        return f"CoordinatorEngine(url={self.url!r})"
