"""``python -m repro.coordinator`` -- run the coordinator daemon."""

import sys

from .daemon import main

if __name__ == "__main__":
    sys.exit(main())
