"""``python -m repro`` -- the verification-service command line.

One CLI over the :mod:`repro.workbench` session API::

    python -m repro list
    python -m repro explore  --model pci --json
    python -m repro simulate --model master_slave --cycles 5000
    python -m repro regress  --model pci --scenarios 40 --workers 4 --json
    python -m repro regress  --model pci --scenarios 40 --shards 3 --json
    python -m repro regress  --model pci --hosts 10.0.0.5:8421,10.0.0.6:8421
    python -m repro regress  --model pci --shard 2/3 --json  # + --merge later
    python -m repro close    --model master_slave --json
    python -m repro flow     --model master_slave --json
    python -m repro checkpoint --model pci --cycles 200 --out run.ckpt
    python -m repro resume   --from run.ckpt --cycles 400 --json

``flow`` runs the paper's whole Figure 1 plan (explore -> liveness ->
translate -> ABV simulation -> scenario regression) and exits 0 iff
the session verified.  All subcommands accept ``--json`` for
machine-readable output; the session digest printed either way is
byte-identical across worker counts.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .cliutil import (
    add_coordinator_arguments,
    add_hosts_argument,
    add_observability_arguments,
    observability_scope,
    positive_int,
    reject_hosts_conflict,
    route_warnings_to_stderr,
    shard_coordinate,
)
from .workbench import (
    SessionReport,
    VerificationPlan,
    Workbench,
    default_registry,
)

_positive_int = positive_int


def _topology(text: str) -> List[int]:
    try:
        parts = [int(p) for p in text.replace("x", ",").split(",") if p != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"topology must be comma-separated ints, got {text!r}"
        ) from None
    if not parts:
        raise argparse.ArgumentTypeError("topology must not be empty")
    return parts


def _add_model_options(
    parser: argparse.ArgumentParser, required: bool = True
) -> None:
    parser.add_argument(
        "--model",
        required=required,
        default=None,
        help="registered model name (see `python -m repro list`)",
    )
    parser.add_argument(
        "--topology",
        type=_topology,
        default=None,
        metavar="N,N[,N]",
        help="model topology, e.g. 2,2 (pci: masters,targets; "
        "master_slave: blocking,non_blocking,slaves)",
    )
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable output"
    )
    add_observability_arguments(parser)


def _workbench(options: argparse.Namespace) -> Workbench:
    registry = default_registry()
    args = tuple(options.topology) if options.topology else ()
    duv = registry.get(options.model, *args)
    return Workbench(duv, seed=options.seed)


def _emit(report: SessionReport, as_json: bool) -> int:
    if as_json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_list(options: argparse.Namespace) -> int:
    registry = default_registry()
    names = registry.names()
    if options.json:
        doc = [
            {"name": name, "description": registry.describe(name)}
            for name in names
        ]
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        for name in names:
            print(f"{name:<16} {registry.describe(name)}")
    return 0


def _cmd_explore(options: argparse.Namespace) -> int:
    workbench = _workbench(options)
    overrides = {}
    if options.max_states is not None:
        overrides["max_states"] = options.max_states
    workbench.explore(**overrides)
    if options.liveness:
        workbench.check_liveness()
    return _emit(workbench.report(), options.json)


def _cmd_simulate(options: argparse.Namespace) -> int:
    workbench = _workbench(options)
    workbench.simulate_abv(cycles=options.cycles, seed=options.seed)
    return _emit(workbench.report(), options.json)


def _cmd_regress(options: argparse.Namespace) -> int:
    if options.merge is not None:
        from .cliutil import emit_regression_report, load_shard_reports
        from .dispatch import merge_reports

        return emit_regression_report(
            merge_reports(load_shard_reports(options.merge)), options.json
        )

    if options.model is None:
        raise SystemExit("error: --model is required (unless using --merge)")

    if options.shard is not None:
        # manual cross-host dispatch: run exactly shard K of N of the
        # specs this model's full regression would build, and emit the
        # raw shard report for a later --merge
        from .cliutil import emit_regression_report
        from .dispatch.planner import plan_shards
        from .scenarios.regression import RegressionRunner, build_specs

        workbench = _workbench(options)
        if workbench.duv.scenario_model is None:
            raise SystemExit(
                f"error: model {options.model!r} has no scenario binding"
            )
        index, of = options.shard
        specs = build_specs(
            models=[workbench.duv.scenario_model],
            count=options.scenarios,
            base_seed=options.seed,
            cycles=options.cycles,
            with_monitors=options.with_monitors,
        )
        shard = plan_shards(specs, of)[index]
        runner = RegressionRunner(
            list(shard.specs),
            workers=options.workers,
            fail_fast=options.fail_fast,
        )
        return emit_regression_report(runner.run(), options.json)

    workbench = _workbench(options)
    workbench.regress(
        scenarios=options.scenarios,
        cycles=options.cycles,
        workers=options.workers,
        shards=options.shards,
        hosts=options.hosts,
        coordinator=options.coordinator,
        token=options.token,
        fail_fast=options.fail_fast,
        with_monitors=options.with_monitors,
    )
    return _emit(workbench.report(), options.json)


def _cmd_close(options: argparse.Namespace) -> int:
    workbench = _workbench(options)
    workbench.close_coverage(
        rounds=options.rounds,
        cycles=options.cycles,
        max_goals=options.max_goals,
        workers=options.workers,
        shards=options.shards,
        hosts=options.hosts,
        coordinator=options.coordinator,
        token=options.token,
        seed=options.seed,
        frontier=options.frontier,
    )
    return _emit(workbench.report(), options.json)


def _cmd_analyze(options: argparse.Namespace) -> int:
    from .analyze import analyze_duv, analyze_models

    if options.model is not None:
        registry = default_registry()
        args = tuple(options.topology) if options.topology else ()
        duv = registry.get(options.model, *args)
        report = analyze_duv(
            duv,
            witness=options.witness,
            witness_cycles=options.witness_cycles,
            seed=options.seed,
        )
    else:
        report = analyze_models(
            witness=options.witness,
            witness_cycles=options.witness_cycles,
            seed=options.seed,
        )
    if options.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_checkpoint(options: argparse.Namespace) -> int:
    """Run a scenario from reset and persist its snapshot to a file."""
    from .checkpoint import save_checkpoint, snapshot_scenario_run
    from .scenarios.regression import (
        MODELS,
        MS_TOPOLOGIES,
        PCI_TOPOLOGIES,
        ScenarioSpec,
    )

    if options.model not in MODELS:
        raise SystemExit(
            f"error: unknown scenario model {options.model!r} "
            f"(choose from {', '.join(MODELS)})"
        )
    if options.topology:
        topology = tuple(options.topology)
    elif options.model == "master_slave":
        topology = MS_TOPOLOGIES[0]
    else:
        topology = PCI_TOPOLOGIES[0]
    spec = ScenarioSpec(
        model=options.model,
        seed=options.seed,
        topology=topology,
        profile=options.profile,
        cycles=options.cycles,
        with_monitors=options.with_monitors,
    )
    checkpoint = snapshot_scenario_run(spec, options.cycles)
    path = save_checkpoint(checkpoint, options.out)
    doc = {
        "digest": checkpoint.digest,
        "cycles_run": checkpoint.cycles_run,
        "path": path,
        "spec": spec.to_json(),
    }
    if options.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(
            f"checkpoint {checkpoint.digest} after {checkpoint.cycles_run} "
            f"cycles of {spec.label} -> {path}"
        )
    return 0


def _cmd_resume(options: argparse.Namespace) -> int:
    """Load a checkpoint file and run its scenario to a later cycle."""
    from dataclasses import replace

    from .checkpoint import CheckpointError, global_registry, load_checkpoint
    from .scenarios.regression import run_scenario

    try:
        checkpoint = load_checkpoint(options.source)
    except CheckpointError as exc:
        raise SystemExit(f"error: {exc}") from exc
    digest = global_registry().put(checkpoint)
    total = options.cycles
    if total is None:
        total = max(checkpoint.spec.cycles, checkpoint.cycles_run)
    spec = replace(
        checkpoint.spec, cycles=total, resume_from=digest, checkpoint_at=None
    )
    try:
        verdict = run_scenario(spec)
    except CheckpointError as exc:
        raise SystemExit(f"error: {exc}") from exc
    if options.json:
        print(json.dumps(verdict.to_json(), indent=2, sort_keys=True))
    else:
        status = "ok" if verdict.ok else "FAILED"
        print(
            f"resumed {spec.label} from cycle {checkpoint.cycles_run} "
            f"to {total}: {status} ({verdict.transactions} txns, "
            f"stream digest {verdict.stream_digest})"
        )
    return 0 if verdict.ok else 1


def _cmd_flow(options: argparse.Namespace) -> int:
    workbench = _workbench(options)
    plan = VerificationPlan.figure1(
        cycles=options.cycles,
        scenarios=options.scenarios,
        scenario_cycles=options.scenario_cycles,
        workers=options.workers,
        seed=options.seed,
        bias_residue=options.bias_residue,
        fail_fast=options.fail_fast,
    )
    report = workbench.run_plan(plan)
    return _emit(report, options.json)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Unified verification sessions over the registered "
        "designs (paper Figure 1, stage by stage or end to end).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="list registered models")
    list_parser.add_argument("--json", action="store_true")
    list_parser.set_defaults(func=_cmd_list)

    explore = sub.add_parser(
        "explore", help="FSM-generation model checking (+ optional liveness)"
    )
    _add_model_options(explore)
    explore.add_argument("--max-states", type=_positive_int, default=None)
    explore.add_argument(
        "--liveness",
        action="store_true",
        help="also run the registered liveness checks on the FSM",
    )
    explore.set_defaults(func=_cmd_explore)

    simulate = sub.add_parser(
        "simulate", help="ABV simulation with the PSL monitor suite"
    )
    _add_model_options(simulate)
    simulate.add_argument("--cycles", type=_positive_int, default=2_000)
    simulate.set_defaults(func=_cmd_simulate)

    regress = sub.add_parser(
        "regress", help="constrained-random scoreboarded scenario regression"
    )
    # --model stays optional at parse time: --merge needs no model
    _add_model_options(regress, required=False)
    regress.add_argument("--scenarios", type=_positive_int, default=24)
    regress.add_argument("--cycles", type=_positive_int, default=300)
    regress.add_argument("--workers", type=int, default=None)
    sharding = regress.add_mutually_exclusive_group()
    sharding.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        metavar="N",
        help="dispatch across N local subprocess shard hosts "
        "(merged digest identical to a serial run)",
    )
    sharding.add_argument(
        "--shard",
        type=shard_coordinate,
        default=None,
        metavar="K/N",
        help="run only shard K of N and print the raw shard report "
        "(fold the outputs back with --merge)",
    )
    sharding.add_argument(
        "--merge",
        nargs="+",
        default=None,
        metavar="REPORT.json",
        help="merge per-shard --json reports into one canonical report",
    )
    add_hosts_argument(regress)
    add_coordinator_arguments(regress)
    regress.add_argument("--fail-fast", action="store_true")
    regress.add_argument("--with-monitors", action="store_true")
    regress.set_defaults(func=_cmd_regress)

    close = sub.add_parser(
        "close",
        help="directed coverage closure: plan FSM-path sequence goals "
        "for the formal-only residue and drive them until it stops "
        "shrinking (runs explore first)",
    )
    _add_model_options(close)
    close.add_argument(
        "--rounds",
        type=_positive_int,
        default=3,
        help="plan/run/fold re-plan rounds (default 3)",
    )
    close.add_argument("--cycles", type=_positive_int, default=160)
    close.add_argument(
        "--max-goals",
        type=_positive_int,
        default=None,
        metavar="N",
        help="cap the directed scenarios planned per round",
    )
    close.add_argument(
        "--frontier",
        action="store_true",
        help="checkpoint the states each round reaches and fork the "
        "next round's goals from the nearest snapshot instead of "
        "replaying the warm-up from reset",
    )
    close.add_argument("--workers", type=int, default=None)
    close.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        metavar="N",
        help="fan the directed goals across N subprocess shard hosts",
    )
    add_hosts_argument(close)
    add_coordinator_arguments(close)
    close.set_defaults(func=_cmd_close)

    analyze = sub.add_parser(
        "analyze",
        help="static analysis: delta-cycle race detection + property "
        "lint (all registered models unless --model narrows it); "
        "exits 0 iff no unsuppressed finding remains",
    )
    # --model stays optional: the default analyzes every registered model
    _add_model_options(analyze, required=False)
    analyze.add_argument(
        "--witness",
        action="store_true",
        help="cross-check statically found races with a witnessed "
        "kernel run recording per-delta read/write sets",
    )
    analyze.add_argument(
        "--witness-cycles",
        type=_positive_int,
        default=None,
        metavar="N",
        help="clock cycles the witnessed run simulates (default 200)",
    )
    analyze.set_defaults(func=_cmd_analyze)

    checkpoint = sub.add_parser(
        "checkpoint",
        help="run a scenario from reset and save its full simulation "
        "snapshot (kernel, signals, modules, monitors) to a file",
    )
    _add_model_options(checkpoint)
    checkpoint.add_argument("--cycles", type=_positive_int, default=200)
    checkpoint.add_argument(
        "--profile",
        default="default",
        help="stimulus profile the scenario drives (default 'default')",
    )
    checkpoint.add_argument("--with-monitors", action="store_true")
    checkpoint.add_argument(
        "--out",
        required=True,
        metavar="FILE",
        help="checkpoint file to write (atomic tempfile + rename)",
    )
    checkpoint.set_defaults(func=_cmd_checkpoint)

    resume = sub.add_parser(
        "resume",
        help="restore a saved checkpoint and run its scenario onward; "
        "the resumed trace is byte-identical to an uninterrupted run",
    )
    resume.add_argument(
        "--from",
        dest="source",
        required=True,
        metavar="FILE",
        help="checkpoint file written by `repro checkpoint`",
    )
    resume.add_argument(
        "--cycles",
        type=_positive_int,
        default=None,
        metavar="TOTAL",
        help="total cycles to reach (default: the checkpoint spec's)",
    )
    resume.add_argument("--json", action="store_true")
    add_observability_arguments(resume)
    resume.set_defaults(func=_cmd_resume)

    flow = sub.add_parser(
        "flow", help="the whole Figure 1 plan: explore -> liveness -> "
        "translate -> simulate -> regress"
    )
    _add_model_options(flow)
    flow.add_argument("--cycles", type=_positive_int, default=2_000)
    flow.add_argument("--scenarios", type=_positive_int, default=24)
    flow.add_argument("--scenario-cycles", type=_positive_int, default=300)
    flow.add_argument("--workers", type=int, default=None)
    flow.add_argument(
        "--bias-residue",
        action="store_true",
        help="bias the regression toward the formal-only coverage residue "
        "(for the registered case studies the simulation cannot shrink "
        "the residue, so this steers toward the whole explored FSM)",
    )
    flow.add_argument("--fail-fast", action="store_true")
    flow.set_defaults(func=_cmd_flow)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Parse, validate cross-flag conflicts, route to the subcommand."""
    parser = build_parser()
    options = parser.parse_args(argv)
    reject_hosts_conflict(parser, options)
    # stdout carries exactly one report; diagnostics (including the
    # DesignFlow/RegressionRunner deprecation shims) go to stderr so
    # --json output stays parseable
    route_warnings_to_stderr()
    # --trace/--metrics wrap the whole subcommand; report digests are
    # identical with observability on or off
    with observability_scope(options):
        return options.func(options)


if __name__ == "__main__":
    sys.exit(main())
