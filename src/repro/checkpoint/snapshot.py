"""The checkpoint wire object.

A :class:`Checkpoint` is the *complete* state of a scenario system at a
quiescent cycle boundary: kernel clocking (time, delta count, the one
pending clock timer), every registered signal's committed value, every
stateful module's phase-machine registers (masters, arbiter, slaves,
targets), the transaction-id allocator, and -- when the run carries
monitors -- the sampled letter stream that rebuilds the PSL monitors by
replay, independent of which stepping engine they use.

The wire form is canonical JSON (sorted keys, no whitespace) and the
checkpoint digest is the SHA-256 of exactly that payload text, so two
checkpoints are byte-identical iff they restore identical states, and a
digest is a safe by-reference handle across processes and hosts
(:mod:`repro.checkpoint.store`, the worker ``/checkpoints`` endpoint).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from ..scenarios.regression import ScenarioSpec
from .errors import (
    CheckpointFormatError,
    CheckpointIntegrityError,
    CheckpointVersionError,
)

#: bump when the payload schema changes incompatibly
WIRE_VERSION = 1

#: the outer wrapper's magic, so arbitrary JSON is rejected early
WIRE_KIND = "repro-checkpoint"


def encode_signal_value(value: Any) -> List[Any]:
    """Typed scalar codec: signals carry bools, ints and PciCommand."""
    if isinstance(value, bool):
        return ["bool", value]
    if isinstance(value, int):
        return ["int", value]
    from ..models.pci.protocol import PciCommand

    if isinstance(value, PciCommand):
        return ["pci-command", value.value]
    raise CheckpointFormatError(
        f"signal value {value!r} has no checkpoint codec"
    )


def decode_signal_value(doc: Any) -> Any:
    """Inverse of :func:`encode_signal_value`."""
    try:
        kind, raw = doc
    except (TypeError, ValueError) as exc:
        raise CheckpointFormatError(f"malformed signal value {doc!r}") from exc
    if kind == "bool":
        return bool(raw)
    if kind == "int":
        return int(raw)
    if kind == "pci-command":
        from ..models.pci.protocol import PciCommand

        return PciCommand(raw)
    raise CheckpointFormatError(f"unknown signal value kind {kind!r}")


@dataclass
class Checkpoint:
    """Snapshot of one scenario system at a quiescent cycle boundary."""

    #: the spec that built (and deterministically re-builds) the system
    spec: ScenarioSpec
    #: full cycles simulated up to this snapshot
    cycles_run: int
    #: kernel clocking: time, delta_count, stats counters
    kernel: Dict[str, Any]
    #: clock driver state: cycle_count, fold phase, pending timer delay
    clock: Dict[str, Any]
    #: signal name -> [typed value, last_change_delta]
    signals: Dict[str, List[Any]]
    #: module basename -> that module's ``checkpoint_state()`` document
    modules: Dict[str, Dict[str, Any]]
    #: next transaction id the allocator would hand out
    txn_next: int
    #: sampled monitor letters up to the snapshot (empty unless the
    #: spec runs with monitors); restore replays them into fresh
    #: monitors, which makes the monitor state engine-agnostic
    letters: List[Dict[str, Any]] = field(default_factory=list)

    # -- wire form --------------------------------------------------------------

    def payload(self) -> Dict[str, Any]:
        """The digested part of the wire form (plain JSON values)."""
        return {
            "spec": self.spec.to_json(),
            "cycles_run": self.cycles_run,
            "kernel": self.kernel,
            "clock": self.clock,
            "signals": self.signals,
            "modules": self.modules,
            "txn_next": self.txn_next,
            "letters": self.letters,
        }

    def canonical_payload(self) -> str:
        """Canonical JSON text: sorted keys, minimal separators."""
        return json.dumps(
            self.payload(), sort_keys=True, separators=(",", ":")
        )

    @property
    def digest(self) -> str:
        """SHA-256 over the canonical payload text."""
        return hashlib.sha256(
            self.canonical_payload().encode("utf-8")
        ).hexdigest()

    def to_json(self) -> Dict[str, Any]:
        """Self-verifying wire document (digest travels with payload)."""
        return {
            "kind": WIRE_KIND,
            "version": WIRE_VERSION,
            "digest": self.digest,
            "payload": self.payload(),
        }

    @classmethod
    def from_json(cls, doc: Any) -> "Checkpoint":
        """Parse and *verify* a wire document.

        Raises the typed taxonomy: :class:`CheckpointFormatError` for
        structural damage, :class:`CheckpointVersionError` for documents
        from a newer writer, :class:`CheckpointIntegrityError` when the
        payload does not hash to its claimed digest (the half-written /
        bit-flipped file case atomic replace is meant to prevent).
        """
        if not isinstance(doc, dict):
            raise CheckpointFormatError(
                f"checkpoint document must be an object, got {type(doc).__name__}"
            )
        if doc.get("kind") != WIRE_KIND:
            raise CheckpointFormatError(
                f"not a checkpoint document (kind={doc.get('kind')!r})"
            )
        version = doc.get("version")
        if not isinstance(version, int):
            raise CheckpointFormatError("checkpoint version missing")
        if version > WIRE_VERSION:
            raise CheckpointVersionError(
                f"checkpoint version {version} is newer than supported "
                f"{WIRE_VERSION}"
            )
        payload = doc.get("payload")
        if not isinstance(payload, dict):
            raise CheckpointFormatError("checkpoint payload missing")
        try:
            checkpoint = cls(
                spec=ScenarioSpec.from_json(payload["spec"]),
                cycles_run=int(payload["cycles_run"]),
                kernel=dict(payload["kernel"]),
                clock=dict(payload["clock"]),
                signals={
                    str(k): list(v) for k, v in payload["signals"].items()
                },
                modules={
                    str(k): dict(v) for k, v in payload["modules"].items()
                },
                txn_next=int(payload["txn_next"]),
                letters=[dict(x) for x in payload["letters"]],
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise CheckpointFormatError(
                f"malformed checkpoint payload: {exc}"
            ) from exc
        claimed = doc.get("digest")
        if claimed != checkpoint.digest:
            raise CheckpointIntegrityError(
                f"checkpoint digest mismatch: claimed {claimed!r}, "
                f"payload hashes to {checkpoint.digest!r}"
            )
        return checkpoint

    def describe(self) -> str:
        """One-line summary for CLI output and logs."""
        return (
            f"checkpoint {self.digest[:16]} {self.spec.label} "
            f"@cycle {self.cycles_run} ({len(self.modules)} modules, "
            f"{len(self.signals)} signals, {len(self.letters)} letters)"
        )
