"""Snapshot and restore of live scenario systems.

The capture side walks a quiescent system -- kernel, clock driver,
signals, stateful modules, monitor letter stream -- into a
:class:`~repro.checkpoint.snapshot.Checkpoint`.  The restore side
rebuilds the system *from its spec* (construction is deterministic), so
only simulation state travels on the wire: processes are re-created
fresh, parked by a zero-length run, and then every register the
checkpoint carries is written back over them.

Restore equivalence is the contract: ``restore(snapshot(run_to(T)))``
then running ``k`` more cycles is wake-for-wake identical to running
``T+k`` cycles uninterrupted -- same transaction stream, same monitor
verdicts, same coverage, same digests.  ``tests/test_checkpoint.py``
gates it per model, per engine, serial and sharded.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..scenarios.directed import DirectedSequence
from ..scenarios.regression import ScenarioSpec, _attach_monitors, _build_system
from ..scenarios.sequences import sequence_for_profile
from ..sysc.signal import _NOTHING
from .errors import CheckpointStateError
from .snapshot import Checkpoint, decode_signal_value, encode_signal_value

#: KernelStats counters carried through a checkpoint (wall_seconds is a
#: run fact of the *process*, not of the simulated state, and restarts
#: at zero in the restored process)
_STAT_FIELDS = (
    "process_runs",
    "delta_cycles",
    "signal_changes",
    "time_advances",
    "max_deltas_per_instant",
    "fast_path_instants",
    "full_path_instants",
)


def _stateful_modules(system: Any) -> Dict[str, Any]:
    """basename -> module, for everything with checkpoint_state()."""
    modules: Dict[str, Any] = {system.arbiter.basename: system.arbiter}
    for master in system.masters:
        modules[master.basename] = master
    for slave in getattr(system, "slaves", ()):
        modules[slave.basename] = slave
    for target in getattr(system, "targets", ()):
        modules[target.basename] = target
    return modules


def _clock_driver(system: Any):
    """The kernel-internal clock driver process (found by name)."""
    name = f"{system.clock.name}.driver"
    for process in system.simulator.processes:
        if process.name == name:
            return process
    raise CheckpointStateError(f"clock driver {name!r} not registered")


def snapshot_system(
    system: Any,
    spec: ScenarioSpec,
    cycles_run: int,
    harness: Optional[Any] = None,
) -> Checkpoint:
    """Capture a quiescent scenario system into a checkpoint.

    The system must sit at a cycle boundary right after a
    ``run_cycles`` returned: no runnable processes, no pending signal
    updates, and exactly one pending timer (the clock driver's next
    edge).  Anything else means mid-instant state that a fresh process
    tree could not re-enter, so capture refuses rather than producing a
    checkpoint that restores *almost* correctly.
    """
    sim = system.simulator
    if sim._runnable or sim._delta_notified or sim._update_requests:
        raise CheckpointStateError(
            "system is mid-instant (runnable processes or pending "
            "updates); snapshot only at a cycle boundary"
        )
    driver = _clock_driver(system)
    pending: List[Tuple[int, Any]] = [
        (fire_time, event)
        for fire_time, sequence, event in sim._timed
        if sequence not in sim._cancelled
    ]
    if len(pending) != 1 or pending[0][1] is not driver._timer:
        names = [event.name for _, event in pending]
        raise CheckpointStateError(
            f"expected exactly the clock timer pending, found {names!r}"
        )
    for signal in sim.signals:
        if signal._next is not _NOTHING:
            raise CheckpointStateError(
                f"signal {signal.name!r} has an uncommitted write"
            )
    if spec.with_monitors:
        if harness is None or not harness.record_letters:
            raise CheckpointStateError(
                "spec runs with monitors but the harness did not record "
                "its letter stream (set harness.record_letters before "
                "running)"
            )
        letters = [dict(letter) for letter in harness.recorded_letters]
    else:
        letters = []
    clock = system.clock
    return Checkpoint(
        spec=spec,
        cycles_run=cycles_run,
        kernel={
            "time": sim.time,
            "delta_count": sim.delta_count,
            "stats": {
                name: getattr(sim.stats, name) for name in _STAT_FIELDS
            },
        },
        clock={
            "cycle_count": clock.cycle_count,
            "high_next": driver._high_next,
            "started": driver._started,
            "timer_delay": pending[0][0] - sim.time,
        },
        signals={
            signal.name: [
                encode_signal_value(signal.read()),
                signal._last_change_delta,
            ]
            for signal in sim.signals
        },
        modules={
            name: module.checkpoint_state()
            for name, module in _stateful_modules(system).items()
        },
        txn_next=system.txn_ids._next,
        letters=letters,
    )


def restore_system(checkpoint: Checkpoint) -> Tuple[Any, Optional[Any]]:
    """Rebuild a live system in the checkpointed state.

    Returns ``(system, harness)`` -- the harness is None unless the
    spec runs with monitors.  The system is ready for more
    ``run_cycles`` calls and behaves wake-for-wake like the original.
    """
    spec = checkpoint.spec
    system = _build_system(spec)
    harness = _attach_monitors(spec, system) if spec.with_monitors else None
    sim = system.simulator
    # Park every process: the zero-length run executes the time-0
    # instant (processes run to their first wait and the first posedge
    # fires), leaving the kernel quiescent.  All state that instant
    # produced is overwritten below.
    sim.run(0)
    if sim._runnable or sim._delta_notified or sim._update_requests:
        raise CheckpointStateError("system did not quiesce during restore")

    # -- kernel clocking ------------------------------------------------------
    sim.time = checkpoint.kernel["time"]
    sim.delta_count = checkpoint.kernel["delta_count"]
    for name, value in checkpoint.kernel["stats"].items():
        setattr(sim.stats, name, value)

    # -- clock driver: drop the time-0 timer, arm the checkpointed one ---------
    driver = _clock_driver(system)
    sim._timed.clear()
    sim._timed_ids.clear()
    sim._cancelled.clear()
    driver._high_next = checkpoint.clock["high_next"]
    driver._started = checkpoint.clock["started"]
    system.clock.cycle_count = checkpoint.clock["cycle_count"]
    # the driver is already in its timer's dynamic waiters (it armed
    # itself during the time-0 instant); only the heap entry is rebuilt
    if driver not in driver._timer.dynamic_waiters:
        raise CheckpointStateError("clock driver lost its timer wait")
    sim._notify_timed_fast(driver._timer, checkpoint.clock["timer_delay"])

    # -- signals ---------------------------------------------------------------
    by_name = {signal.name: signal for signal in sim.signals}
    if set(by_name) != set(checkpoint.signals):
        missing = sorted(set(checkpoint.signals) - set(by_name))
        extra = sorted(set(by_name) - set(checkpoint.signals))
        raise CheckpointStateError(
            f"signal set mismatch (missing={missing!r}, extra={extra!r}); "
            "checkpoint does not match this spec's topology"
        )
    for name, (value_doc, last_change) in checkpoint.signals.items():
        signal = by_name[name]
        signal._current = decode_signal_value(value_doc)
        signal._last_change_delta = last_change

    # -- modules ---------------------------------------------------------------
    modules = _stateful_modules(system)
    if set(modules) != set(checkpoint.modules):
        raise CheckpointStateError(
            "module set mismatch; checkpoint does not match this spec"
        )
    for name, doc in checkpoint.modules.items():
        modules[name].restore_state(doc)

    # -- bookkeeping ---------------------------------------------------------
    system.txn_ids._next = checkpoint.txn_next
    if harness is not None:
        harness.record_letters = True
        harness.replay_letters(checkpoint.letters)
    return system, harness


#: spec fields that must agree between a resuming spec and the
#: checkpoint it resumes from -- they determine topology, module set
#: and monitor wiring, none of which a restore can change
_PINNED_FIELDS = ("model", "topology", "seed", "fault", "with_monitors")


def restore_scenario(
    spec: ScenarioSpec, checkpoint: Checkpoint
) -> Tuple[Any, Optional[Any]]:
    """Restore a checkpoint and retarget the live system at ``spec``.

    Two shapes, one entry point:

    * **plain resume** -- ``spec`` carries the same stimulus as the
      checkpoint's spec and simply asks for more total cycles; the
      restored masters keep consuming the original item streams.
    * **fork** -- ``spec`` carries different ``goals`` (or profile);
      the restored system is re-armed with the new sequence via
      :meth:`rebind_sequence`, which is how frontier planning plays a
      fresh goal set from a mid-run state instead of from reset.

    Fields that define the system itself (model, topology, seed, fault,
    monitor wiring) must match -- a checkpoint cannot restore into a
    structurally different system.
    """
    base = checkpoint.spec
    for name in _PINNED_FIELDS:
        if getattr(spec, name) != getattr(base, name):
            raise CheckpointStateError(
                f"cannot resume: spec field {name!r} differs from the "
                f"checkpoint's ({getattr(spec, name)!r} != "
                f"{getattr(base, name)!r})"
            )
    if spec.cycles < checkpoint.cycles_run:
        raise CheckpointStateError(
            f"spec asks for {spec.cycles} total cycles but the "
            f"checkpoint already ran {checkpoint.cycles_run}"
        )
    system, harness = restore_system(checkpoint)
    if spec.goals != base.goals or spec.profile != base.profile:
        if spec.goals:
            sequence: Any = DirectedSequence(spec.goals)
        else:
            sequence = sequence_for_profile(spec.profile)
        system.rebind_sequence(sequence)
    return system, harness


def snapshot_scenario_run(spec: ScenarioSpec, cycles: int) -> Checkpoint:
    """Run a spec from reset for ``cycles`` and snapshot the result.

    The standalone capture entry point (CLI ``python -m repro
    checkpoint``, the differential tests, frontier planning).
    """
    system = _build_system(spec)
    harness = None
    if spec.with_monitors:
        harness = _attach_monitors(spec, system)
        harness.record_letters = True
    system.run_cycles(cycles)
    return snapshot_system(system, spec, cycles, harness)
