"""Typed checkpoint failure taxonomy.

Mirrors the dispatch layer's contract (:mod:`repro.dispatch.worker`):
every way a checkpoint wire form can be unusable gets its own exception
type, so transports can map failures to distinct responses (the
``/checkpoints`` endpoint returns 400 for malformed and stale-version
documents and refuses to restore anything whose digest does not match
its payload) and tests can assert the *kind* of rejection, not just
that one happened.
"""

from __future__ import annotations


class CheckpointError(Exception):
    """Base class for every checkpoint failure."""


class CheckpointFormatError(CheckpointError):
    """The wire form is structurally wrong (truncated, wrong types,
    missing fields, not a checkpoint document at all)."""


class CheckpointVersionError(CheckpointError):
    """The wire form was written by a newer writer than this reader."""


class CheckpointIntegrityError(CheckpointError):
    """The payload does not hash to the digest it claims (corruption,
    tampering, or a half-written file that atomic replace should have
    prevented)."""


class CheckpointStateError(CheckpointError):
    """The live system cannot be snapshotted or restored (not quiescent,
    foreign pending timers, module/signal mismatch against the spec)."""


class UnknownCheckpointError(CheckpointError):
    """A by-reference digest names a checkpoint the registry/cache does
    not hold (the remote client should upload it and retry)."""
