"""Checkpoint/restore for scenario systems.

The paper's flow -- and PR 4's directed-closure loop on top of it --
re-runs every simulation from reset, replaying the same warm-up to
revisit a frontier state.  This package makes simulation state a
first-class, shippable object instead:

* :mod:`~repro.checkpoint.snapshot` -- the :class:`Checkpoint` wire
  object: canonical JSON, SHA-256 digest, typed rejection of corrupt /
  truncated / stale-version documents.
* :mod:`~repro.checkpoint.capture` -- :func:`snapshot_system` /
  :func:`restore_system`: deep state capture of the pure-Python
  SystemC side (kernel clocking, signals, phase-machine modules,
  monitor letter streams) with the restore-equivalence guarantee
  ``restore(snapshot(T)) + k cycles == run(T + k)``, byte-identical
  digests included.
* :mod:`~repro.checkpoint.store` -- digest-addressed registry with
  disk spill (``REPRO_CHECKPOINT_DIR``) plus atomic single-file
  persistence for the CLI.

Consumers: ``ScenarioSpec.resume_from`` (regression runs forked from a
frontier state), the directed-closure frontier planner
(:mod:`repro.workbench.session`), the dispatch workers' by-reference
``/checkpoints`` uploads, and the coordinator's resumable jobs.  See
``docs/checkpoint.md``.
"""

from .capture import (
    restore_scenario,
    restore_system,
    snapshot_scenario_run,
    snapshot_system,
)
from .errors import (
    CheckpointError,
    CheckpointFormatError,
    CheckpointIntegrityError,
    CheckpointStateError,
    CheckpointVersionError,
    UnknownCheckpointError,
)
from .snapshot import WIRE_VERSION, Checkpoint
from .store import (
    SPILL_DIR_ENV,
    CheckpointRegistry,
    ensure_spill_dir,
    global_registry,
    load_checkpoint,
    reset_global_registry,
    save_checkpoint,
)

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "CheckpointFormatError",
    "CheckpointIntegrityError",
    "CheckpointRegistry",
    "CheckpointStateError",
    "CheckpointVersionError",
    "SPILL_DIR_ENV",
    "UnknownCheckpointError",
    "WIRE_VERSION",
    "ensure_spill_dir",
    "global_registry",
    "load_checkpoint",
    "reset_global_registry",
    "restore_scenario",
    "restore_system",
    "save_checkpoint",
    "snapshot_scenario_run",
    "snapshot_system",
]
