"""Checkpoint persistence and by-digest sharing.

Two tiers, matching how runs are dispatched:

* :class:`CheckpointRegistry` -- a process-local, thread-safe map from
  digest to :class:`~repro.checkpoint.snapshot.Checkpoint`, with an
  optional *spill directory*.  With a spill directory every ``put``
  also lands on disk and every miss falls back to disk, which is what
  lets ``ScenarioSpec.resume_from`` cross process boundaries: the
  serial engine resolves digests from memory, multiprocessing workers
  and :class:`~repro.dispatch.hosts.LocalSubprocessHost` shard
  subprocesses resolve the same digests from the directory named by
  ``REPRO_CHECKPOINT_DIR``.  HTTP workers use the dispatch layer's
  ``/checkpoints`` upload instead (:mod:`repro.dispatch.worker`).

* :func:`save_checkpoint` / :func:`load_checkpoint` -- single-file
  persistence for the CLI.  Writes are atomic (tempfile + fsync +
  rename, the :class:`~repro.coordinator.store.ResultStore`
  discipline) so a crash mid-write leaves either the old file or no
  file, never a half-checkpoint -- and if one appears anyway, the
  digest check in ``Checkpoint.from_json`` rejects it.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from typing import Dict, Iterable, Optional

from .errors import CheckpointFormatError, UnknownCheckpointError
from .snapshot import Checkpoint

#: processes inherit this to share one spill directory across a fan-out
SPILL_DIR_ENV = "REPRO_CHECKPOINT_DIR"


def write_checkpoint_file(checkpoint: Checkpoint, path: str) -> str:
    """Atomically write one checkpoint wire document to ``path``.

    tempfile in the destination directory, fsync, then rename: the
    destination is never observable half-written, even through a crash
    or a killed worker (the satellite fix this PR ships -- restore can
    trust any file that exists).
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    handle, tmp = tempfile.mkstemp(
        dir=directory, prefix=".checkpoint-", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            json.dump(checkpoint.to_json(), stream, sort_keys=True)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return path


def save_checkpoint(checkpoint: Checkpoint, path: str) -> str:
    """Public single-file save (CLI ``python -m repro checkpoint``)."""
    return write_checkpoint_file(checkpoint, path)


def load_checkpoint(path: str) -> Checkpoint:
    """Read and verify a checkpoint file written by ``save_checkpoint``."""
    try:
        with open(path, "r", encoding="utf-8") as stream:
            doc = json.load(stream)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointFormatError(
            f"cannot read checkpoint file {path!r}: {exc}"
        ) from exc
    return Checkpoint.from_json(doc)


class CheckpointRegistry:
    """Digest-addressed checkpoint map with optional disk spill."""

    def __init__(self, spill_dir: Optional[str] = None):
        self._lock = threading.Lock()
        self._entries: Dict[str, Checkpoint] = {}
        self.spill_dir = spill_dir
        if spill_dir:
            os.makedirs(spill_dir, exist_ok=True)

    def _spill_path(self, digest: str) -> Optional[str]:
        if not self.spill_dir:
            return None
        return os.path.join(self.spill_dir, f"{digest}.checkpoint.json")

    def put(self, checkpoint: Checkpoint) -> str:
        """Register a checkpoint; returns its digest (the handle)."""
        digest = checkpoint.digest
        with self._lock:
            self._entries[digest] = checkpoint
        path = self._spill_path(digest)
        if path is not None and not os.path.exists(path):
            write_checkpoint_file(checkpoint, path)
        return digest

    def get(self, digest: str) -> Checkpoint:
        """Resolve a digest; raises :class:`UnknownCheckpointError`."""
        with self._lock:
            hit = self._entries.get(digest)
        if hit is not None:
            return hit
        path = self._spill_path(digest)
        if path is not None and os.path.exists(path):
            checkpoint = load_checkpoint(path)
            if checkpoint.digest != digest:
                raise UnknownCheckpointError(
                    f"spill file for {digest} holds {checkpoint.digest}"
                )
            with self._lock:
                self._entries[digest] = checkpoint
            return checkpoint
        raise UnknownCheckpointError(f"unknown checkpoint {digest!r}")

    def attach_spill(self, spill_dir: str) -> None:
        """Late-bind a spill directory and flush current entries to it.

        Used right before a fan-out: checkpoints registered while the
        registry was memory-only become visible to child processes the
        moment the directory exists and ``REPRO_CHECKPOINT_DIR`` names
        it.
        """
        os.makedirs(spill_dir, exist_ok=True)
        self.spill_dir = spill_dir
        with self._lock:
            entries = list(self._entries.values())
        for checkpoint in entries:
            path = self._spill_path(checkpoint.digest)
            if path is not None and not os.path.exists(path):
                write_checkpoint_file(checkpoint, path)

    def __contains__(self, digest: str) -> bool:
        try:
            self.get(digest)
        except UnknownCheckpointError:
            return False
        return True

    def digests(self) -> Iterable[str]:
        """Digests of every in-memory entry (spilled-only ones excluded)."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop the in-memory entries; spill files stay on disk."""
        with self._lock:
            self._entries.clear()


#: the process-global registry ``ScenarioSpec.resume_from`` resolves
#: against; its spill directory follows ``REPRO_CHECKPOINT_DIR`` so
#: worker subprocesses inherit the parent's checkpoints
_GLOBAL: Optional[CheckpointRegistry] = None
_GLOBAL_LOCK = threading.Lock()


def global_registry() -> CheckpointRegistry:
    """The lazily-created process-global registry.

    Re-reads ``REPRO_CHECKPOINT_DIR`` when the registry is first
    created in this process, which is exactly when a freshly spawned
    worker inherits the fan-out's spill directory.
    """
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is None:
            _GLOBAL = CheckpointRegistry(os.environ.get(SPILL_DIR_ENV))
        return _GLOBAL


def reset_global_registry() -> None:
    """Drop the process-global registry (tests, spill-dir changes)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        _GLOBAL = None


def ensure_spill_dir() -> str:
    """Make the global registry's checkpoints reachable by child processes.

    Gives the process-global registry a disk spill if it has none
    (creating a temp directory), exports it as ``REPRO_CHECKPOINT_DIR``
    so spawned workers and ``--shard K/N`` subprocesses inherit it, and
    flushes already-registered checkpoints to it.  Idempotent; returns
    the spill directory.
    """
    registry = global_registry()
    if registry.spill_dir:
        os.environ.setdefault(SPILL_DIR_ENV, registry.spill_dir)
        return registry.spill_dir
    spill = os.environ.get(SPILL_DIR_ENV) or tempfile.mkdtemp(
        prefix="repro-checkpoints-"
    )
    os.environ[SPILL_DIR_ENV] = spill
    registry.attach_spill(spill)
    return spill
