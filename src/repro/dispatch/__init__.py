"""Sharded regression dispatch: partition, fan over hosts, merge.

The scaling tier above :mod:`repro.scenarios.regression`'s local
``multiprocessing`` fan-out.  A regression's spec list is partitioned
into deterministic shards (:mod:`.planner`), each shard runs on a
:class:`Host` -- a ``python -m repro.scenarios --shard K/N`` subprocess
on this machine (:mod:`.hosts`) or a ``python -m repro.dispatch.worker``
HTTP daemon on another one (:mod:`.http_host` / :mod:`.worker`) -- and
the per-shard reports fold back together in canonical spec order
(:mod:`.dispatcher`), so the merged
:class:`~repro.scenarios.regression.RegressionReport` digest is
byte-identical to a serial run at any shard count, under either
dispatch schedule (work-stealing default, static for comparison),
including after host failures, retries and steal races.

Three ways in:

* engine seam -- ``Workbench(...).regress(shards=3)`` or
  ``regress(hosts=parse_hosts("h1:8421,h2:8421"))``,
* CLI -- ``python -m repro.scenarios --shards 3`` (local subprocess
  hosts), ``--hosts h1:8421,h2:8421`` (remote HTTP workers) or
  ``--shard K/N`` + ``--merge`` (manual cross-host dispatch),
* direct -- ``ShardDispatcher(specs, shards=3).run()``.

``docs/dispatch.md`` specifies the wire contract and the scheduler.
"""

from .dispatcher import (
    SCHEDULES,
    DispatchError,
    DispatchOutcome,
    ShardDispatcher,
    ShardQueue,
    ShardRun,
    merge_reports,
)
from .hosts import (
    FAILURE_KINDS,
    Host,
    HostFailure,
    InProcessHost,
    LocalSubprocessHost,
    ShardWork,
)
from .http_host import CachingHttpHost, HttpHost, parse_hosts
from .planner import (
    OVERSUBSCRIPTION,
    Shard,
    plan_digest,
    plan_shards,
    shards_for_hosts,
    specs_fingerprint,
)

__all__ = [
    "SCHEDULES",
    "DispatchError",
    "DispatchOutcome",
    "ShardDispatcher",
    "ShardQueue",
    "ShardRun",
    "merge_reports",
    "CachingHttpHost",
    "FAILURE_KINDS",
    "Host",
    "HostFailure",
    "HttpHost",
    "InProcessHost",
    "LocalSubprocessHost",
    "ShardWork",
    "parse_hosts",
    "OVERSUBSCRIPTION",
    "Shard",
    "plan_digest",
    "plan_shards",
    "shards_for_hosts",
    "specs_fingerprint",
]
