"""Sharded regression dispatch: partition, fan over hosts, merge.

The scaling tier above :mod:`repro.scenarios.regression`'s local
``multiprocessing`` fan-out.  A regression's spec list is partitioned
into deterministic shards (:mod:`.planner`), each shard runs on a
:class:`Host` -- by default a ``python -m repro.scenarios --shard K/N``
subprocess standing in for a remote machine (:mod:`.hosts`) -- and the
per-shard reports fold back together in canonical spec order
(:mod:`.dispatcher`), so the merged
:class:`~repro.scenarios.regression.RegressionReport` digest is
byte-identical to a serial run at any shard count, including after
host failures and retries.

Three ways in:

* engine seam -- ``Workbench(...).regress(shards=3)`` or
  ``RegressionRunner(specs, engine=ShardedEngine(3))``,
* CLI -- ``python -m repro.scenarios --shards 3`` (automatic) or
  ``--shard K/N`` + ``--merge`` (manual cross-host dispatch),
* direct -- ``ShardDispatcher(specs, shards=3).run()``.
"""

from .dispatcher import (
    DispatchError,
    DispatchOutcome,
    ShardDispatcher,
    ShardRun,
    merge_reports,
)
from .hosts import (
    Host,
    HostFailure,
    InProcessHost,
    LocalSubprocessHost,
    ShardWork,
)
from .planner import Shard, plan_digest, plan_shards

__all__ = [
    "DispatchError",
    "DispatchOutcome",
    "ShardDispatcher",
    "ShardRun",
    "merge_reports",
    "Host",
    "HostFailure",
    "InProcessHost",
    "LocalSubprocessHost",
    "ShardWork",
    "Shard",
    "plan_digest",
    "plan_shards",
]
