"""Execution hosts: where a planned shard actually runs.

A :class:`Host` is the dispatch layer's unit of failure.  Three
implementations exist behind the protocol: :class:`LocalSubprocessHost`
runs every shard in its own ``python -m repro.scenarios --shard K/N``
process on this machine, :class:`~.http_host.HttpHost` POSTs the shard
to a ``python -m repro.dispatch.worker`` daemon on another machine,
and :class:`InProcessHost` runs the shard inline for tests and
degenerate one-shard runs.  Only JSON wire forms cross a host boundary
-- :class:`~repro.scenarios.regression.ScenarioSpec` (goals and
``track_fsm`` included, so directed-closure shards travel too) going
in, a :class:`~repro.scenarios.regression.RegressionReport` coming out
-- which is why the transports are interchangeable above this module.

A host that dies, times out, emits unparseable output or returns a
report that fails digest verification raises :class:`HostFailure`; the
dispatcher treats that as "this machine is gone", not "the regression
failed", and retries the shard elsewhere.  A *regression* failure (the
scenarios genuinely diverged) is a valid report and is never retried.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import dataclass
from typing import List, Optional, Protocol, runtime_checkable

from ..scenarios.regression import RegressionReport, RegressionRunner
from ..workbench.engines import SerialEngine
from .planner import Shard


@dataclass(frozen=True)
class ShardWork:
    """One shard assignment handed to a host.

    ``shard`` carries the planned slice itself (``shard.specs``) --
    network transports serialize exactly that.  ``spec_file`` holds the
    *full* serialized spec list for transports that re-derive the slice
    host-side from ``(spec_file, index, of)`` via the shared planner,
    which is what :class:`LocalSubprocessHost`'s ``--shard K/N`` child
    does.  Both routes produce the same specs by construction (the
    planner is deterministic), so which one a transport uses is
    invisible in the merged digest.
    """

    shard: Shard
    spec_file: str
    workers: Optional[int] = None     # per-host worker processes


#: The failure-kind taxonomy (``HostFailure.kind``).  The dispatcher
#: keeps these as per-host counters (``DispatchOutcome.failure_counts``)
#: instead of collapsing every failure into one retry path.
FAILURE_KINDS = (
    "refused",          # connection refused (worker not listening)
    "reset",            # connection reset mid-transfer
    "timeout",          # transport or subprocess deadline exceeded
    "non-200",          # worker answered with an HTTP error status
    "garbage-json",     # body/stdout did not parse as a shard report
    "digest-mismatch",  # report parsed but failed digest verification
    "spawn",            # subprocess could not even start
    "killed",           # subprocess died on a signal
    "bad-report",       # report parsed and verified but is incoherent
    "transport",        # other transport-level failure (DNS, ...)
)


class HostFailure(RuntimeError):
    """A host (not the regression) failed: crash, timeout, bad output.

    ``kind`` classifies the failure into the :data:`FAILURE_KINDS`
    taxonomy so the dispatcher can count *why* hosts fail, per host,
    rather than only that they did.
    """

    def __init__(
        self, host: str, shard_label: str, reason: str, kind: str = "transport"
    ):
        super().__init__(f"{host} failed on {shard_label}: {reason}")
        self.host = host
        self.shard_label = shard_label
        self.reason = reason
        self.kind = kind


@runtime_checkable
class Host(Protocol):
    """Somewhere a shard can run."""

    name: str

    def run_shard(self, work: ShardWork) -> RegressionReport:
        """Execute the shard and return its report, or raise HostFailure."""
        ...


class InProcessHost:
    """Runs the shard inline in this process (tests, one-shard runs)."""

    def __init__(self, name: str = "inline"):
        self.name = name

    def run_shard(self, work: ShardWork) -> RegressionReport:
        """Run the shard's own spec slice serially, in this process."""
        return RegressionRunner(work.shard.specs, engine=SerialEngine()).run()

    def __repr__(self) -> str:
        return f"InProcessHost({self.name!r})"


def _child_env() -> dict:
    """The child must import ``repro`` even when the parent got it via
    ``sys.path`` manipulation (pytest's ``pythonpath`` ini) rather than
    an installed package or an inherited PYTHONPATH."""
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_root + os.pathsep + existing if existing else src_root
        )
    return env


class LocalSubprocessHost:
    """One shard per ``python -m repro.scenarios --shard`` subprocess.

    Stands in for a remote machine: the spec file and the ``--shard
    K/N`` coordinate go in, a JSON report comes out on stdout, and the
    report's digest is re-verified after the round trip.  ``workers``
    sizes the *within-shard* fan-out (default 1 -- the shard process is
    the unit of parallelism, so nested pools would oversubscribe).
    """

    #: tells the dispatcher to materialize ShardWork.spec_file (this
    #: transport's child re-derives its slice from it host-side)
    uses_spec_file = True

    def __init__(
        self,
        name: str = "local0",
        python: Optional[str] = None,
        workers: Optional[int] = None,
        timeout: float = 600.0,
    ):
        self.name = name
        self.python = python or sys.executable
        self.workers = workers
        self.timeout = timeout

    def _command(self, work: ShardWork) -> List[str]:
        shard = work.shard
        return [
            self.python,
            "-m",
            "repro.scenarios",
            "--spec-file",
            work.spec_file,
            "--shard",
            f"{shard.index + 1}/{shard.of}",
            "--workers",
            str(work.workers or self.workers or 1),
            "--json",
        ]

    def _started(self, process: subprocess.Popen) -> None:
        """Hook invoked right after spawn; tests override it to inject
        host failures (e.g. kill the child mid-shard)."""

    def run_shard(self, work: ShardWork) -> RegressionReport:
        """Spawn the ``--shard K/N`` child and verify its JSON report."""
        label = work.shard.label
        try:
            process = subprocess.Popen(
                self._command(work),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=_child_env(),
                text=True,
            )
        except OSError as exc:
            raise HostFailure(
                self.name, label, f"spawn failed: {exc}", kind="spawn"
            ) from exc
        try:
            self._started(process)
            try:
                stdout, stderr = process.communicate(timeout=self.timeout)
            except subprocess.TimeoutExpired as exc:
                raise HostFailure(
                    self.name,
                    label,
                    f"timed out after {self.timeout}s",
                    kind="timeout",
                ) from exc
        finally:
            # every exit from this block must leave the child reaped --
            # a timed-out (or hook-crashed) shard that skipped wait()
            # would accumulate zombies across a long sharded CI run
            if process.poll() is None:
                process.kill()
                process.communicate()
        if process.returncode < 0:
            raise HostFailure(
                self.name,
                label,
                f"killed by signal {-process.returncode}",
                kind="killed",
            )
        try:
            doc = json.loads(stdout)
        except ValueError as exc:
            detail = (stderr or stdout or "").strip().splitlines()
            tail = detail[-1] if detail else "no output"
            raise HostFailure(
                self.name,
                label,
                f"unparseable report (exit {process.returncode}): {tail}",
                kind="garbage-json",
            ) from exc
        report = RegressionReport.from_json(doc)
        if report.digest() != doc.get("digest"):
            raise HostFailure(
                self.name,
                label,
                "shard report failed digest verification",
                kind="digest-mismatch",
            )
        return report

    def __repr__(self) -> str:
        return f"LocalSubprocessHost({self.name!r})"
