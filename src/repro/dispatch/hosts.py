"""Execution hosts: where a planned shard actually runs.

A :class:`Host` is the dispatch layer's unit of failure.  The
production-shaped implementation is :class:`LocalSubprocessHost` --
every shard runs in its own ``python -m repro.scenarios --shard K/N``
process, standing in for a remote machine: the only things that cross
the boundary are the JSON spec file going in and the JSON shard report
coming out, so swapping the subprocess for ssh/HTTP transport touches
nothing above this module.  :class:`InProcessHost` runs the shard
inline and exists for tests and degenerate one-shard runs.

A host that dies, times out, emits unparseable output or returns a
report that fails digest verification raises :class:`HostFailure`; the
dispatcher treats that as "this machine is gone", not "the regression
failed", and retries the shard elsewhere.  A *regression* failure (the
scenarios genuinely diverged) is a valid report and is never retried.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import dataclass
from typing import List, Optional, Protocol, runtime_checkable

from ..scenarios.regression import RegressionReport, RegressionRunner
from ..workbench.engines import SerialEngine
from .planner import Shard


@dataclass(frozen=True)
class ShardWork:
    """One shard assignment handed to a host.

    ``spec_file`` holds the *full* serialized spec list -- the shard's
    content is re-derived host-side from ``(spec_file, index, of)`` by
    the shared planner, which is exactly the agreement a remote machine
    would need.  ``shard`` carries the parent's own slice for
    in-process hosts and bookkeeping.
    """

    shard: Shard
    spec_file: str
    workers: Optional[int] = None     # per-host worker processes


class HostFailure(RuntimeError):
    """A host (not the regression) failed: crash, timeout, bad output."""

    def __init__(self, host: str, shard_label: str, reason: str):
        super().__init__(f"{host} failed on {shard_label}: {reason}")
        self.host = host
        self.shard_label = shard_label
        self.reason = reason


@runtime_checkable
class Host(Protocol):
    """Somewhere a shard can run."""

    name: str

    def run_shard(self, work: ShardWork) -> RegressionReport:
        """Execute the shard and return its report, or raise HostFailure."""
        ...


class InProcessHost:
    """Runs the shard inline in this process (tests, one-shard runs)."""

    def __init__(self, name: str = "inline"):
        self.name = name

    def run_shard(self, work: ShardWork) -> RegressionReport:
        return RegressionRunner(work.shard.specs, engine=SerialEngine()).run()

    def __repr__(self) -> str:
        return f"InProcessHost({self.name!r})"


def _child_env() -> dict:
    """The child must import ``repro`` even when the parent got it via
    ``sys.path`` manipulation (pytest's ``pythonpath`` ini) rather than
    an installed package or an inherited PYTHONPATH."""
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_root + os.pathsep + existing if existing else src_root
        )
    return env


class LocalSubprocessHost:
    """One shard per ``python -m repro.scenarios --shard`` subprocess.

    Stands in for a remote machine: the spec file and the ``--shard
    K/N`` coordinate go in, a JSON report comes out on stdout, and the
    report's digest is re-verified after the round trip.  ``workers``
    sizes the *within-shard* fan-out (default 1 -- the shard process is
    the unit of parallelism, so nested pools would oversubscribe).
    """

    def __init__(
        self,
        name: str = "local0",
        python: Optional[str] = None,
        workers: Optional[int] = None,
        timeout: float = 600.0,
    ):
        self.name = name
        self.python = python or sys.executable
        self.workers = workers
        self.timeout = timeout

    def _command(self, work: ShardWork) -> List[str]:
        shard = work.shard
        return [
            self.python,
            "-m",
            "repro.scenarios",
            "--spec-file",
            work.spec_file,
            "--shard",
            f"{shard.index + 1}/{shard.of}",
            "--workers",
            str(work.workers or self.workers or 1),
            "--json",
        ]

    def _started(self, process: subprocess.Popen) -> None:
        """Hook invoked right after spawn; tests override it to inject
        host failures (e.g. kill the child mid-shard)."""

    def run_shard(self, work: ShardWork) -> RegressionReport:
        label = work.shard.label
        try:
            process = subprocess.Popen(
                self._command(work),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=_child_env(),
                text=True,
            )
        except OSError as exc:
            raise HostFailure(self.name, label, f"spawn failed: {exc}") from exc
        self._started(process)
        try:
            stdout, stderr = process.communicate(timeout=self.timeout)
        except subprocess.TimeoutExpired as exc:
            process.kill()
            process.communicate()
            raise HostFailure(
                self.name, label, f"timed out after {self.timeout}s"
            ) from exc
        if process.returncode < 0:
            raise HostFailure(
                self.name, label, f"killed by signal {-process.returncode}"
            )
        try:
            doc = json.loads(stdout)
        except ValueError as exc:
            detail = (stderr or stdout or "").strip().splitlines()
            tail = detail[-1] if detail else "no output"
            raise HostFailure(
                self.name,
                label,
                f"unparseable report (exit {process.returncode}): {tail}",
            ) from exc
        report = RegressionReport.from_json(doc)
        if report.digest() != doc.get("digest"):
            raise HostFailure(
                self.name, label, "shard report failed digest verification"
            )
        return report

    def __repr__(self) -> str:
        return f"LocalSubprocessHost({self.name!r})"
