"""Deterministic shard planning over scenario-spec lists.

The planner is the only piece of the dispatch layer both sides of a
host boundary must agree on: the parent that assigns shards and the
worker process that executes ``--shard K/N`` slice the *same* spec
list with the *same* rule, so a shard's content is a pure function of
``(specs, K, N)`` -- no negotiation, no state.

The rule is round-robin over the canonical spec order
(``specs[k::n]``): spec *i* lands on shard ``i mod N``.  Round-robin
keeps shard runtimes balanced when specs cycle through models and
topologies (which :func:`~repro.scenarios.regression.build_specs`
does), and since the merged report re-sorts verdicts by spec, the
assignment rule never shows up in the digest.

Shard *count* is a free choice precisely because of that invariance:
:func:`shards_for_hosts` picks the default for a host pool --
oversubscribed by :data:`OVERSUBSCRIPTION` so the work-stealing
dispatcher has a queue tail to rebalance when shard runtimes skew.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..scenarios.regression import ScenarioSpec


@dataclass(frozen=True)
class Shard:
    """One planned unit of dispatch: a deterministic slice of the specs."""

    index: int                        # zero-based shard number
    of: int                           # total shard count in the plan
    specs: Tuple[ScenarioSpec, ...]

    @property
    def label(self) -> str:
        """The 1-based ``shard K/N`` form the CLIs and logs use."""
        return f"shard {self.index + 1}/{self.of}"

    def __len__(self) -> int:
        return len(self.specs)


def plan_shards(specs: Sequence[ScenarioSpec], shards: int) -> List[Shard]:
    """Partition ``specs`` into ``shards`` deterministic round-robin slices.

    Every spec lands on exactly one shard; shards may be empty when
    there are more shards than specs (the dispatcher skips those).
    """
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    specs = list(specs)
    return [
        Shard(index=k, of=shards, specs=tuple(specs[k::shards]))
        for k in range(shards)
    ]


#: Default shards-per-host factor.  1 would pin each host to exactly
#: one shard (no queue, nothing to steal); higher factors shrink the
#: stealable work unit but pay more per-shard overhead.  2 keeps the
#: slowest host's worst case at half its static-schedule share.
OVERSUBSCRIPTION = 2


def shards_for_hosts(
    n_hosts: int, n_specs: int, factor: int = OVERSUBSCRIPTION
) -> int:
    """Default shard count for a host pool: ``factor`` shards per host,
    never more shards than specs, never fewer than one.

    Only a default -- any shard count merges to the same digest -- but
    the work-stealing schedule needs shards > hosts before it can
    rebalance at all.
    """
    if n_hosts < 1:
        raise ValueError(f"host count must be >= 1, got {n_hosts}")
    return max(1, min(n_hosts * factor, n_specs))


def specs_fingerprint(specs: Sequence[ScenarioSpec]) -> str:
    """Content fingerprint of a spec list (the spec-cache / job key).

    Computed over the canonical JSON wire form in list order, so both
    sides of a host boundary -- a client that uploads a regression's
    specs once and a worker that re-derives shard slices from its cache
    -- agree on the key without shipping the list again.  Unlike
    :func:`plan_digest` it is independent of shard count: the same
    regression keeps one fingerprint however it is partitioned.
    """
    payload = json.dumps(
        [spec.to_json() for spec in specs], sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def plan_digest(plan: Sequence[Shard]) -> str:
    """Fingerprint of a plan's shard assignment (diagnostics, not gating:
    the report digest is what equivalence is judged on)."""
    lines = [
        f"{shard.label}: " + ",".join(s.label for s in shard.specs)
        for shard in plan
    ]
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()[:16]
