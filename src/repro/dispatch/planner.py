"""Deterministic shard planning over scenario-spec lists.

The planner is the only piece of the dispatch layer both sides of a
host boundary must agree on: the parent that assigns shards and the
worker process that executes ``--shard K/N`` slice the *same* spec
list with the *same* rule, so a shard's content is a pure function of
``(specs, K, N)`` -- no negotiation, no state.

The rule is round-robin over the canonical spec order
(``specs[k::n]``): spec *i* lands on shard ``i mod N``.  Round-robin
keeps shard runtimes balanced when specs cycle through models and
topologies (which :func:`~repro.scenarios.regression.build_specs`
does), and since the merged report re-sorts verdicts by spec, the
assignment rule never shows up in the digest.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..scenarios.regression import ScenarioSpec


@dataclass(frozen=True)
class Shard:
    """One planned unit of dispatch: a deterministic slice of the specs."""

    index: int                        # zero-based shard number
    of: int                           # total shard count in the plan
    specs: Tuple[ScenarioSpec, ...]

    @property
    def label(self) -> str:
        return f"shard {self.index + 1}/{self.of}"

    def __len__(self) -> int:
        return len(self.specs)


def plan_shards(specs: Sequence[ScenarioSpec], shards: int) -> List[Shard]:
    """Partition ``specs`` into ``shards`` deterministic round-robin slices.

    Every spec lands on exactly one shard; shards may be empty when
    there are more shards than specs (the dispatcher skips those).
    """
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    specs = list(specs)
    return [
        Shard(index=k, of=shards, specs=tuple(specs[k::shards]))
        for k in range(shards)
    ]


def plan_digest(plan: Sequence[Shard]) -> str:
    """Fingerprint of a plan's shard assignment (diagnostics, not gating:
    the report digest is what equivalence is judged on)."""
    lines = [
        f"{shard.label}: " + ",".join(s.label for s in shard.specs)
        for shard in plan
    ]
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()[:16]
