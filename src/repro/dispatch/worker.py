"""The shard worker daemon: ``python -m repro.dispatch.worker --port N``.

The remote end of the HTTP transport.  A worker is a lightweight
stdlib :mod:`http.server` daemon that accepts one kind of work --
"run this shard of a scenario regression" -- and speaks nothing but
the established JSON wire forms
(:class:`~repro.scenarios.regression.ScenarioSpec` in,
:class:`~repro.scenarios.regression.RegressionReport` out), so a
worker on another machine needs only this package and a port.

Endpoints (see ``docs/dispatch.md`` for the full wire contract):

``POST /run``
    Body: ``{"version": 1, "shard": {"index": K, "of": N,
    "specs": [...]}, "workers": M}``.  The worker rebuilds the specs,
    runs them through a :class:`~repro.scenarios.regression.RegressionRunner`
    (``M`` local worker processes, default 1 -- the shard is the unit
    of parallelism) and responds ``200`` with the report's
    ``to_json()`` form, digest included.  Malformed bodies get ``400``,
    run crashes ``500``; both carry ``{"error": ...}``.

``GET /healthz``
    ``200 {"ok": true, "shards_served": n}`` -- dispatcher-side
    liveness probes and readiness polling.

``GET /metrics``
    ``200 {"ok": true, "metrics": {...}}`` -- the worker's own
    counters and fixed-bucket histograms
    (:meth:`repro.obs.MetricsRegistry.to_json` wire shape: shards and
    scenarios served, failures, transactions, per-shard latency).  The
    dispatcher pulls these after a dispatch and folds them into the
    fleet aggregate in the session report's ``observability`` section.

The process writes exactly one line to stdout when it is ready to
serve (``repro-worker listening on http://HOST:PORT``) so a parent
that spawned it with ``--port 0`` can parse the ephemeral port;
request logging goes to stderr.  In-process embedding (tests, the
benchmark harness) goes through :func:`start_worker`, which serves the
same handler from a daemon thread and returns a handle with the bound
port and a ``stop()``.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Sequence

from ..cliutil import route_warnings_to_stderr
from ..obs.metrics import MetricsRegistry

#: Wire-format version the worker speaks; requests carrying a higher
#: version are rejected rather than half-understood.
WIRE_VERSION = 1


class WorkerError(ValueError):
    """A /run request the worker understood enough to refuse (-> 400)."""


def run_shard_request(
    body: Dict[str, Any], metrics: Optional[MetricsRegistry] = None
) -> Dict[str, Any]:
    """Execute one ``POST /run`` body and return the report wire form.

    Pure request -> response: no HTTP in sight, which is what the
    in-process tests exercise.  Raises :class:`WorkerError` for a
    malformed body; anything else propagating out is a genuine worker
    crash and maps to a 500.  ``metrics`` (the serving daemon's own
    registry, never the process-global one) receives the worker-side
    counters the ``GET /metrics`` endpoint reports.
    """
    # imported lazily so `--help` and handler import stay instant
    from ..scenarios.regression import RegressionRunner, ScenarioSpec

    if not isinstance(body, dict):
        raise WorkerError("request body must be a JSON object")
    version = body.get("version", WIRE_VERSION)
    if not isinstance(version, int):
        raise WorkerError(f"wire version must be an integer, got {version!r}")
    if version > WIRE_VERSION:
        raise WorkerError(
            f"wire version {version} is newer than this worker ({WIRE_VERSION})"
        )
    shard = body.get("shard")
    if not isinstance(shard, dict) or "specs" not in shard:
        raise WorkerError('request needs a "shard" object with "specs"')
    try:
        specs = [ScenarioSpec.from_json(doc) for doc in shard["specs"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise WorkerError(f"unparseable spec in shard: {exc}") from exc
    workers = body.get("workers") or 1
    # spawn, not fork: this runs on a handler thread of a threading
    # HTTP server, and forking a pool while another handler thread may
    # hold a lock (stderr logging, imports) can deadlock the child
    started = time.perf_counter()
    report = RegressionRunner(
        specs, workers=workers, mp_start_method="spawn" if workers > 1 else None
    ).run()
    if metrics is not None:
        metrics.counter("worker.shards_served").inc()
        metrics.counter("worker.scenarios_run").inc(len(report.verdicts))
        metrics.counter("worker.scenarios_failed").inc(len(report.failed))
        metrics.counter("worker.transactions").inc(report.transactions)
        metrics.histogram("worker.shard_seconds").observe(
            time.perf_counter() - started
        )
    doc = report.to_json()
    doc["shard"] = {"index": shard.get("index"), "of": shard.get("of")}
    return doc


class _ShardRequestHandler(BaseHTTPRequestHandler):
    """HTTP plumbing around :func:`run_shard_request`."""

    server_version = "repro-worker/1"
    protocol_version = "HTTP/1.1"

    def _respond(self, status: int, doc: Dict[str, Any]) -> None:
        payload = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 -- http.server API
        """Health probe and metrics export."""
        if self.path == "/metrics":
            self._respond(
                200, {"ok": True, "metrics": self.server.metrics.to_json()}
            )
            return
        if self.path not in ("/", "/healthz"):
            self._respond(404, {"error": f"unknown path {self.path!r}"})
            return
        self._respond(
            200, {"ok": True, "shards_served": self.server.shards_served}
        )

    def do_POST(self) -> None:  # noqa: N802 -- http.server API
        """Run one shard and stream its report back."""
        if self.path != "/run":
            self._respond(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = json.loads(self.rfile.read(length))
        except (TypeError, ValueError) as exc:
            self._respond(400, {"error": f"unparseable request body: {exc}"})
            return
        try:
            doc = run_shard_request(body, metrics=self.server.metrics)
        except WorkerError as exc:
            self._respond(400, {"error": str(exc)})
            return
        except Exception as exc:  # noqa: BLE001 -- crash maps to 500, daemon survives
            self._respond(
                500, {"error": f"shard run crashed: {type(exc).__name__}: {exc}"}
            )
            return
        self.server.shards_served += 1
        self._respond(200, doc)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Request log to stderr; stdout carries only the ready line."""
        sys.stderr.write(
            f"repro-worker {self.address_string()} {format % args}\n"
        )


class _WorkerServer(ThreadingHTTPServer):
    """Threading server so health probes answer while a shard runs."""

    daemon_threads = True

    def __init__(self, address, handler):
        super().__init__(address, handler)
        self.shards_served = 0
        # the daemon's own registry (not the process-global OBS one):
        # an in-process worker embedded by tests must not leak its
        # counters into -- or read them from -- the embedding run
        self.metrics = MetricsRegistry(enabled=True)


@dataclass
class WorkerHandle:
    """An in-process worker daemon (tests, benchmarks, examples)."""

    server: _WorkerServer
    thread: threading.Thread

    @property
    def port(self) -> int:
        """The actually-bound TCP port (resolved when port 0 was asked)."""
        return self.server.server_address[1]

    @property
    def address(self) -> str:
        """``host:port`` as :class:`~.http_host.HttpHost` wants it."""
        host = self.server.server_address[0]
        return f"{host}:{self.port}"

    def stop(self) -> None:
        """Shut the server down and join its serving thread."""
        self.server.shutdown()
        self.thread.join(timeout=10)
        self.server.server_close()


def start_worker(port: int = 0, host: str = "127.0.0.1") -> WorkerHandle:
    """Serve the worker endpoints from a daemon thread; port 0 = ephemeral."""
    server = _WorkerServer((host, port), _ShardRequestHandler)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-worker", daemon=True
    )
    thread.start()
    return WorkerHandle(server=server, thread=thread)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry: bind, announce readiness on stdout, serve until killed."""
    parser = argparse.ArgumentParser(
        prog="repro.dispatch.worker",
        description="Shard worker daemon: accepts POST /run shard "
        "requests and returns regression-report JSON.",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8421,
        help="TCP port to listen on (0 picks an ephemeral port, "
        "announced on stdout)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default loopback; 0.0.0.0 to serve "
        "a real dispatcher)",
    )
    options = parser.parse_args(argv)
    route_warnings_to_stderr()
    server = _WorkerServer((options.host, options.port), _ShardRequestHandler)
    bound_host, bound_port = server.server_address[:2]
    # the one stdout line: parents spawning `--port 0` parse it
    print(f"repro-worker listening on http://{bound_host}:{bound_port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
