"""The shard worker daemon: ``python -m repro.dispatch.worker --port N``.

The remote end of the HTTP transport.  A worker is a lightweight
stdlib :mod:`http.server` daemon that accepts one kind of work --
"run this shard of a scenario regression" -- and speaks nothing but
the established JSON wire forms
(:class:`~repro.scenarios.regression.ScenarioSpec` in,
:class:`~repro.scenarios.regression.RegressionReport` out), so a
worker on another machine needs only this package and a port.

Endpoints (see ``docs/dispatch.md`` and ``docs/coordinator.md`` for
the full wire contract):

``POST /run``
    Body: ``{"version": 1, "shard": {"index": K, "of": N,
    "specs": [...]}, "workers": M}``.  The worker rebuilds the specs,
    runs them through a :class:`~repro.scenarios.regression.RegressionRunner`
    (``M`` local worker processes, default 1 -- the shard is the unit
    of parallelism) and responds ``200`` with the report's
    ``to_json()`` form, digest included.  Alternatively the shard may
    reference a cached spec list instead of carrying one:
    ``"shard": {"index": K, "of": N, "fingerprint": F}`` re-derives
    the slice from the ``POST /specs`` upload keyed by ``F`` with the
    shared deterministic planner (``404`` with ``"unknown spec
    fingerprint"`` when the worker does not hold ``F``).  Malformed
    bodies get ``400``, run crashes ``500``; all carry
    ``{"error": ...}``.

``POST /specs``
    Body: ``{"version": 1, "fingerprint": F, "specs": [...]}`` -- the
    spec-cache upload: one regression's full spec list, shipped once
    per worker and addressed by
    :func:`~repro.dispatch.planner.specs_fingerprint` thereafter.  The
    worker recomputes the fingerprint and refuses a mismatch (``400``).
    The cache is bounded (:data:`SPEC_CACHE_LIMIT`, least recently
    used evicted first); a ``/run`` that references an evicted entry
    gets the 404 and the client re-uploads.

``POST /checkpoints``
    Body: ``{"version": 1, "checkpoint": <wire doc>}`` -- the
    checkpoint upload backing ``ScenarioSpec.resume_from``: one
    snapshot of a mid-run scenario system, shipped once per worker and
    addressed by its SHA-256 digest thereafter.  The wire document is
    fully re-verified (kind, wire version, payload digest); any
    corrupt, truncated or stale-version upload gets ``400`` with the
    typed rejection.  A ``/run`` whose specs reference a digest this
    worker does not hold gets ``404`` with ``"unknown checkpoint"``
    and the client re-uploads.  The cache is bounded
    (:data:`CHECKPOINT_CACHE_LIMIT`, LRU).

``GET /healthz``
    ``200`` with a JSON liveness document: ``{"ok": true, "version":
    ..., "uptime_seconds": ..., "shards_served": n,
    "spec_cache_entries": n}`` -- dispatcher-side liveness probes,
    readiness polling, and fleet dashboards.

``GET /metrics``
    ``200 {"ok": true, "metrics": {...}}`` -- the worker's own
    counters and fixed-bucket histograms
    (:meth:`repro.obs.MetricsRegistry.to_json` wire shape: shards and
    scenarios served, failures, transactions, per-shard latency,
    spec-cache activity).  The dispatcher pulls these after a dispatch
    and folds them into the fleet aggregate in the session report's
    ``observability`` section.

Auth: started with ``--token SECRET`` the worker refuses POSTs whose
``Authorization`` header is not ``Bearer SECRET`` (``401``); the GET
probes stay open.  Started with ``--coordinator URL`` the worker
self-registers with a coordinator daemon on startup and heartbeats it
every ``--heartbeat`` seconds (re-registering whenever the coordinator
forgot it), which is how an elastic fleet grows: start a worker
anywhere, point it at the coordinator, and it joins the pool mid-run.

The process writes exactly one line to stdout when it is ready to
serve (``repro-worker listening on http://HOST:PORT``) so a parent
that spawned it with ``--port 0`` can parse the ephemeral port;
request logging goes to stderr.  In-process embedding (tests, the
benchmark harness) goes through :func:`start_worker`, which serves the
same handler from a daemon thread and returns a handle with the bound
port and a ``stop()``.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.error
import urllib.request
from collections import OrderedDict
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence

from .. import __version__
from ..cliutil import route_warnings_to_stderr
from ..obs.metrics import MetricsRegistry

#: Wire-format version the worker speaks; requests carrying a higher
#: version are rejected rather than half-understood.
WIRE_VERSION = 1

#: Spec-cache capacity in distinct fingerprints.  A worker usually
#: serves a handful of concurrent regressions; least recently used
#: entries are evicted and simply re-uploaded on the next reference.
SPEC_CACHE_LIMIT = 32

#: Checkpoint-cache capacity in distinct digests.  Checkpoints are an
#: order of magnitude bigger than spec lists (full simulation state
#: plus a monitor letter stream), so the worker keeps fewer of them;
#: eviction just costs the client one re-upload.
CHECKPOINT_CACHE_LIMIT = 16

#: Default seconds between heartbeats to a ``--coordinator``.
DEFAULT_HEARTBEAT = 2.0


class WorkerError(ValueError):
    """A request the worker understood enough to refuse (-> 400)."""


class UnknownFingerprintError(WorkerError):
    """A /run referenced a fingerprint this worker does not hold (-> 404).

    Distinct from :class:`WorkerError` so the HTTP layer can answer
    404 and the client knows to re-upload rather than treat the worker
    as broken.
    """


class UnknownCheckpointDigestError(UnknownFingerprintError):
    """A /run referenced a checkpoint this worker does not hold (-> 404).

    Same 404 contract as :class:`UnknownFingerprintError`, but the
    error text names a *checkpoint* so the client re-ships via
    ``POST /checkpoints`` rather than ``POST /specs``.
    """


class SpecCache:
    """Bounded LRU map from spec-list fingerprint to the list itself.

    The worker-side half of the spec-cache protocol: ``put`` verifies
    the claimed fingerprint against the content before caching (a
    corrupt upload must not poison later by-reference runs), ``get``
    refreshes recency.  Thread-safe, because the daemon handles
    requests on a thread per connection.
    """

    def __init__(self, limit: int = SPEC_CACHE_LIMIT):
        self.limit = limit
        self._entries: "OrderedDict[str, List[Any]]" = OrderedDict()
        self._lock = threading.Lock()

    def put(self, fingerprint: str, specs: List[Any]) -> None:
        """Cache one verified spec list, evicting the LRU entry if full."""
        from .planner import specs_fingerprint

        actual = specs_fingerprint(specs)
        if actual != fingerprint:
            raise WorkerError(
                f"spec upload fingerprint mismatch: claimed {fingerprint}, "
                f"content hashes to {actual}"
            )
        with self._lock:
            self._entries[fingerprint] = specs
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.limit:
                self._entries.popitem(last=False)

    def get(self, fingerprint: str) -> List[Any]:
        """The cached list for a fingerprint; raises the 404-class miss."""
        with self._lock:
            if fingerprint not in self._entries:
                raise UnknownFingerprintError(
                    f"unknown spec fingerprint {fingerprint} "
                    "(never uploaded, or evicted -- POST /specs and retry)"
                )
            self._entries.move_to_end(fingerprint)
            return self._entries[fingerprint]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class CheckpointCache:
    """Bounded LRU map from checkpoint digest to the checkpoint itself.

    The worker-side half of the ``POST /checkpoints`` protocol.
    Uploads arrive already verified (:meth:`Checkpoint.from_json`
    recomputes the digest over the canonical payload), so ``put`` only
    has to index by digest; ``get`` refreshes recency and raises the
    404-class miss when the digest was never uploaded or got evicted.
    """

    def __init__(self, limit: int = CHECKPOINT_CACHE_LIMIT):
        self.limit = limit
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def put(self, checkpoint: Any) -> str:
        """Cache one verified checkpoint, evicting the LRU entry if full."""
        digest = checkpoint.digest
        with self._lock:
            self._entries[digest] = checkpoint
            self._entries.move_to_end(digest)
            while len(self._entries) > self.limit:
                self._entries.popitem(last=False)
        return digest

    def get(self, digest: str) -> Any:
        """The cached checkpoint for a digest; raises the 404-class miss."""
        with self._lock:
            if digest not in self._entries:
                raise UnknownCheckpointDigestError(
                    f"unknown checkpoint {digest} (never uploaded, or "
                    "evicted -- POST /checkpoints and retry)"
                )
            self._entries.move_to_end(digest)
            return self._entries[digest]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def _checked_body(body: Dict[str, Any]) -> Dict[str, Any]:
    """Shared request envelope validation (type + wire version)."""
    if not isinstance(body, dict):
        raise WorkerError("request body must be a JSON object")
    version = body.get("version", WIRE_VERSION)
    if not isinstance(version, int):
        raise WorkerError(f"wire version must be an integer, got {version!r}")
    if version > WIRE_VERSION:
        raise WorkerError(
            f"wire version {version} is newer than this worker ({WIRE_VERSION})"
        )
    return body


def store_specs_request(
    body: Dict[str, Any], cache: SpecCache, metrics: Optional[MetricsRegistry] = None
) -> Dict[str, Any]:
    """Execute one ``POST /specs`` body against the worker's spec cache.

    Pure request -> response like :func:`run_shard_request`; raises
    :class:`WorkerError` for malformed bodies and fingerprint
    mismatches.
    """
    from ..scenarios.regression import ScenarioSpec

    body = _checked_body(body)
    fingerprint = body.get("fingerprint")
    if not isinstance(fingerprint, str) or not fingerprint:
        raise WorkerError('spec upload needs a string "fingerprint"')
    if not isinstance(body.get("specs"), list):
        raise WorkerError('spec upload needs a "specs" list')
    try:
        specs = [ScenarioSpec.from_json(doc) for doc in body["specs"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise WorkerError(f"unparseable spec in upload: {exc}") from exc
    cache.put(fingerprint, specs)
    if metrics is not None:
        metrics.counter("worker.spec_uploads").inc()
        metrics.counter("worker.spec_upload_specs").inc(len(specs))
    return {"ok": True, "fingerprint": fingerprint, "specs": len(specs)}


def store_checkpoint_request(
    body: Dict[str, Any],
    cache: CheckpointCache,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    """Execute one ``POST /checkpoints`` body against the worker's cache.

    The wire document is verified end to end by
    :meth:`~repro.checkpoint.snapshot.Checkpoint.from_json` -- wrong
    kind, truncated payload, stale/newer wire version and digest
    mismatch all surface as :class:`WorkerError` (-> 400) with the
    typed checkpoint error's message, so a corrupt upload can never
    poison a later by-reference resume.
    """
    from ..checkpoint.errors import CheckpointError
    from ..checkpoint.snapshot import Checkpoint

    body = _checked_body(body)
    if not isinstance(body.get("checkpoint"), dict):
        raise WorkerError('checkpoint upload needs a "checkpoint" object')
    try:
        checkpoint = Checkpoint.from_json(body["checkpoint"])
    except CheckpointError as exc:
        raise WorkerError(f"rejected checkpoint upload: {exc}") from exc
    digest = cache.put(checkpoint)
    if metrics is not None:
        metrics.counter("worker.checkpoint_uploads").inc()
    return {
        "ok": True,
        "digest": digest,
        "cycles_run": checkpoint.cycles_run,
        "label": checkpoint.spec.label,
    }


def _resolve_resume_checkpoints(
    specs: Sequence[Any],
    checkpoint_cache: Optional[CheckpointCache],
    workers: int,
    metrics: Optional[MetricsRegistry] = None,
) -> None:
    """Make every ``resume_from`` digest in ``specs`` resolvable.

    Digests are pulled from the worker's upload cache into the
    process-global checkpoint registry (where ``run_scenario``
    resolves them); a digest held by neither raises the 404-class miss
    so the client re-uploads.  With a multiprocess fan-out the registry
    additionally gets a disk spill so spawned children inherit the
    checkpoints through ``REPRO_CHECKPOINT_DIR``.
    """
    digests = sorted({s.resume_from for s in specs if s.resume_from})
    if not digests:
        return
    from ..checkpoint.store import ensure_spill_dir, global_registry

    registry = global_registry()
    if workers > 1:
        ensure_spill_dir()
        registry = global_registry()
    for digest in digests:
        if digest in registry:
            continue
        if checkpoint_cache is None:
            raise UnknownCheckpointDigestError(
                f"unknown checkpoint {digest} (this worker has no "
                "checkpoint cache; POST /checkpoints first)"
            )
        registry.put(checkpoint_cache.get(digest))
    if metrics is not None:
        metrics.counter("worker.checkpoint_resumes").inc(len(digests))


def run_shard_request(
    body: Dict[str, Any],
    metrics: Optional[MetricsRegistry] = None,
    spec_cache: Optional[SpecCache] = None,
    checkpoint_cache: Optional[CheckpointCache] = None,
) -> Dict[str, Any]:
    """Execute one ``POST /run`` body and return the report wire form.

    Pure request -> response: no HTTP in sight, which is what the
    in-process tests exercise.  Raises :class:`WorkerError` for a
    malformed body and :class:`UnknownFingerprintError` for a
    by-reference shard whose fingerprint is not cached; anything else
    propagating out is a genuine worker crash and maps to a 500.
    ``metrics`` (the serving daemon's own registry, never the
    process-global one) receives the worker-side counters the
    ``GET /metrics`` endpoint reports.
    """
    # imported lazily so `--help` and handler import stay instant
    from ..scenarios.regression import RegressionRunner, ScenarioSpec

    body = _checked_body(body)
    shard = body.get("shard")
    if not isinstance(shard, dict) or not ("specs" in shard or "fingerprint" in shard):
        raise WorkerError(
            'request needs a "shard" object with "specs" or "fingerprint"'
        )
    if "specs" in shard:
        try:
            specs = [ScenarioSpec.from_json(doc) for doc in shard["specs"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise WorkerError(f"unparseable spec in shard: {exc}") from exc
    else:
        # by-reference shard: re-derive the slice from the cached list
        # with the shared planner, exactly like a --shard K/N child
        from .planner import plan_shards

        if spec_cache is None:
            raise UnknownFingerprintError(
                "this worker has no spec cache; ship specs by value"
            )
        cached = spec_cache.get(str(shard["fingerprint"]))
        index, of = shard.get("index"), shard.get("of")
        if not isinstance(index, int) or not isinstance(of, int) or not (
            0 <= index < of
        ):
            raise WorkerError(
                f"by-reference shard needs integer index/of with "
                f"0 <= index < of, got index={index!r} of={of!r}"
            )
        specs = list(plan_shards(cached, of)[index].specs)
        if metrics is not None:
            metrics.counter("worker.spec_cache_hits").inc()
    workers = body.get("workers") or 1
    _resolve_resume_checkpoints(specs, checkpoint_cache, workers, metrics)
    # spawn, not fork: this runs on a handler thread of a threading
    # HTTP server, and forking a pool while another handler thread may
    # hold a lock (stderr logging, imports) can deadlock the child
    started = time.perf_counter()
    report = RegressionRunner(
        specs, workers=workers, mp_start_method="spawn" if workers > 1 else None
    ).run()
    if metrics is not None:
        metrics.counter("worker.shards_served").inc()
        metrics.counter("worker.scenarios_run").inc(len(report.verdicts))
        metrics.counter("worker.scenarios_failed").inc(len(report.failed))
        metrics.counter("worker.transactions").inc(report.transactions)
        metrics.histogram("worker.shard_seconds").observe(
            time.perf_counter() - started
        )
    doc = report.to_json()
    doc["shard"] = {"index": shard.get("index"), "of": shard.get("of")}
    return doc


class _ShardRequestHandler(BaseHTTPRequestHandler):
    """HTTP plumbing around the pure request handlers."""

    server_version = "repro-worker/1"
    protocol_version = "HTTP/1.1"

    def _respond(self, status: int, doc: Dict[str, Any]) -> None:
        payload = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _authorized(self) -> bool:
        """Bearer-token check for POST endpoints (GET probes stay open)."""
        token = self.server.token
        if not token:
            return True
        if self.headers.get("Authorization") == f"Bearer {token}":
            return True
        self._respond(
            401, {"error": "missing or invalid bearer token (worker has --token)"}
        )
        return False

    def do_GET(self) -> None:  # noqa: N802 -- http.server API
        """Health probe and metrics export."""
        if self.path == "/metrics":
            self._respond(
                200, {"ok": True, "metrics": self.server.metrics.to_json()}
            )
            return
        if self.path not in ("/", "/healthz"):
            self._respond(404, {"error": f"unknown path {self.path!r}"})
            return
        self._respond(200, self.server.health_doc())

    def do_POST(self) -> None:  # noqa: N802 -- http.server API
        """Run one shard (or store one spec/checkpoint upload), answer JSON."""
        if self.path not in ("/run", "/specs", "/checkpoints"):
            self._respond(404, {"error": f"unknown path {self.path!r}"})
            return
        if not self._authorized():
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = json.loads(self.rfile.read(length))
        except (TypeError, ValueError) as exc:
            self._respond(400, {"error": f"unparseable request body: {exc}"})
            return
        try:
            if self.path == "/specs":
                doc = store_specs_request(
                    body, self.server.spec_cache, metrics=self.server.metrics
                )
            elif self.path == "/checkpoints":
                doc = store_checkpoint_request(
                    body,
                    self.server.checkpoint_cache,
                    metrics=self.server.metrics,
                )
            else:
                doc = run_shard_request(
                    body,
                    metrics=self.server.metrics,
                    spec_cache=self.server.spec_cache,
                    checkpoint_cache=self.server.checkpoint_cache,
                )
        except UnknownFingerprintError as exc:
            self._respond(404, {"error": str(exc)})
            return
        except WorkerError as exc:
            self._respond(400, {"error": str(exc)})
            return
        except Exception as exc:  # noqa: BLE001 -- crash maps to 500, daemon survives
            self._respond(
                500, {"error": f"shard run crashed: {type(exc).__name__}: {exc}"}
            )
            return
        if self.path == "/run":
            self.server.shards_served += 1
        self._respond(200, doc)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Request log to stderr; stdout carries only the ready line."""
        sys.stderr.write(
            f"repro-worker {self.address_string()} {format % args}\n"
        )


class _WorkerServer(ThreadingHTTPServer):
    """Threading server so health probes answer while a shard runs."""

    daemon_threads = True

    def __init__(self, address, handler, token: Optional[str] = None):
        super().__init__(address, handler)
        self.shards_served = 0
        self.token = token
        self.spec_cache = SpecCache()
        self.checkpoint_cache = CheckpointCache()
        self.started_monotonic = time.monotonic()
        # the daemon's own registry (not the process-global OBS one):
        # an in-process worker embedded by tests must not leak its
        # counters into -- or read them from -- the embedding run
        self.metrics = MetricsRegistry(enabled=True)

    def health_doc(self) -> Dict[str, Any]:
        """The ``GET /healthz`` body: liveness plus serving facts."""
        from ..psl.compiled import compile_cache_stats, default_engine

        return {
            "ok": True,
            "version": __version__,
            "uptime_seconds": round(time.monotonic() - self.started_monotonic, 3),
            "shards_served": self.shards_served,
            "spec_cache_entries": len(self.spec_cache),
            "checkpoint_cache_entries": len(self.checkpoint_cache),
            # the per-worker property-compilation cache: one compile
            # per distinct property, however many shards x seeds run
            "psl_engine": default_engine(),
            "compile_cache": compile_cache_stats(),
        }


class _CoordinatorLink(threading.Thread):
    """Background registration + heartbeat loop toward a coordinator.

    Registers the worker's advertised address on startup, heartbeats
    every ``interval`` seconds, and re-registers whenever the
    coordinator answers 404 (it restarted, or pruned us as stale) or
    the transport fails.  Failures are logged to stderr and retried --
    a worker must keep serving even while its coordinator is away.
    """

    def __init__(
        self,
        coordinator: str,
        advertise: str,
        token: Optional[str],
        interval: float = DEFAULT_HEARTBEAT,
    ):
        super().__init__(name="repro-worker-heartbeat", daemon=True)
        self.coordinator = coordinator.rstrip("/")
        if "://" not in self.coordinator:
            self.coordinator = f"http://{self.coordinator}"
        self.advertise = advertise
        self.token = token
        self.interval = interval
        # not named _stop: threading.Thread has a private _stop() method
        self._halt = threading.Event()
        self.registrations = 0
        self.heartbeats = 0

    def _post(self, path: str, doc: Dict[str, Any]) -> int:
        headers = {"Content-Type": "application/json"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        request = urllib.request.Request(
            f"{self.coordinator}{path}",
            data=json.dumps(doc, sort_keys=True).encode("utf-8"),
            headers=headers,
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=10.0) as response:
                response.read()
                return response.status
        except urllib.error.HTTPError as exc:
            return exc.code

    def _announce(self, path: str) -> int:
        doc = {
            "version": WIRE_VERSION,
            "address": self.advertise,
            "worker_version": __version__,
        }
        return self._post(path, doc)

    def run(self) -> None:
        """Register, then heartbeat until :meth:`stop` (daemon thread)."""
        registered = False
        while not self._halt.is_set():
            try:
                if not registered:
                    status = self._announce("/workers/register")
                    registered = status == 200
                    if registered:
                        self.registrations += 1
                else:
                    status = self._announce("/workers/heartbeat")
                    if status == 200:
                        self.heartbeats += 1
                    else:
                        registered = False       # coordinator forgot us
                        continue                 # re-register immediately
            except OSError as exc:
                registered = False
                sys.stderr.write(
                    f"repro-worker heartbeat to {self.coordinator} failed: {exc}\n"
                )
            self._halt.wait(self.interval)

    def stop(self) -> None:
        """Best-effort deregister, then end the loop."""
        self._halt.set()
        try:
            self._announce("/workers/deregister")
        except OSError:
            pass


@dataclass
class WorkerHandle:
    """An in-process worker daemon (tests, benchmarks, examples)."""

    server: _WorkerServer
    thread: threading.Thread
    link: Optional[_CoordinatorLink] = None

    @property
    def port(self) -> int:
        """The actually-bound TCP port (resolved when port 0 was asked)."""
        return self.server.server_address[1]

    @property
    def address(self) -> str:
        """``host:port`` as :class:`~.http_host.HttpHost` wants it."""
        host = self.server.server_address[0]
        return f"{host}:{self.port}"

    def stop(self) -> None:
        """Shut the server down and join its serving thread."""
        if self.link is not None:
            self.link.stop()
        self.server.shutdown()
        self.thread.join(timeout=10)
        self.server.server_close()


def start_worker(
    port: int = 0,
    host: str = "127.0.0.1",
    token: Optional[str] = None,
    coordinator: Optional[str] = None,
    heartbeat: float = DEFAULT_HEARTBEAT,
) -> WorkerHandle:
    """Serve the worker endpoints from a daemon thread; port 0 = ephemeral.

    ``coordinator`` points at a coordinator daemon to self-register
    with (heartbeating every ``heartbeat`` seconds); ``token`` both
    guards this worker's POST endpoints and authenticates toward the
    coordinator -- one shared secret across the fleet.
    """
    server = _WorkerServer((host, port), _ShardRequestHandler, token=token)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-worker", daemon=True
    )
    thread.start()
    link = None
    if coordinator:
        bound_host = server.server_address[0]
        link = _CoordinatorLink(
            coordinator,
            f"{bound_host}:{server.server_address[1]}",
            token,
            interval=heartbeat,
        )
        link.start()
    return WorkerHandle(server=server, thread=thread, link=link)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry: bind, announce readiness on stdout, serve until killed."""
    parser = argparse.ArgumentParser(
        prog="repro.dispatch.worker",
        description="Shard worker daemon: accepts POST /run shard "
        "requests and returns regression-report JSON.",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8421,
        help="TCP port to listen on (0 picks an ephemeral port, "
        "announced on stdout)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default loopback; 0.0.0.0 to serve "
        "a real dispatcher)",
    )
    parser.add_argument(
        "--token",
        default=None,
        help="shared fleet secret: refuse POSTs without this bearer "
        "token, and present it to --coordinator",
    )
    parser.add_argument(
        "--coordinator",
        default=None,
        metavar="URL",
        help="coordinator daemon to self-register with (e.g. "
        "http://10.0.0.1:8400); the worker joins its elastic pool "
        "and heartbeats until killed",
    )
    parser.add_argument(
        "--advertise",
        default=None,
        metavar="HOST:PORT",
        help="address to register at the coordinator (default: the "
        "bound host:port; needed when binding 0.0.0.0)",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=DEFAULT_HEARTBEAT,
        help=f"seconds between coordinator heartbeats "
        f"(default {DEFAULT_HEARTBEAT})",
    )
    options = parser.parse_args(argv)
    route_warnings_to_stderr()
    server = _WorkerServer(
        (options.host, options.port), _ShardRequestHandler, token=options.token
    )
    bound_host, bound_port = server.server_address[:2]
    link = None
    if options.coordinator:
        link = _CoordinatorLink(
            options.coordinator,
            options.advertise or f"{bound_host}:{bound_port}",
            options.token,
            interval=options.heartbeat,
        )
        link.start()
    # the one stdout line: parents spawning `--port 0` parse it
    print(f"repro-worker listening on http://{bound_host}:{bound_port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if link is not None:
            link.stop()
        server.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
