"""The shard dispatcher: plan, fan out over hosts, retry, merge.

``ShardDispatcher`` partitions a spec list with the deterministic
planner, runs every (non-empty) shard on a pool of :class:`Host`\\ s --
concurrently, one thread per shard, since subprocess hosts do their
work outside the GIL -- and folds the per-shard reports back into one
:class:`~repro.scenarios.regression.RegressionReport`.

Fault tolerance: a :class:`HostFailure` re-queues the shard on the
next host in rotation (the failed host is skipped while alternatives
remain) up to ``max_attempts`` times.  Because a shard is a pure
function of the spec list, a retried shard reproduces byte-identical
verdicts, so the merged digest is unchanged by any pattern of host
failures that eventually lets every shard complete.

The merge invariant (the whole point): ``merge_reports`` re-sorts the
concatenated verdicts exactly like ``RegressionRunner.run`` does, so
the merged digest is byte-identical to a serial run of the same specs
at any shard count.
"""

from __future__ import annotations

import os
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..scenarios.regression import (
    RegressionReport,
    ScenarioSpec,
    save_specs,
)
from .hosts import Host, HostFailure, LocalSubprocessHost, ShardWork
from .planner import Shard, plan_digest, plan_shards


class DispatchError(RuntimeError):
    """A shard exhausted every attempt; the regression has no verdicts
    for it and the merged digest would be wrong, so nothing is merged."""


@dataclass
class ShardRun:
    """How one shard eventually got executed."""

    shard: Shard
    host: str                          # the host that completed it
    attempts: int                      # 1 = first try succeeded
    failures: Tuple[str, ...] = ()     # HostFailure reasons, in order

    @property
    def retried(self) -> bool:
        return self.attempts > 1


@dataclass
class DispatchOutcome:
    """A merged report plus the dispatch bookkeeping around it."""

    report: RegressionReport
    runs: List[ShardRun] = field(default_factory=list)
    hosts: Tuple[str, ...] = ()
    plan_fingerprint: str = ""

    @property
    def retries(self) -> int:
        """Total failed host attempts that were recovered."""
        return sum(run.attempts - 1 for run in self.runs)

    def log_lines(self) -> List[str]:
        lines = [
            f"dispatch: {len(self.runs)} shard(s) over "
            f"{len(self.hosts)} host(s), plan {self.plan_fingerprint}"
        ]
        for run in self.runs:
            note = f" after {run.attempts - 1} failed attempt(s)" if run.retried else ""
            lines.append(
                f"  {run.shard.label}: {len(run.shard)} specs on {run.host}{note}"
            )
            lines.extend(f"    failure: {reason}" for reason in run.failures)
        return lines


def merge_reports(reports: Sequence[RegressionReport]) -> RegressionReport:
    """Fold per-shard reports into one canonical report.

    Verdicts are re-sorted by spec exactly as ``RegressionRunner.run``
    sorts them, which makes the merged digest byte-identical to a
    serial run of the union of specs.  ``wall_seconds`` is the slowest
    shard (shards run in parallel); a dispatcher that measured the real
    wall clock overwrites it.
    """
    merged = RegressionReport(
        workers=sum(r.workers for r in reports) or 1,
        stopped_early=any(r.stopped_early for r in reports),
        wall_seconds=max((r.wall_seconds for r in reports), default=0.0),
    )
    for report in reports:
        merged.verdicts.extend(report.verdicts)
    merged.verdicts.sort(key=lambda v: (v.spec.model, v.spec.seed, v.spec.label))
    return merged


class ShardDispatcher:
    """Fans a spec list over shard hosts and merges the results.

    ``hosts`` defaults to one :class:`LocalSubprocessHost` per shard.
    ``max_attempts`` bounds how many hosts a shard may burn through
    before the dispatch aborts (default: one try per host, minimum 2
    so even a single flaky host gets one retry).
    """

    def __init__(
        self,
        specs: Sequence[ScenarioSpec],
        shards: int,
        hosts: Optional[Sequence[Host]] = None,
        max_attempts: Optional[int] = None,
        workers_per_shard: Optional[int] = None,
    ):
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self.specs = list(specs)
        self.shards = shards
        self.hosts: List[Host] = list(
            hosts
            if hosts is not None
            else [LocalSubprocessHost(f"local{i}") for i in range(shards)]
        )
        if not self.hosts:
            raise ValueError("at least one host is required")
        self.max_attempts = (
            max_attempts if max_attempts is not None else max(2, len(self.hosts))
        )
        self.workers_per_shard = workers_per_shard

    def _run_one(self, shard: Shard, spec_file: str) -> Tuple[ShardRun, RegressionReport]:
        """Execute one shard with host rotation on failure."""
        work = ShardWork(
            shard=shard, spec_file=spec_file, workers=self.workers_per_shard
        )
        failures: List[str] = []
        # start each shard on a different host so shards spread across
        # the pool; rotation then moves every retry to another host
        # (single-host pools retry the only host there is)
        for attempt in range(self.max_attempts):
            host = self.hosts[(shard.index + attempt) % len(self.hosts)]
            try:
                report = host.run_shard(work)
            except HostFailure as exc:
                failures.append(f"{exc.host}: {exc.reason}")
                continue
            run = ShardRun(
                shard=shard,
                host=host.name,
                attempts=len(failures) + 1,
                failures=tuple(failures),
            )
            return run, report
        raise DispatchError(
            f"{shard.label} failed on every host after {self.max_attempts} "
            f"attempt(s): {'; '.join(failures) or 'no attempts ran'}"
        )

    def run(self) -> DispatchOutcome:
        started = time.perf_counter()
        plan = plan_shards(self.specs, self.shards)
        live = [shard for shard in plan if shard.specs]
        with tempfile.TemporaryDirectory(prefix="repro-dispatch-") as tmp:
            spec_file = os.path.join(tmp, "specs.json")
            save_specs(self.specs, spec_file)
            if live:
                with ThreadPoolExecutor(max_workers=len(live)) as pool:
                    results = list(
                        pool.map(lambda s: self._run_one(s, spec_file), live)
                    )
            else:
                results = []
        runs = [run for run, _ in results]
        merged = merge_reports([report for _, report in results])
        merged.wall_seconds = time.perf_counter() - started
        merged.workers = len(live) or 1
        return DispatchOutcome(
            report=merged,
            runs=runs,
            hosts=tuple(host.name for host in self.hosts),
            plan_fingerprint=plan_digest(plan),
        )
