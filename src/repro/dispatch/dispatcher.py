"""The shard dispatcher: plan, hand shards to hosts as they free up, merge.

``ShardDispatcher`` partitions a spec list with the deterministic
planner and runs every (non-empty) shard on a pool of
:class:`Host`\\ s.  Two schedules are registered:

* ``"stealing"`` (the default) -- one serving thread per host pulls
  the next pending shard from a shared :class:`ShardQueue` the moment
  it finishes its previous one.  Skewed shard runtimes therefore stop
  bounding wall clock on the slowest host: a fast host "steals" the
  queue's tail while a slow host grinds through one shard.  Use more
  shards than hosts (``planner.shards_for_hosts``) so there is a tail
  to steal.
* ``"static"`` -- the PR-3 behaviour, one thread per shard with the
  shard's index pinning its starting host.  Kept for comparison (the
  rebalance benchmark measures stealing against it) and for tests that
  need a deterministic first assignment.

Fault tolerance is schedule-independent: a :class:`HostFailure`
re-queues the shard away from the host that failed it, up to
``max_attempts`` total tries.  Completion is idempotent per shard --
the first result wins, any later one is counted and dropped.  With
today's blocking transports a serving thread either fails or completes
(never both), so duplicates cannot actually arise through the
dispatcher; the dedupe is the queue's *invariant*, there so a future
transport that can complete late (async ssh, a resumed connection
whose "timed-out" worker actually finished) still cannot double-merge
verdicts.  Because a shard is a pure function of the spec list, a
retried or stolen shard reproduces byte-identical verdicts.

The merge invariant (the whole point): ``merge_reports`` re-sorts the
concatenated verdicts exactly like ``RegressionRunner.run`` does, so
the merged digest is byte-identical to a serial run of the same specs
at any shard count, under any schedule, any host pool -- subprocess or
HTTP -- and any recovered failure pattern.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from ..obs.runtime import OBS
from ..scenarios.regression import (
    RegressionReport,
    ScenarioSpec,
    save_specs,
)
from .hosts import Host, HostFailure, LocalSubprocessHost, ShardWork
from .planner import Shard, plan_digest, plan_shards

#: Registered dispatch schedules (see module docstring).
SCHEDULES = ("stealing", "static")


class DispatchError(RuntimeError):
    """A shard exhausted every attempt; the regression has no verdicts
    for it and the merged digest would be wrong, so nothing is merged."""


@dataclass
class ShardRun:
    """How one shard eventually got executed."""

    shard: Shard
    host: str                          # the host that completed it
    attempts: int                      # 1 = first try succeeded
    failures: Tuple[str, ...] = ()     # HostFailure reasons, in order
    #: the failure taxonomy alongside ``failures``: (host, kind) pairs
    #: in the same order (kind from ``hosts.FAILURE_KINDS``)
    failure_kinds: Tuple[Tuple[str, str], ...] = ()
    #: wall time of the successful attempt on the completing host
    #: (run fact: per-host latency, never part of any digest)
    wall_seconds: float = 0.0

    @property
    def retried(self) -> bool:
        """True when at least one host failed this shard first."""
        return self.attempts > 1


@dataclass
class DispatchOutcome:
    """A merged report plus the dispatch bookkeeping around it."""

    report: RegressionReport
    runs: List[ShardRun] = field(default_factory=list)
    hosts: Tuple[str, ...] = ()
    plan_fingerprint: str = ""
    schedule: str = "stealing"
    #: completions dropped because the shard had already completed
    #: elsewhere -- always 0 with today's blocking transports (a
    #: serving thread fails or completes, never both); the counter
    #: exists for transports that can complete late
    duplicates: int = 0
    #: per-host ``/metrics`` documents pulled after the dispatch from
    #: hosts that expose one (observability only, never digested)
    host_metrics: Dict[str, Dict] = field(default_factory=dict)

    @property
    def retries(self) -> int:
        """Total failed host attempts that were recovered."""
        return sum(run.attempts - 1 for run in self.runs)

    def host_loads(self) -> Dict[str, int]:
        """Completed shards per host (the rebalance benchmark's metric)."""
        loads: Dict[str, int] = {name: 0 for name in self.hosts}
        for run in self.runs:
            loads[run.host] = loads.get(run.host, 0) + 1
        return loads

    def failure_counts(self) -> Dict[str, Dict[str, int]]:
        """Failed attempts per host, split by failure kind.

        The :data:`~.hosts.FAILURE_KINDS` taxonomy, preserved instead
        of collapsed: ``{"w1": {"timeout": 2}, "w2": {"refused": 1}}``.
        Hosts that never failed are absent.
        """
        counts: Dict[str, Dict[str, int]] = {}
        for run in self.runs:
            for host, kind in run.failure_kinds:
                per_host = counts.setdefault(host, {})
                per_host[kind] = per_host.get(kind, 0) + 1
        return counts

    def log_lines(self) -> List[str]:
        """Human-readable dispatch trace (CLIs print it to stderr)."""
        lines = [
            f"dispatch: {len(self.runs)} shard(s) over "
            f"{len(self.hosts)} host(s), {self.schedule} schedule, "
            f"plan {self.plan_fingerprint}"
        ]
        for run in self.runs:
            note = f" after {run.attempts - 1} failed attempt(s)" if run.retried else ""
            lines.append(
                f"  {run.shard.label}: {len(run.shard)} specs on {run.host}{note}"
            )
            lines.extend(f"    failure: {reason}" for reason in run.failures)
        if self.duplicates:
            lines.append(f"  {self.duplicates} duplicate completion(s) dropped")
        failures = self.failure_counts()
        if failures:
            rendered = "; ".join(
                f"{host}: "
                + ", ".join(
                    f"{kind} x{count}"
                    for kind, count in sorted(kinds.items())
                )
                for host, kinds in sorted(failures.items())
            )
            lines.append(f"  failure kinds: {rendered}")
        return lines


def merge_reports(reports: Sequence[RegressionReport]) -> RegressionReport:
    """Fold per-shard reports into one canonical report.

    Verdicts are re-sorted by spec exactly as ``RegressionRunner.run``
    sorts them, which makes the merged digest byte-identical to a
    serial run of the union of specs.  ``wall_seconds`` is the slowest
    shard (shards run in parallel); a dispatcher that measured the real
    wall clock overwrites it.
    """
    merged = RegressionReport(
        workers=sum(r.workers for r in reports) or 1,
        stopped_early=any(r.stopped_early for r in reports),
        wall_seconds=max((r.wall_seconds for r in reports), default=0.0),
    )
    for report in reports:
        merged.verdicts.extend(report.verdicts)
    merged.verdicts.sort(key=lambda v: (v.spec.model, v.spec.seed, v.spec.label))
    return merged


class _PendingShard:
    """One shard's place in the queue: its failure history travels with it."""

    __slots__ = ("shard", "failures", "failure_kinds", "excluded")

    def __init__(self, shard: Shard):
        self.shard = shard
        self.failures: List[str] = []
        self.failure_kinds: List[Tuple[str, str]] = []   # (host, kind)
        self.excluded: Set[str] = set()    # host names that failed it


class ShardQueue:
    """The work-stealing heart: a thread-safe shard queue with retry
    bookkeeping and duplicate-completion dedupe.

    Hosts call :meth:`take` when idle and get the first pending shard
    they have not already failed (or ``None`` when the dispatch is
    finished or aborted), then report back through :meth:`complete` or
    :meth:`fail`.  A failed shard re-enters the queue excluded from the
    host that failed it -- unless every host has now failed it once, in
    which case the exclusions reset so a flaky-but-alive pool can still
    finish.  A shard whose failure count reaches ``max_attempts``
    aborts the whole dispatch (the merged digest would otherwise be
    missing its verdicts).

    :meth:`complete` is idempotent per shard: the first completion
    wins, later ones are counted in :attr:`duplicates` and dropped.
    The dispatcher's blocking transports can never trigger this (a
    serving thread that raised never also completes), so it is an
    invariant rather than a recovery path -- it guarantees that a
    future late-completing transport, or any direct user of this
    queue, cannot double-merge verdicts or drift the digest.
    """

    def __init__(
        self,
        shards: Sequence[Shard],
        host_names: Sequence[str],
        max_attempts: int,
    ):
        self._pending: Deque[_PendingShard] = deque(
            _PendingShard(shard) for shard in shards
        )
        self._hosts = set(host_names)
        self._max_attempts = max_attempts
        self._in_flight = 0
        self._results: Dict[int, Tuple[ShardRun, RegressionReport]] = {}
        self._error: Optional[DispatchError] = None
        self._condition = threading.Condition()
        self.duplicates = 0

    @property
    def error(self) -> Optional[DispatchError]:
        """The abort reason, if a shard exhausted its attempts."""
        with self._condition:
            return self._error

    @property
    def finished(self) -> bool:
        """True once every shard completed (or the dispatch aborted).

        The elastic coordinator polls this while it grows and shrinks
        the serving pool mid-dispatch; the fixed-pool dispatcher simply
        joins its serving threads instead.
        """
        with self._condition:
            return self._error is not None or (
                not self._pending and self._in_flight == 0
            )

    def add_host(self, host_name: str) -> None:
        """Register a host that joined after the queue was built.

        Keeps the exclusion-reset accounting honest: a shard is only
        eligible for the every-host-failed-it reset once the *current*
        host set -- including late joiners -- has failed it.
        """
        with self._condition:
            self._hosts.add(host_name)
            self._condition.notify_all()

    def release_exclusions(self, live_hosts: Set[str]) -> None:
        """Re-open pending shards whose exclusions cover every live host.

        With a fixed pool the reset in :meth:`fail` suffices, but under
        churn a shard can end up excluded from every host still alive
        (the others having left) without any host failing it again to
        trigger that reset -- the serving threads would then block in
        :meth:`take` forever.  The coordinator calls this periodically
        with the currently live host names.
        """
        with self._condition:
            released = False
            for pending in self._pending:
                if live_hosts and live_hosts <= pending.excluded:
                    pending.excluded.clear()
                    released = True
            if released:
                self._condition.notify_all()

    def take(self, host_name: str) -> Optional[_PendingShard]:
        """Block until a shard is available for this host; None = done.

        "Done" means the dispatch finished (nothing pending, nothing in
        flight) or aborted -- an idle host whose only pending shards
        are ones it already failed waits for them to resolve elsewhere.
        """
        with self._condition:
            while True:
                if self._error is not None:
                    return None
                for position, pending in enumerate(self._pending):
                    if host_name not in pending.excluded:
                        del self._pending[position]
                        self._in_flight += 1
                        return pending
                if not self._pending and self._in_flight == 0:
                    return None
                self._condition.wait()

    def complete(
        self,
        pending: _PendingShard,
        host_name: str,
        report: RegressionReport,
        wall_seconds: float = 0.0,
    ) -> bool:
        """Record a finished shard; False = duplicate, result dropped."""
        with self._condition:
            self._in_flight = max(0, self._in_flight - 1)
            index = pending.shard.index
            accepted = index not in self._results
            if accepted:
                self._results[index] = (
                    ShardRun(
                        shard=pending.shard,
                        host=host_name,
                        attempts=len(pending.failures) + 1,
                        failures=tuple(pending.failures),
                        failure_kinds=tuple(pending.failure_kinds),
                        wall_seconds=wall_seconds,
                    ),
                    report,
                )
            else:
                self.duplicates += 1
            self._condition.notify_all()
            return accepted

    def fail(
        self,
        pending: _PendingShard,
        host_name: str,
        reason: str,
        kind: str = "transport",
    ) -> None:
        """Re-queue a failed shard away from the host that failed it."""
        with self._condition:
            self._in_flight = max(0, self._in_flight - 1)
            pending.failures.append(f"{host_name}: {reason}")
            pending.failure_kinds.append((host_name, kind))
            pending.excluded.add(host_name)
            if len(pending.failures) >= self._max_attempts:
                self._error = DispatchError(
                    f"{pending.shard.label} failed on every host after "
                    f"{len(pending.failures)} attempt(s): "
                    f"{'; '.join(pending.failures)}"
                )
            else:
                if self._hosts <= pending.excluded:
                    # every host failed it once; let any of them retry
                    # rather than deadlocking a flaky-but-alive pool
                    pending.excluded.clear()
                self._pending.append(pending)
            self._condition.notify_all()

    def abort(self, error: DispatchError) -> None:
        """Abort the dispatch (a serving thread crashed outside run_shard)."""
        with self._condition:
            self._in_flight = max(0, self._in_flight - 1)
            if self._error is None:
                self._error = error
            self._condition.notify_all()

    def results(
        self, shards: Sequence[Shard]
    ) -> List[Tuple[ShardRun, RegressionReport]]:
        """Completed (run, report) pairs in planned shard order."""
        with self._condition:
            return [
                self._results[shard.index]
                for shard in shards
                if shard.index in self._results
            ]


class ShardDispatcher:
    """Fans a spec list over shard hosts and merges the results.

    ``hosts`` defaults to one :class:`LocalSubprocessHost` per shard;
    pass a pool of :class:`~.http_host.HttpHost` for remote dispatch.
    ``schedule`` picks the assignment policy (``"stealing"`` default,
    ``"static"`` for PR-3 pinned starts).  ``max_attempts`` bounds how
    many tries a shard gets before the dispatch aborts (default: one
    try per host, minimum 2 so even a single flaky host gets one
    retry).
    """

    def __init__(
        self,
        specs: Sequence[ScenarioSpec],
        shards: int,
        hosts: Optional[Sequence[Host]] = None,
        max_attempts: Optional[int] = None,
        workers_per_shard: Optional[int] = None,
        schedule: str = "stealing",
    ):
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        if schedule not in SCHEDULES:
            raise ValueError(
                f"unknown schedule {schedule!r} (registered: "
                f"{', '.join(SCHEDULES)})"
            )
        self.specs = list(specs)
        self.shards = shards
        self.hosts: List[Host] = list(
            hosts
            if hosts is not None
            else [LocalSubprocessHost(f"local{i}") for i in range(shards)]
        )
        if not self.hosts:
            raise ValueError("at least one host is required")
        names = [host.name for host in self.hosts]
        if len(set(names)) != len(names):
            raise ValueError(
                f"host names must be unique, got {sorted(names)} "
                "(failure exclusion is by name)"
            )
        self.max_attempts = (
            max_attempts if max_attempts is not None else max(2, len(self.hosts))
        )
        self.workers_per_shard = workers_per_shard
        self.schedule = schedule

    # -- static schedule (PR 3): one thread per shard, pinned start --------------

    def _run_one_static(
        self, shard: Shard, spec_file: str
    ) -> Tuple[ShardRun, RegressionReport]:
        """Execute one shard with host rotation on failure."""
        work = ShardWork(
            shard=shard, spec_file=spec_file, workers=self.workers_per_shard
        )
        failures: List[str] = []
        failure_kinds: List[Tuple[str, str]] = []
        # start each shard on a different host so shards spread across
        # the pool; rotation then moves every retry to another host
        # (single-host pools retry the only host there is)
        for attempt in range(self.max_attempts):
            host = self.hosts[(shard.index + attempt) % len(self.hosts)]
            attempt_started = time.perf_counter()
            try:
                report = host.run_shard(work)
            except HostFailure as exc:
                failures.append(f"{exc.host}: {exc.reason}")
                failure_kinds.append((exc.host, exc.kind))
                continue
            run = ShardRun(
                shard=shard,
                host=host.name,
                attempts=len(failures) + 1,
                failures=tuple(failures),
                failure_kinds=tuple(failure_kinds),
                wall_seconds=time.perf_counter() - attempt_started,
            )
            return run, report
        raise DispatchError(
            f"{shard.label} failed on every host after {self.max_attempts} "
            f"attempt(s): {'; '.join(failures) or 'no attempts ran'}"
        )

    def _run_static(
        self, live: Sequence[Shard], spec_file: str
    ) -> List[Tuple[ShardRun, RegressionReport]]:
        with ThreadPoolExecutor(max_workers=len(live)) as pool:
            return list(
                pool.map(lambda s: self._run_one_static(s, spec_file), live)
            )

    # -- stealing schedule: one thread per host pulling from the queue -----------

    def _serve(self, host: Host, queue: ShardQueue, spec_file: str) -> None:
        """One host's serving loop: pull, run, report, repeat."""
        while True:
            pending = queue.take(host.name)
            if pending is None:
                return
            work = ShardWork(
                shard=pending.shard,
                spec_file=spec_file,
                workers=self.workers_per_shard,
            )
            attempt_started = time.perf_counter()
            try:
                report = host.run_shard(work)
            except HostFailure as exc:
                queue.fail(pending, host.name, exc.reason, kind=exc.kind)
            except Exception as exc:  # noqa: BLE001 -- a crashed server thread must abort, not hang, the dispatch
                queue.abort(
                    DispatchError(
                        f"host {host.name} crashed the dispatcher on "
                        f"{pending.shard.label}: {type(exc).__name__}: {exc}"
                    )
                )
                return
            else:
                queue.complete(
                    pending,
                    host.name,
                    report,
                    wall_seconds=time.perf_counter() - attempt_started,
                )

    def _run_stealing(
        self, live: Sequence[Shard], spec_file: str
    ) -> List[Tuple[ShardRun, RegressionReport]]:
        queue = ShardQueue(
            live, [host.name for host in self.hosts], self.max_attempts
        )
        threads = [
            threading.Thread(
                target=self._serve,
                args=(host, queue, spec_file),
                name=f"dispatch-{host.name}",
                daemon=True,
            )
            for host in self.hosts
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        error = queue.error
        if error is not None:
            raise error
        self._last_duplicates = queue.duplicates
        return queue.results(live)

    # -- entry point --------------------------------------------------------------

    def run(self) -> DispatchOutcome:
        """Plan, dispatch under the configured schedule, merge, report."""
        if OBS.enabled:
            with OBS.tracer.span(
                "dispatch.run",
                "dispatch",
                shards=self.shards,
                hosts=len(self.hosts),
                schedule=self.schedule,
            ) as span:
                outcome = self._run()
                span.set(
                    retries=outcome.retries, duplicates=outcome.duplicates
                )
                self._emit_observability(outcome, span.span_id)
            return outcome
        return self._run()

    def _run(self) -> DispatchOutcome:
        started = time.perf_counter()
        plan = plan_shards(self.specs, self.shards)
        live = [shard for shard in plan if shard.specs]
        self._last_duplicates = 0
        with tempfile.TemporaryDirectory(prefix="repro-dispatch-") as tmp:
            # the spec file only exists for transports that re-derive
            # their slice host-side (subprocess --shard K/N); network
            # hosts serialize the slice into the request instead, so
            # an all-HTTP pool skips the disk round trip entirely
            spec_file = ""
            if any(getattr(host, "uses_spec_file", False) for host in self.hosts):
                spec_file = os.path.join(tmp, "specs.json")
                save_specs(self.specs, spec_file)
            if not live:
                results: List[Tuple[ShardRun, RegressionReport]] = []
            elif self.schedule == "static":
                results = self._run_static(live, spec_file)
            else:
                results = self._run_stealing(live, spec_file)
        runs = [run for run, _ in results]
        merged = merge_reports([report for _, report in results])
        merged.wall_seconds = time.perf_counter() - started
        merged.workers = len(live) or 1
        return DispatchOutcome(
            report=merged,
            runs=runs,
            hosts=tuple(host.name for host in self.hosts),
            plan_fingerprint=plan_digest(plan),
            schedule=self.schedule,
            duplicates=self._last_duplicates,
            host_metrics=self._fetch_host_metrics(),
        )

    def _fetch_host_metrics(self) -> Dict[str, Dict]:
        """Best-effort ``/metrics`` pull from every capable host."""
        documents: Dict[str, Dict] = {}
        for host in self.hosts:
            fetch = getattr(host, "fetch_metrics", None)
            if fetch is None:
                continue
            doc = fetch()
            if doc is not None:
                documents[host.name] = doc
        return documents

    def _emit_observability(
        self, outcome: DispatchOutcome, parent_id: Optional[int]
    ) -> None:
        """Fold the finished dispatch into the tracer and registry.

        Shard lifecycle becomes synthetic ``dispatch.shard/...`` spans
        under the ``dispatch.run`` span (attempt counts, completing
        host, measured wall time); retry/steal/duplicate totals and the
        per-host latency histogram go to the metrics registry.
        """
        if OBS.tracer.enabled:
            for run in outcome.runs:
                OBS.tracer.record(
                    f"dispatch.shard/{run.shard.label}",
                    "dispatch",
                    run.wall_seconds,
                    parent_id=parent_id,
                    shard=run.shard.label,
                    host=run.host,
                    attempts=run.attempts,
                    specs=len(run.shard),
                )
        if OBS.metrics.enabled:
            registry = OBS.metrics
            registry.counter("dispatch.shards_completed").inc(
                len(outcome.runs)
            )
            registry.counter("dispatch.retries").inc(outcome.retries)
            registry.counter("dispatch.duplicates").inc(outcome.duplicates)
            for run in outcome.runs:
                registry.histogram(
                    "dispatch.shard_seconds", host=run.host
                ).observe(run.wall_seconds)
            for host, kinds in outcome.failure_counts().items():
                for kind, count in kinds.items():
                    registry.counter(
                        "dispatch.host_failures", host=host, kind=kind
                    ).inc(count)
