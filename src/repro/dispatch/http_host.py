"""The remote HTTP transport behind the :class:`~.hosts.Host` protocol.

An :class:`HttpHost` is a shard executor living at ``host:port`` --
a ``python -m repro.dispatch.worker`` daemon, usually on another
machine.  ``run_shard`` POSTs the shard's spec slice as JSON to the
worker's ``/run`` endpoint and rebuilds the
:class:`~repro.scenarios.regression.RegressionReport` from the
response, re-verifying its digest after the round trip exactly like
:class:`~.hosts.LocalSubprocessHost` does.

:class:`CachingHttpHost` adds the spec-cache protocol on top: the
regression's *full* spec list is uploaded to the worker once (``POST
/specs``, keyed by :func:`~.planner.specs_fingerprint`) and every
shard thereafter travels as a ``(fingerprint, index, of)`` reference
-- the worker re-derives the slice with the shared deterministic
planner, so the dominant wire cost (re-shipping specs per shard) is
paid once per (worker, regression) pair instead of once per shard.

Checkpoints ride the same pattern: a shard whose specs carry
``resume_from`` digests gets those checkpoints shipped to the worker
first (``POST /checkpoints``, once per (worker, digest) pair, resolved
from this process's :func:`repro.checkpoint.global_registry`), and a
worker that answers ``404 "unknown checkpoint"`` -- restart, eviction
-- gets one re-upload and a retry, exactly like the spec cache.

Failure taxonomy is unchanged from the subprocess transport: a
connection that refuses, resets or times out, a non-200 status, an
unparseable body and a digest mismatch all raise
:class:`~.hosts.HostFailure` -- "this machine is gone", never "the
regression failed" -- and the dispatcher retries the shard elsewhere.

:func:`parse_hosts` turns the CLI's ``--hosts host:port,host:port``
string into a host pool.  Both host classes accept a shared-secret
``token`` and send it as an ``Authorization: Bearer`` header when set
(workers started with ``--token`` refuse unauthenticated POSTs).
"""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence, Set

from ..scenarios.regression import RegressionReport, ScenarioSpec
from .hosts import HostFailure, ShardWork
from .planner import Shard

#: Default per-shard HTTP timeout (seconds): generous, because a shard
#: legitimately takes as long as its slowest scenario.
DEFAULT_TIMEOUT = 600.0


class HttpHost:
    """One remote worker daemon, addressed as ``host:port``.

    The wire contract (``docs/dispatch.md``): the request body carries
    the shard's own spec slice plus its ``(index, of)`` coordinate, the
    response is the shard report's ``to_json()`` form.  Nothing but
    JSON crosses the boundary, so the worker end needs no shared
    filesystem and no pickle compatibility.  ``token`` is the fleet's
    shared secret; when set, every POST carries it as a bearer header.
    """

    def __init__(
        self,
        address: str,
        name: Optional[str] = None,
        timeout: float = DEFAULT_TIMEOUT,
        token: Optional[str] = None,
    ):
        self.address = _checked_address(address)
        self.name = name or self.address
        self.timeout = timeout
        self.token = token
        self._shipped_checkpoints: Set[str] = set()
        self._checkpoint_lock = threading.Lock()

    def _post(self, path: str, payload: bytes, label: str) -> bytes:
        """One POST round trip; every transport mishap is a HostFailure."""
        headers = {"Content-Type": "application/json"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        request = urllib.request.Request(
            f"http://{self.address}{path}",
            data=payload,
            headers=headers,
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            # the worker answered but refused: surface its error body
            try:
                detail = json.loads(exc.read()).get("error", "")
            except Exception:  # noqa: BLE001 -- error body is best-effort
                detail = ""
            raise HostFailure(
                self.name,
                label,
                f"worker returned HTTP {exc.code}" + (f": {detail}" if detail else ""),
                kind="non-200",
            ) from exc
        except (urllib.error.URLError, OSError) as exc:
            # refused / reset / timed out / DNS -- the machine is gone
            reason = getattr(exc, "reason", exc)
            raise HostFailure(
                self.name,
                label,
                f"transport failed: {reason}",
                kind=_transport_kind(exc),
            ) from exc

    def _run_body(self, work: ShardWork) -> Dict:
        """The by-value ``POST /run`` body: the slice travels inline."""
        shard = work.shard
        return {
            "version": 1,
            "shard": {
                "index": shard.index,
                "of": shard.of,
                "specs": [spec.to_json() for spec in shard.specs],
            },
            "workers": work.workers or 1,
        }

    def _execute_run(self, body: Dict, shard: Shard) -> RegressionReport:
        """POST one ``/run`` body and verify the report that comes back."""
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        raw = self._post("/run", payload, shard.label)
        try:
            doc = json.loads(raw)
            report = RegressionReport.from_json(doc)
        except (KeyError, TypeError, ValueError) as exc:
            raise HostFailure(
                self.name,
                shard.label,
                f"unparseable shard report: {exc}",
                kind="garbage-json",
            ) from exc
        if report.digest() != doc.get("digest"):
            raise HostFailure(
                self.name,
                shard.label,
                "shard report failed digest verification",
                kind="digest-mismatch",
            )
        if len(report.verdicts) != len(shard.specs):
            raise HostFailure(
                self.name,
                shard.label,
                f"worker returned {len(report.verdicts)} verdicts "
                f"for {len(shard.specs)} specs",
                kind="bad-report",
            )
        return report

    def _ensure_checkpoints(self, shard: Shard, force: bool = False) -> None:
        """Ship every checkpoint the shard's specs resume from.

        Digests are resolved from this process's checkpoint registry
        (:func:`repro.checkpoint.global_registry` -- whoever created the
        resume specs registered them there) and uploaded via ``POST
        /checkpoints`` once per (worker, digest) pair.  ``force``
        re-ships digests already recorded as uploaded -- the retry path
        for a worker that restarted or evicted them.
        """
        digests = sorted(
            {spec.resume_from for spec in shard.specs if spec.resume_from}
        )
        if not digests:
            return
        from ..checkpoint.store import global_registry

        registry = global_registry()
        for digest in digests:
            with self._checkpoint_lock:
                if not force and digest in self._shipped_checkpoints:
                    continue
            checkpoint = registry.get(digest)
            payload = json.dumps(
                {"version": 1, "checkpoint": checkpoint.to_json()},
                sort_keys=True,
            ).encode("utf-8")
            self._post("/checkpoints", payload, shard.label)
            with self._checkpoint_lock:
                self._shipped_checkpoints.add(digest)

    def _execute_run_with_checkpoints(
        self, body: Dict, shard: Shard
    ) -> RegressionReport:
        """:meth:`_execute_run` plus the checkpoint-upload protocol.

        Mirrors the spec-cache 404 dance: ship referenced checkpoints
        up front, and when the worker still answers "unknown
        checkpoint" (restart, eviction), re-ship once and retry before
        the failure surfaces.
        """
        self._ensure_checkpoints(shard)
        try:
            return self._execute_run(body, shard)
        except HostFailure as exc:
            if exc.kind != "non-200" or "unknown checkpoint" not in exc.reason:
                raise
            self._ensure_checkpoints(shard, force=True)
            return self._execute_run(body, shard)

    def run_shard(self, work: ShardWork) -> RegressionReport:
        """POST the shard to the worker and verify the returned report."""
        return self._execute_run_with_checkpoints(self._run_body(work), work.shard)

    def _get_json(self, path: str) -> Optional[dict]:
        """Best-effort GET returning the parsed body; None on any problem."""
        try:
            with urllib.request.urlopen(
                f"http://{self.address}{path}", timeout=min(self.timeout, 5.0)
            ) as response:
                doc = json.loads(response.read())
        except Exception:  # noqa: BLE001 -- a probe never raises
            return None
        return doc if isinstance(doc, dict) else None

    def healthy(self) -> bool:
        """Probe ``/healthz``; False on any transport or status problem."""
        doc = self._get_json("/healthz")
        return bool(doc and doc.get("ok", False))

    def fetch_metrics(self) -> Optional[dict]:
        """Pull the worker's ``/metrics`` document; None on any problem.

        Best-effort like :meth:`healthy`: observability must never turn
        a finished dispatch into a failure, so a dead or pre-metrics
        worker simply yields nothing for the fleet aggregate.
        """
        doc = self._get_json("/metrics")
        if doc is None:
            return None
        metrics = doc.get("metrics")
        return metrics if isinstance(metrics, dict) else None

    def __repr__(self) -> str:
        return f"HttpHost({self.address!r})"


class CachingHttpHost(HttpHost):
    """An :class:`HttpHost` that ships each regression's specs once.

    :meth:`prime` hands the host the regression's full spec list and
    its :func:`~.planner.specs_fingerprint`; ``run_shard`` then sends
    shards as ``(fingerprint, index, of)`` references, uploading the
    list via ``POST /specs`` the first time this worker sees the
    fingerprint.  A worker that answers "unknown spec fingerprint" --
    it restarted, or evicted the entry -- gets one re-upload and a
    retry before the failure surfaces; a host never primed behaves
    exactly like a plain :class:`HttpHost`.

    ``bytes_saved`` / ``bytes_shipped`` account for the wire cost:
    saved is the by-value body size avoided on every by-reference run,
    shipped is what ``POST /specs`` actually cost.  The coordinator
    folds both into its ``/metrics``.
    """

    def __init__(
        self,
        address: str,
        name: Optional[str] = None,
        timeout: float = DEFAULT_TIMEOUT,
        token: Optional[str] = None,
    ):
        super().__init__(address, name=name, timeout=timeout, token=token)
        self._specs: Dict[str, Sequence[ScenarioSpec]] = {}
        self._uploaded: Set[str] = set()
        self._lock = threading.Lock()
        self.bytes_saved = 0
        self.bytes_shipped = 0

    def prime(self, fingerprint: str, specs: Sequence[ScenarioSpec]) -> None:
        """Associate a fingerprint with its full spec list (no I/O yet).

        The upload happens lazily on the first ``run_shard`` that
        references the fingerprint, so priming every host in a pool
        costs nothing for hosts the scheduler never picks.
        """
        with self._lock:
            self._specs[fingerprint] = list(specs)

    def forget(self, fingerprint: str) -> None:
        """Drop a finished regression's specs (and its upload record)."""
        with self._lock:
            self._specs.pop(fingerprint, None)
            self._uploaded.discard(fingerprint)

    def _upload(self, fingerprint: str, label: str) -> None:
        """``POST /specs``: ship the full list once, keyed by fingerprint."""
        with self._lock:
            specs = self._specs.get(fingerprint)
        if specs is None:
            raise HostFailure(
                self.name,
                label,
                f"spec cache was never primed for fingerprint {fingerprint}",
                kind="bad-report",
            )
        payload = json.dumps(
            {
                "version": 1,
                "fingerprint": fingerprint,
                "specs": [spec.to_json() for spec in specs],
            },
            sort_keys=True,
        ).encode("utf-8")
        self._post("/specs", payload, label)
        with self._lock:
            self._uploaded.add(fingerprint)
            self.bytes_shipped += len(payload)

    def _fingerprint_for(self, work: ShardWork) -> Optional[str]:
        """The primed fingerprint whose plan produced this shard, if any."""
        with self._lock:
            for fingerprint, specs in self._specs.items():
                if work.shard.specs == tuple(specs[work.shard.index :: work.shard.of]):
                    return fingerprint
        return None

    def run_shard(self, work: ShardWork) -> RegressionReport:
        """Run the shard by reference when primed, by value otherwise."""
        fingerprint = self._fingerprint_for(work)
        if fingerprint is None:
            return super().run_shard(work)
        shard = work.shard
        body = {
            "version": 1,
            "shard": {
                "index": shard.index,
                "of": shard.of,
                "fingerprint": fingerprint,
            },
            "workers": work.workers or 1,
        }
        by_value_cost = len(
            json.dumps(self._run_body(work), sort_keys=True).encode("utf-8")
        )
        with self._lock:
            needs_upload = fingerprint not in self._uploaded
        if needs_upload:
            self._upload(fingerprint, shard.label)
        try:
            report = self._execute_run_with_checkpoints(body, shard)
        except HostFailure as exc:
            if exc.kind != "non-200" or "unknown spec fingerprint" not in exc.reason:
                raise
            # the worker lost the entry (restart, eviction): re-ship once
            with self._lock:
                self._uploaded.discard(fingerprint)
            self._upload(fingerprint, shard.label)
            report = self._execute_run_with_checkpoints(body, shard)
        with self._lock:
            self.bytes_saved += by_value_cost
        return report

    def __repr__(self) -> str:
        return f"CachingHttpHost({self.address!r})"


def _transport_kind(exc: Exception) -> str:
    """Classify a URLError/OSError into the failure-kind taxonomy."""
    causes = [exc, getattr(exc, "reason", None), exc.__cause__]
    for cause in causes:
        if isinstance(cause, ConnectionRefusedError):
            return "refused"
        if isinstance(cause, ConnectionResetError):
            return "reset"
        if isinstance(cause, (TimeoutError, socket.timeout)):
            return "timeout"
    text = str(exc).lower()
    if "refused" in text:
        return "refused"
    if "reset" in text:
        return "reset"
    if "timed out" in text or "timeout" in text:
        return "timeout"
    return "transport"


def _checked_address(text: str) -> str:
    """Validate one ``host:port`` (the port must be an int in range)."""
    host, separator, port_text = text.strip().rpartition(":")
    if not separator or not host:
        raise ValueError(f"host address must look like host:port, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"host address port must be an integer, got {text!r}"
        ) from None
    if not 1 <= port <= 65535:
        raise ValueError(
            f"host address port must be in 1-65535, got {port} in {text!r}"
        )
    return f"{host}:{port}"


def parse_hosts(
    text: str,
    timeout: float = DEFAULT_TIMEOUT,
    token: Optional[str] = None,
) -> List[HttpHost]:
    """``"h1:p1,h2:p2"`` -> a pool of :class:`HttpHost` (CLI ``--hosts``).

    Strict about its input, because a malformed ``--hosts`` that slips
    through only surfaces minutes later as a connection error on some
    retry path: an empty or whitespace-only entry (``"h1:8421,,h2:"``
    style typos) and any entry whose port is not an integer in 1-65535
    raise :class:`ValueError` naming the bad token and its position.
    """
    entries = text.split(",")
    if not any(entry.strip() for entry in entries):
        raise ValueError("--hosts needs at least one host:port")
    hosts: List[HttpHost] = []
    for position, entry in enumerate(entries, start=1):
        stripped = entry.strip()
        if not stripped:
            raise ValueError(
                f"--hosts entry {position} of {len(entries)} is "
                f"empty/whitespace in {text!r}"
            )
        try:
            hosts.append(HttpHost(stripped, timeout=timeout, token=token))
        except ValueError as exc:
            raise ValueError(f"--hosts entry {position}: {exc}") from None
    return hosts
