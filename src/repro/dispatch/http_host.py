"""The remote HTTP transport behind the :class:`~.hosts.Host` protocol.

An :class:`HttpHost` is a shard executor living at ``host:port`` --
a ``python -m repro.dispatch.worker`` daemon, usually on another
machine.  ``run_shard`` POSTs the shard's spec slice as JSON to the
worker's ``/run`` endpoint and rebuilds the
:class:`~repro.scenarios.regression.RegressionReport` from the
response, re-verifying its digest after the round trip exactly like
:class:`~.hosts.LocalSubprocessHost` does.

Failure taxonomy is unchanged from the subprocess transport: a
connection that refuses, resets or times out, a non-200 status, an
unparseable body and a digest mismatch all raise
:class:`~.hosts.HostFailure` -- "this machine is gone", never "the
regression failed" -- and the dispatcher retries the shard elsewhere.

:func:`parse_hosts` turns the CLI's ``--hosts host:port,host:port``
string into a host pool.
"""

from __future__ import annotations

import json
import socket
import urllib.error
import urllib.request
from typing import List, Optional

from ..scenarios.regression import RegressionReport
from .hosts import HostFailure, ShardWork

#: Default per-shard HTTP timeout (seconds): generous, because a shard
#: legitimately takes as long as its slowest scenario.
DEFAULT_TIMEOUT = 600.0


class HttpHost:
    """One remote worker daemon, addressed as ``host:port``.

    The wire contract (``docs/dispatch.md``): the request body carries
    the shard's own spec slice plus its ``(index, of)`` coordinate, the
    response is the shard report's ``to_json()`` form.  Nothing but
    JSON crosses the boundary, so the worker end needs no shared
    filesystem and no pickle compatibility.
    """

    def __init__(
        self,
        address: str,
        name: Optional[str] = None,
        timeout: float = DEFAULT_TIMEOUT,
    ):
        self.address = _checked_address(address)
        self.name = name or self.address
        self.timeout = timeout

    def _post(self, path: str, payload: bytes, label: str) -> bytes:
        """One POST round trip; every transport mishap is a HostFailure."""
        request = urllib.request.Request(
            f"http://{self.address}{path}",
            data=payload,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            # the worker answered but refused: surface its error body
            try:
                detail = json.loads(exc.read()).get("error", "")
            except Exception:  # noqa: BLE001 -- error body is best-effort
                detail = ""
            raise HostFailure(
                self.name,
                label,
                f"worker returned HTTP {exc.code}" + (f": {detail}" if detail else ""),
                kind="non-200",
            ) from exc
        except (urllib.error.URLError, OSError) as exc:
            # refused / reset / timed out / DNS -- the machine is gone
            reason = getattr(exc, "reason", exc)
            raise HostFailure(
                self.name,
                label,
                f"transport failed: {reason}",
                kind=_transport_kind(exc),
            ) from exc

    def run_shard(self, work: ShardWork) -> RegressionReport:
        """POST the shard to the worker and verify the returned report."""
        shard = work.shard
        body = json.dumps(
            {
                "version": 1,
                "shard": {
                    "index": shard.index,
                    "of": shard.of,
                    "specs": [spec.to_json() for spec in shard.specs],
                },
                "workers": work.workers or 1,
            },
            sort_keys=True,
        ).encode("utf-8")
        raw = self._post("/run", body, shard.label)
        try:
            doc = json.loads(raw)
            report = RegressionReport.from_json(doc)
        except (KeyError, TypeError, ValueError) as exc:
            raise HostFailure(
                self.name,
                shard.label,
                f"unparseable shard report: {exc}",
                kind="garbage-json",
            ) from exc
        if report.digest() != doc.get("digest"):
            raise HostFailure(
                self.name,
                shard.label,
                "shard report failed digest verification",
                kind="digest-mismatch",
            )
        if len(report.verdicts) != len(shard.specs):
            raise HostFailure(
                self.name,
                shard.label,
                f"worker returned {len(report.verdicts)} verdicts "
                f"for {len(shard.specs)} specs",
                kind="bad-report",
            )
        return report

    def healthy(self) -> bool:
        """Probe ``/healthz``; False on any transport or status problem."""
        try:
            with urllib.request.urlopen(
                f"http://{self.address}/healthz", timeout=min(self.timeout, 5.0)
            ) as response:
                return json.loads(response.read()).get("ok", False)
        except Exception:  # noqa: BLE001 -- a probe never raises
            return False

    def fetch_metrics(self) -> Optional[dict]:
        """Pull the worker's ``/metrics`` document; None on any problem.

        Best-effort like :meth:`healthy`: observability must never turn
        a finished dispatch into a failure, so a dead or pre-metrics
        worker simply yields nothing for the fleet aggregate.
        """
        try:
            with urllib.request.urlopen(
                f"http://{self.address}/metrics", timeout=min(self.timeout, 5.0)
            ) as response:
                doc = json.loads(response.read())
        except Exception:  # noqa: BLE001 -- a probe never raises
            return None
        metrics = doc.get("metrics")
        return metrics if isinstance(metrics, dict) else None

    def __repr__(self) -> str:
        return f"HttpHost({self.address!r})"


def _transport_kind(exc: Exception) -> str:
    """Classify a URLError/OSError into the failure-kind taxonomy."""
    causes = [exc, getattr(exc, "reason", None), exc.__cause__]
    for cause in causes:
        if isinstance(cause, ConnectionRefusedError):
            return "refused"
        if isinstance(cause, ConnectionResetError):
            return "reset"
        if isinstance(cause, (TimeoutError, socket.timeout)):
            return "timeout"
    text = str(exc).lower()
    if "refused" in text:
        return "refused"
    if "reset" in text:
        return "reset"
    if "timed out" in text or "timeout" in text:
        return "timeout"
    return "transport"


def _checked_address(text: str) -> str:
    """Validate one ``host:port`` (the port must be an int in range)."""
    host, separator, port_text = text.strip().rpartition(":")
    if not separator or not host:
        raise ValueError(f"host address must look like host:port, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"host address port must be an integer, got {text!r}"
        ) from None
    if not 1 <= port <= 65535:
        raise ValueError(f"host address port out of range in {text!r}")
    return f"{host}:{port}"


def parse_hosts(text: str, timeout: float = DEFAULT_TIMEOUT) -> List[HttpHost]:
    """``"h1:p1,h2:p2"`` -> a pool of :class:`HttpHost` (CLI ``--hosts``)."""
    addresses = [part for part in (p.strip() for p in text.split(",")) if part]
    if not addresses:
        raise ValueError("--hosts needs at least one host:port")
    return [HttpHost(address, timeout=timeout) for address in addresses]
