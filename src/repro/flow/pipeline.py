"""The Figure 1 design-and-verification flow, end to end.

    UML level  ->  ASM level  ->  model checking  -> (loop on failure)
                                      |
                                      v
                    SystemC + C# monitors  ->  simulation (ABV)
                                      |
                                      v
                     scenario regression (constrained-random,
                     ASM-reference scoreboard, N workers)

.. deprecated::
    :class:`DesignFlow` is now a thin preset over the unified
    :class:`repro.workbench.Workbench` session API and emits a
    :class:`DeprecationWarning` on construction.  New code should
    build a :class:`repro.workbench.DUV` (or resolve a registered one
    by name) and compose stages / run
    :meth:`repro.workbench.VerificationPlan.figure1` directly; the old
    constructor signature, methods and report types keep working
    unchanged through this shim.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, List, Mapping, Optional, Sequence

from ..asm.machine import AsmModel
from ..explorer.config import ExplorationConfig
from ..explorer.counterexample import Counterexample
from ..psl.ast_nodes import Directive, Property
from ..scenarios.regression import RegressionReport, ScenarioSpec
from ..uml.sequence_diagram import SequenceDiagram
from ..uml.to_psl import sequence_to_property
from ..workbench.duv import DUV, LivenessCheck, _as_directives
from ..workbench.session import Workbench
from ..workbench.stages import (
    ModelCheckingReport,
    SimulationReport,
    StageResult,
    StageStatus,
)

__all__ = [
    "DesignFlow",
    "FlowReport",
    "LivenessCheck",
    "ModelCheckingReport",
    "SimulationReport",
]


@dataclass
class FlowReport:
    """Everything one flow run produced."""

    model_checking: ModelCheckingReport
    simulation: Optional[SimulationReport]
    systemc_source: str = ""
    csharp_source: str = ""
    iterations: int = 1
    regression: Optional[RegressionReport] = None

    @property
    def ok(self) -> bool:
        simulation_ok = self.simulation.ok if self.simulation else True
        regression_ok = self.regression.ok if self.regression else True
        return self.model_checking.ok and simulation_ok and regression_ok

    def summary(self) -> str:
        lines = [f"=== design flow report (iterations: {self.iterations}) ==="]
        lines.append(self.model_checking.summary())
        if self.simulation:
            lines.append(self.simulation.summary())
        if self.regression:
            lines.append(self.regression.summary())
        verdict = "VERIFIED" if self.ok else "FAILED"
        lines.append(f"=== overall: {verdict} ===")
        return "\n".join(lines)


def _unwrap(result: StageResult) -> StageResult:
    """Re-raise a stage's original exception (the pre-shim behavior)."""
    if result.status is StageStatus.ERROR and result.exception is not None:
        raise result.exception
    return result


class DesignFlow:
    """Drives one design + property suite through the whole flow.

    .. deprecated:: use :class:`repro.workbench.Workbench`.
    """

    def __init__(
        self,
        model_factory: Callable[[], AsmModel],
        directives: Sequence[Directive | Property],
        extractor: Callable[[AsmModel], Mapping[str, Any]] | None = None,
        exploration: Optional[ExplorationConfig] = None,
        liveness_checks: Sequence[LivenessCheck] = (),
        sequence_diagrams: Sequence[SequenceDiagram] = (),
        scenario_specs: Sequence[ScenarioSpec] = (),
        scenario_workers: Optional[int] = None,
        scenario_fail_fast: bool = False,
    ):
        warnings.warn(
            "DesignFlow is deprecated; use repro.workbench.Workbench "
            "(e.g. Workbench(duv).run_plan(VerificationPlan.figure1()))",
            DeprecationWarning,
            stacklevel=2,
        )
        self.model_factory = model_factory
        self.directives: List[Directive] = list(
            _as_directives(
                list(directives)
                + [sequence_to_property(d) for d in sequence_diagrams]
            )
        )
        self.extractor = extractor
        self.exploration = exploration or ExplorationConfig()
        self.liveness_checks = list(liveness_checks)
        self.scenario_specs = list(scenario_specs)
        self.scenario_workers = scenario_workers
        self.scenario_fail_fast = scenario_fail_fast

    # -- the bridge to the session API --------------------------------------------

    def _duv(self) -> DUV:
        """The flow's current configuration as an ad-hoc DUV bundle.

        Rebuilt per call because the Figure 1 feedback edge mutates
        ``model_factory``/``directives`` between iterations.
        """
        return DUV(
            name="adhoc",
            model_factory=self.model_factory,
            directives=tuple(self.directives),
            extractor=self.extractor,
            exploration=self.exploration,
            liveness_checks=tuple(self.liveness_checks),
        )

    def _workbench(self) -> Workbench:
        return Workbench(self._duv())

    # -- the model-checking leg ---------------------------------------------------

    def model_check(self) -> ModelCheckingReport:
        workbench = self._workbench()
        explore_stage = _unwrap(workbench.explore())
        liveness_stage = _unwrap(workbench.check_liveness())
        return ModelCheckingReport(
            exploration=explore_stage.payload["exploration"],
            rule_findings=explore_stage.payload["rule_findings"],
            liveness=liveness_stage.payload["results"],
        )

    # -- the translation + ABV leg ----------------------------------------------------

    def translate_and_simulate(
        self,
        cycles: int = 10_000,
        clock_period: int = 30_000,
        stop_on_failure: bool = False,
        policy=None,
    ) -> tuple[SimulationReport, str, str]:
        workbench = self._workbench()
        simulation = _unwrap(
            workbench.simulate_abv(
                cycles=cycles,
                stop_on_failure=stop_on_failure,
                clock_period=clock_period,
                policy=policy,
            )
        )
        translated = _unwrap(workbench.translate(clock_period=clock_period))
        return (
            simulation.payload["report"],
            translated.payload["systemc"],
            translated.payload["csharp"],
        )

    # -- the scenario-regression leg ----------------------------------------------

    def run_scenario_regression(self) -> Optional[RegressionReport]:
        """Post-translation stage: fan the configured seeded scenarios
        across worker processes, each checked against the ASM reference
        by the scoreboard (None when no specs are configured)."""
        if not self.scenario_specs:
            return None
        stage = _unwrap(
            self._workbench().regress(
                specs=self.scenario_specs,
                workers=self.scenario_workers,
                fail_fast=self.scenario_fail_fast,
            )
        )
        return stage.payload["report"]

    # -- the whole Figure 1 loop --------------------------------------------------------

    def run(
        self,
        cycles: int = 10_000,
        max_iterations: int = 1,
        on_failure: Callable[[Counterexample | None], bool] | None = None,
        stop_on_sim_failure: bool = False,
    ) -> FlowReport:
        """Model check; on failure invoke ``on_failure`` (the "Updates
        Sequence Diagram" feedback edge -- return True to retry after
        amending the design/properties); once formal checking passes (or
        iterations run out), translate and simulate."""
        iterations = 0
        while True:
            iterations += 1
            checking = self.model_check()
            if checking.ok or iterations >= max_iterations:
                break
            retry = on_failure(checking.exploration.counterexample) if on_failure else False
            if not retry:
                break

        simulation: Optional[SimulationReport] = None
        regression: Optional[RegressionReport] = None
        cpp = csharp = ""
        if checking.ok:
            simulation, cpp, csharp = self.translate_and_simulate(
                cycles=cycles, stop_on_failure=stop_on_sim_failure
            )
            if simulation.ok:
                regression = self.run_scenario_regression()
        return FlowReport(
            model_checking=checking,
            simulation=simulation,
            systemc_source=cpp,
            csharp_source=csharp,
            iterations=iterations,
            regression=regression,
        )
