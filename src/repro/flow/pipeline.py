"""The Figure 1 design-and-verification flow, end to end.

    UML level  ->  ASM level  ->  model checking  -> (loop on failure)
                                      |
                                      v
                    SystemC + C# monitors  ->  simulation (ABV)
                                      |
                                      v
                     scenario regression (constrained-random,
                     ASM-reference scoreboard, N workers)

A :class:`DesignFlow` takes the design (an ASM model or a UML class
diagram to materialize), the properties (PSL directives or modified
sequence diagrams), runs FSM-generation model checking with the
violation filter, optionally iterates after diagram *updates* ("The
UML update and UML to ASM translation tasks are repeated until all the
properties pass"), then translates the verified design to the SystemC
level and re-uses the same properties as assertion monitors in
simulation.

A post-translation *scenario regression* stage (``scenario_specs``)
extends the paper's fixed hand-written simulations: seeded
constrained-random scenarios are fanned across worker processes and
every completed transaction is checked against the verified ASM model
by the :mod:`repro.scenarios` scoreboard.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from ..abv.harness import AbvHarness, FailureAction
from ..asm.machine import AsmModel
from ..explorer.config import ExplorationConfig
from ..explorer.counterexample import Counterexample
from ..explorer.engine import ExplorationResult, explore
from ..explorer.liveness import LivenessResult, check_eventually
from ..explorer.rules import RuleFinding, check_rules
from ..psl.asm_embedding import AssertionProperty, state_extractor
from ..psl.ast_nodes import Directive, DirectiveKind, Property
from ..psl.monitor import Monitor, build_monitor
from ..psl.semantics import Verdict
from ..scenarios.regression import RegressionReport, RegressionRunner, ScenarioSpec
from ..translate.class_rules import translate_class
from ..translate.csharp_gen import render_monitor_suite
from ..translate.runtime import AsmSystemCModule, build_runtime
from ..translate.systemc_gen import render_translation_unit
from ..uml.sequence_diagram import SequenceDiagram
from ..uml.to_psl import sequence_to_property


@dataclass
class LivenessCheck:
    """One liveness obligation checked on the generated FSM."""

    name: str
    trigger: Callable[..., bool]
    goal: Callable[..., bool]


@dataclass
class ModelCheckingReport:
    """Outcome of the flow's formal leg."""

    exploration: ExplorationResult
    rule_findings: List[RuleFinding] = field(default_factory=list)
    liveness: List[LivenessResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.exploration.ok and all(l.holds for l in self.liveness)

    def summary(self) -> str:
        lines = [self.exploration.summary()]
        lines.extend(l.summary() for l in self.liveness)
        warnings = [f for f in self.rule_findings if f.level == "warning"]
        if warnings:
            lines.append(f"  ({len(warnings)} modelling-rule warnings)")
        return "\n".join(lines)


@dataclass
class SimulationReport:
    """Outcome of the flow's ABV leg."""

    cycles: int
    wall_seconds: float
    harness_summary: str
    failed_assertions: List[str]
    monitor_verdicts: Dict[str, str]

    @property
    def ok(self) -> bool:
        return not self.failed_assertions

    @property
    def delta_ns_per_cycle(self) -> float:
        """The paper's delta: average wall time per simulated cycle."""
        if self.cycles == 0:
            return 0.0
        return self.wall_seconds * 1e9 / self.cycles

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return (
            f"[{status}] simulation: {self.cycles} cycles in "
            f"{self.wall_seconds:.2f}s (delta = {self.delta_ns_per_cycle:.0f} "
            f"ns/cycle); {self.harness_summary}"
        )


@dataclass
class FlowReport:
    """Everything one flow run produced."""

    model_checking: ModelCheckingReport
    simulation: Optional[SimulationReport]
    systemc_source: str = ""
    csharp_source: str = ""
    iterations: int = 1
    regression: Optional[RegressionReport] = None

    @property
    def ok(self) -> bool:
        simulation_ok = self.simulation.ok if self.simulation else True
        regression_ok = self.regression.ok if self.regression else True
        return self.model_checking.ok and simulation_ok and regression_ok

    def summary(self) -> str:
        lines = [f"=== design flow report (iterations: {self.iterations}) ==="]
        lines.append(self.model_checking.summary())
        if self.simulation:
            lines.append(self.simulation.summary())
        if self.regression:
            lines.append(self.regression.summary())
        verdict = "VERIFIED" if self.ok else "FAILED"
        lines.append(f"=== overall: {verdict} ===")
        return "\n".join(lines)


class DesignFlow:
    """Drives one design + property suite through the whole flow."""

    def __init__(
        self,
        model_factory: Callable[[], AsmModel],
        directives: Sequence[Directive | Property],
        extractor: Callable[[AsmModel], Mapping[str, Any]] | None = None,
        exploration: Optional[ExplorationConfig] = None,
        liveness_checks: Sequence[LivenessCheck] = (),
        sequence_diagrams: Sequence[SequenceDiagram] = (),
        scenario_specs: Sequence[ScenarioSpec] = (),
        scenario_workers: Optional[int] = None,
        scenario_fail_fast: bool = False,
    ):
        self.model_factory = model_factory
        self.directives: List[Directive] = [
            d
            if isinstance(d, Directive)
            else Directive(DirectiveKind.ASSERT, d)
            for d in directives
        ]
        for diagram in sequence_diagrams:
            prop = sequence_to_property(diagram)
            self.directives.append(Directive(DirectiveKind.ASSERT, prop))
        self.extractor = extractor
        self.exploration = exploration or ExplorationConfig()
        self.liveness_checks = list(liveness_checks)
        self.scenario_specs = list(scenario_specs)
        self.scenario_workers = scenario_workers
        self.scenario_fail_fast = scenario_fail_fast

    # -- the model-checking leg ---------------------------------------------------

    def model_check(self) -> ModelCheckingReport:
        model = self.model_factory()
        extractor = self.extractor or state_extractor
        properties = [
            AssertionProperty(d.prop, extractor=extractor, name=d.prop.name)
            for d in self.directives
            if d.kind == DirectiveKind.ASSERT
        ]
        config = self.exploration.with_overrides(properties=properties)
        findings = check_rules(model, config)
        result = explore(model, config)
        liveness_results = [
            check_eventually(result.fsm, check.trigger, check.goal, check.name)
            for check in self.liveness_checks
        ]
        return ModelCheckingReport(
            exploration=result,
            rule_findings=findings,
            liveness=liveness_results,
        )

    # -- the translation + ABV leg ----------------------------------------------------

    def translate_and_simulate(
        self,
        cycles: int = 10_000,
        clock_period: int = 30_000,
        stop_on_failure: bool = False,
        policy=None,
    ) -> tuple[SimulationReport, str, str]:
        model = self.model_factory()
        simulator, clock, module = build_runtime(
            model, clock_period=clock_period, policy=policy
        )
        harness = AbvHarness(simulator, clock, module.letter)
        actions = (
            (FailureAction.REPORT, FailureAction.STOP)
            if stop_on_failure
            else (FailureAction.REPORT,)
        )
        monitors: List[Monitor] = []
        for directive in self.directives:
            monitor = build_monitor(directive)
            monitors.append(monitor)
            harness.add_monitor(monitor, actions)

        started = time.perf_counter()
        simulator.run(clock_period * cycles)
        wall = time.perf_counter() - started
        harness.finish()

        report = SimulationReport(
            cycles=harness.cycles_observed,
            wall_seconds=wall,
            harness_summary=harness.summary(),
            failed_assertions=[b.monitor.name for b in harness.failed],
            monitor_verdicts={
                m.name: m.verdict().value for m in monitors
            },
        )

        # textual artifacts (rules R1-R3 + the C# monitor suite)
        machine_classes = sorted(
            {type(m) for m in model.machines.values()}, key=lambda c: c.__name__
        )
        specs = [translate_class(cls) for cls in machine_classes]
        instances = [
            (name, type(machine).__name__)
            for name, machine in sorted(model.machines.items())
        ]
        cpp = render_translation_unit(specs, instances, clock_period // 1000)
        csharp = render_monitor_suite(self.directives)
        return report, cpp, csharp

    # -- the scenario-regression leg ----------------------------------------------

    def run_scenario_regression(self) -> Optional[RegressionReport]:
        """Post-translation stage: fan the configured seeded scenarios
        across worker processes, each checked against the ASM reference
        by the scoreboard (None when no specs are configured)."""
        if not self.scenario_specs:
            return None
        runner = RegressionRunner(
            self.scenario_specs,
            workers=self.scenario_workers,
            fail_fast=self.scenario_fail_fast,
        )
        return runner.run()

    # -- the whole Figure 1 loop --------------------------------------------------------

    def run(
        self,
        cycles: int = 10_000,
        max_iterations: int = 1,
        on_failure: Callable[[Counterexample | None], bool] | None = None,
        stop_on_sim_failure: bool = False,
    ) -> FlowReport:
        """Model check; on failure invoke ``on_failure`` (the "Updates
        Sequence Diagram" feedback edge -- return True to retry after
        amending the design/properties); once formal checking passes (or
        iterations run out), translate and simulate."""
        iterations = 0
        while True:
            iterations += 1
            checking = self.model_check()
            if checking.ok or iterations >= max_iterations:
                break
            retry = on_failure(checking.exploration.counterexample) if on_failure else False
            if not retry:
                break

        simulation: Optional[SimulationReport] = None
        regression: Optional[RegressionReport] = None
        cpp = csharp = ""
        if checking.ok:
            simulation, cpp, csharp = self.translate_and_simulate(
                cycles=cycles, stop_on_failure=stop_on_sim_failure
            )
            if simulation.ok:
                regression = self.run_scenario_regression()
        return FlowReport(
            model_checking=checking,
            simulation=simulation,
            systemc_source=cpp,
            csharp_source=csharp,
            iterations=iterations,
            regression=regression,
        )
