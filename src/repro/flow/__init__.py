"""The end-to-end design-for-verification flow (paper Figure 1)."""

from .pipeline import (
    DesignFlow,
    FlowReport,
    LivenessCheck,
    ModelCheckingReport,
    SimulationReport,
)

__all__ = [
    "DesignFlow",
    "FlowReport",
    "LivenessCheck",
    "ModelCheckingReport",
    "SimulationReport",
]
