"""Span tracer: nested wall-clock spans with JSON-lines export.

A *span* is a named interval with a component tag, monotonic start
offset, duration, parent link, and free-form attributes.  The tracer
hands them out two ways:

* :meth:`Tracer.span` -- a context manager that times its body and
  nests under whatever span is open on the current thread;
* :meth:`Tracer.record` -- a synthetic span for time measured
  elsewhere (e.g. per-monitor step time accumulated by
  ``psl.monitor`` and attributed at harness finish).

Spans are collected in memory and exported as JSON lines
(:meth:`Tracer.to_jsonl` / :meth:`Tracer.dump`), one object per line,
so ``tools/trace_report.py`` and plain ``jq`` can both fold them.
Clocks are ``time.perf_counter`` throughout -- durations are
monotonic-true, and ``start_s`` is an offset from tracer creation,
not an epoch timestamp, which keeps traces reproducible-looking and
diff-friendly.

The disabled path is :class:`NullTracer`: ``span()`` returns a shared
no-op context manager and ``record()`` is a pass, so guarded call
sites (``if OBS.enabled:``) pay one attribute check and unguarded
ones two cheap calls.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One named, timed interval in a trace.

    Attributes mirror the JSONL wire form: ``span_id`` / ``parent_id``
    link the tree, ``name`` is the specific operation, ``component``
    the coarse bucket ``trace_report`` groups by (``sysc.kernel``,
    ``psl.monitor``, ``scenarios``, ``dispatch``, ``workbench``),
    ``start_s`` / ``duration_s`` the perf-counter interval, and
    ``attrs`` free-form JSON-safe details (model, seed, property, ...).
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "component",
        "start_s",
        "duration_s",
        "attrs",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        component: str,
        start_s: float,
        duration_s: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.component = component
        self.start_s = start_s
        self.duration_s = duration_s
        self.attrs = attrs

    def to_json(self) -> Dict[str, Any]:
        """The span as one JSON-safe dict (one JSONL line)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "component": self.component,
            "start_s": round(self.start_s, 9),
            "duration_s": round(self.duration_s, 9),
            "attrs": self.attrs,
        }


class _ActiveSpan:
    """Context manager returned by :meth:`Tracer.span`.

    Exposes ``span_id`` while open (so children recorded elsewhere can
    parent under it) and ``set`` for attributes only known at exit.
    """

    __slots__ = ("_tracer", "span_id", "name", "component", "attrs", "_start")

    def __init__(
        self, tracer: "Tracer", name: str, component: str, attrs: Dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self.span_id = tracer._next_id()
        self.name = name
        self.component = component
        self.attrs = attrs
        self._start = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._push(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._pop(self, duration)


class _NullSpan:
    """Shared no-op stand-in for :class:`_ActiveSpan` when disabled."""

    __slots__ = ()
    span_id = None

    def set(self, **attrs: Any) -> None:
        """Discard attributes (disabled tracer)."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans for one process; thread-safe, export-on-demand.

    Each thread keeps its own open-span stack (``threading.local``) so
    multiprocessing fallbacks and the threaded dispatch loop nest
    correctly without cross-talk; the finished-span list and the id
    counter are shared under one lock.
    """

    #: Live tracers record; the NullTracer overrides this to False.
    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._ids = 0
        self._local = threading.local()
        self._epoch = time.perf_counter()

    # -- recording ----------------------------------------------------

    def span(self, name: str, component: str, **attrs: Any) -> _ActiveSpan:
        """Open a timed span; use as a context manager.

        ``name`` is the operation (``scenarios.run_scenario``),
        ``component`` the report bucket, ``attrs`` anything JSON-safe.
        """
        return _ActiveSpan(self, name, component, dict(attrs))

    def record(
        self,
        name: str,
        component: str,
        duration_s: float,
        parent_id: Optional[int] = None,
        **attrs: Any,
    ) -> int:
        """Append a synthetic span for time measured out-of-band.

        Returns the new span id.  ``start_s`` is the moment of the
        call minus ``duration_s`` -- close enough for attribution,
        which only folds durations, never orders synthetic spans.
        """
        now = time.perf_counter() - self._epoch
        span = Span(
            self._next_id(),
            parent_id if parent_id is not None else self.current_span_id(),
            name,
            component,
            max(now - duration_s, 0.0),
            duration_s,
            dict(attrs),
        )
        with self._lock:
            self._spans.append(span)
        return span.span_id

    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1].span_id if stack else None

    # -- internal plumbing for _ActiveSpan ----------------------------

    def _next_id(self) -> int:
        with self._lock:
            self._ids += 1
            return self._ids

    def _push(self, active: _ActiveSpan) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        active.attrs.setdefault("_parent", self.current_span_id())
        stack.append(active)

    def _pop(self, active: _ActiveSpan, duration: float) -> None:
        stack = self._local.stack
        if stack and stack[-1] is active:
            stack.pop()
        parent = active.attrs.pop("_parent", None)
        span = Span(
            active.span_id,
            parent,
            active.name,
            active.component,
            time.perf_counter() - self._epoch - duration,
            duration,
            active.attrs,
        )
        with self._lock:
            self._spans.append(span)

    # -- export -------------------------------------------------------

    def spans(self) -> List[Span]:
        """Snapshot of all finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def to_jsonl(self) -> str:
        """The whole trace as JSON lines (one span object per line)."""
        lines = [
            json.dumps(span.to_json(), sort_keys=True) for span in self.spans()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def dump(self, path: str) -> int:
        """Write the trace to ``path`` as JSONL; returns span count."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return len(self.spans())


class NullTracer(Tracer):
    """The disabled tracer: every operation is a no-op.

    Installed by default (see :mod:`repro.obs.runtime`); call sites
    that skip the ``OBS.enabled`` guard still only pay a method call
    returning a shared singleton context manager.
    """

    enabled = False

    def __init__(self) -> None:  # no lock, no storage
        pass

    def span(self, name: str, component: str, **attrs: Any) -> _NullSpan:
        """Return the shared no-op span."""
        return _NULL_SPAN

    def record(
        self,
        name: str,
        component: str,
        duration_s: float,
        parent_id: Optional[int] = None,
        **attrs: Any,
    ) -> None:
        """Discard the synthetic span."""
        return None

    def current_span_id(self) -> None:
        """Always ``None``: nothing is ever open."""
        return None

    def spans(self) -> List[Span]:
        """Always empty."""
        return []

    def to_jsonl(self) -> str:
        """Always the empty string."""
        return ""

    def dump(self, path: str) -> int:
        """Write an empty trace; returns 0."""
        with open(path, "w", encoding="utf-8"):
            pass
        return 0


def iter_trace_lines(text: str) -> Iterator[Dict[str, Any]]:
    """Parse JSONL trace text back into span dicts, skipping blanks."""
    for line in text.splitlines():
        line = line.strip()
        if line:
            yield json.loads(line)
