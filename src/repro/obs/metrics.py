"""Metrics registry: counters + fixed-bucket histograms, merge-friendly.

Two instrument kinds, both with a flat string name plus optional
labels rendered into the name (``dispatch.shard_seconds{host=w1}``):

* :class:`Counter` -- a monotonically increasing float/int total;
* :class:`Histogram` -- observation counts over *fixed* bucket edges
  (:data:`DEFAULT_BUCKET_EDGES`), plus sum and count.

Fixed edges are the point: two registries that observed different
samples still have elementwise-addable bucket vectors, so the
dispatcher can fold every worker's ``GET /metrics`` document into one
fleet aggregate (:func:`merge_metric_docs`) deterministically --
no quantile sketches, no approximation drift.

The JSON wire shape (``MetricsRegistry.to_json``) is::

    {"counters": {name: value, ...},
     "histograms": {name: {"edges": [...], "buckets": [...],
                           "count": n, "sum": s}, ...}}

Everything here is wall-clock/count telemetry and must never feed a
report digest; the workbench stores it in the non-digested
``observability`` section only.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional

#: Shared histogram bucket upper bounds, in seconds.  Chosen to span
#: monitor-step micro-costs through multi-second shard runs; the last
#: bucket is an implicit +Inf.
DEFAULT_BUCKET_EDGES = (
    0.000001,
    0.00001,
    0.0001,
    0.001,
    0.01,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
)


def metric_name(base: str, **labels: Any) -> str:
    """Render ``base`` plus sorted ``key=value`` labels into one name.

    ``metric_name("x.seconds", host="w1")`` -> ``"x.seconds{host=w1}"``.
    Sorting keeps the name stable regardless of call-site kwarg order,
    which keeps merged documents canonical.
    """
    if not labels:
        return base
    rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{base}{{{rendered}}}"


class Counter:
    """A named monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the total."""
        self.value += amount


class Histogram:
    """Observation counts over fixed bucket edges, plus sum/count.

    ``buckets[i]`` counts observations ``<= edges[i]``; one extra
    overflow bucket counts the rest.  Edges are fixed at construction
    so histograms from different processes merge elementwise.
    """

    __slots__ = ("name", "edges", "buckets", "count", "sum")

    def __init__(
        self, name: str, edges: Iterable[float] = DEFAULT_BUCKET_EDGES
    ) -> None:
        self.name = name
        self.edges = tuple(edges)
        self.buckets = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = len(self.edges)
        for i, edge in enumerate(self.edges):
            if value <= edge:
                index = i
                break
        self.buckets[index] += 1
        self.count += 1
        self.sum += value

    def to_json(self) -> Dict[str, Any]:
        """Wire form: edges, bucket counts, count, sum."""
        return {
            "edges": list(self.edges),
            "buckets": list(self.buckets),
            "count": self.count,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Thread-safe home for one process's counters and histograms.

    Disabled registries (``enabled=False``) still accept ``counter``/
    ``histogram`` calls -- they return live instruments that are just
    never exported -- but guarded call sites should check
    ``OBS.enabled`` first and skip the call entirely.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, base: str, **labels: Any) -> Counter:
        """Get-or-create the counter named ``base`` + labels."""
        name = metric_name(base, **labels)
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def histogram(
        self,
        base: str,
        edges: Iterable[float] = DEFAULT_BUCKET_EDGES,
        **labels: Any,
    ) -> Histogram:
        """Get-or-create the histogram named ``base`` + labels."""
        name = metric_name(base, **labels)
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, edges)
            return instrument

    def to_json(self) -> Dict[str, Any]:
        """The whole registry as the documented JSON wire shape."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in sorted(self._counters.items())
                },
                "histograms": {
                    name: h.to_json()
                    for name, h in sorted(self._histograms.items())
                },
            }


def merge_metric_docs(
    docs: Iterable[Optional[Mapping[str, Any]]]
) -> Dict[str, Any]:
    """Fold several registry documents into one aggregate document.

    Counters sum; histograms sum elementwise (their ``edges`` must
    match -- fixed edges are the contract that makes this exact).
    ``None`` entries (hosts whose /metrics probe failed) are skipped.
    """
    counters: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    for doc in docs:
        if not doc:
            continue
        for name, value in doc.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + value
        for name, hist in doc.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "edges": list(hist["edges"]),
                    "buckets": list(hist["buckets"]),
                    "count": hist["count"],
                    "sum": hist["sum"],
                }
                continue
            if list(hist["edges"]) != merged["edges"]:
                raise ValueError(
                    f"histogram {name!r} bucket edges differ across documents"
                )
            merged["buckets"] = [
                a + b for a, b in zip(merged["buckets"], hist["buckets"])
            ]
            merged["count"] += hist["count"]
            merged["sum"] += hist["sum"]
    return {
        "counters": dict(sorted(counters.items())),
        "histograms": dict(sorted(histograms.items())),
    }


def render_metrics(doc: Mapping[str, Any]) -> str:
    """Human-readable text rendering of a registry document.

    One line per counter (``name value``) and per histogram
    (``name count=N sum=S mean=M``), sorted by name -- the shape the
    CLI prints to stderr under ``--metrics``.
    """
    lines: List[str] = []
    for name, value in sorted(doc.get("counters", {}).items()):
        rendered = int(value) if float(value).is_integer() else value
        lines.append(f"{name} {rendered}")
    for name, hist in sorted(doc.get("histograms", {}).items()):
        count = hist.get("count", 0)
        total = hist.get("sum", 0.0)
        mean = total / count if count else 0.0
        lines.append(f"{name} count={count} sum={total:.6f} mean={mean:.6f}")
    return "\n".join(lines)
