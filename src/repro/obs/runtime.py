"""Process-global observability switch: the one attribute hot paths check.

Instrumented code must stay effectively free when observability is off,
so every instrumentation site is guarded by a single attribute read::

    from ..obs.runtime import OBS

    if OBS.enabled:
        with OBS.tracer.span("sysc.kernel.run", "sysc.kernel"):
            ...

``OBS`` is a module-level singleton of :class:`ObservabilityState`.
``OBS.enabled`` is ``False`` until :func:`enable_tracing` or
:func:`enable_metrics` flips it, at which point ``OBS.tracer`` /
``OBS.metrics`` are live collectors.  :func:`disable` restores the
no-op state (tests and in-process CLI runs use it so one run never
leaks spans into the next).

The flag is process-wide on purpose: worker subprocesses spawned by
the multiprocessing or dispatch layers start with observability off,
which is exactly the digest-invariance contract -- collectors never
feed report digests, so whether a child process collects or not is
invisible to the wire forms.
"""

from __future__ import annotations

from typing import Optional

from .metrics import MetricsRegistry
from .tracer import NullTracer, Tracer


class ObservabilityState:
    """Mutable holder for the process-wide tracer + metrics registry.

    Slotted so the hot-path guard (``OBS.enabled``) is a plain slot
    read.  ``tracer`` is always usable: a :class:`NullTracer` when
    disabled, a live :class:`Tracer` when enabled, so instrumentation
    never needs a ``None`` check.
    """

    __slots__ = ("enabled", "tracer", "metrics")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer: Tracer = NullTracer()
        self.metrics = MetricsRegistry(enabled=False)


#: The process-wide observability state; import this, not the class.
OBS = ObservabilityState()


def enable_tracing() -> Tracer:
    """Install a live span tracer and flip ``OBS.enabled`` on.

    Idempotent: if a live tracer is already installed it is returned
    unchanged, so ``--trace`` plus ``--metrics`` share one run's spans.
    """
    if not OBS.tracer.enabled:
        OBS.tracer = Tracer()
    OBS.enabled = True
    return OBS.tracer


def enable_metrics() -> MetricsRegistry:
    """Install a live metrics registry and flip ``OBS.enabled`` on.

    Idempotent like :func:`enable_tracing`; the existing registry is
    kept when already live.
    """
    if not OBS.metrics.enabled:
        OBS.metrics = MetricsRegistry(enabled=True)
    OBS.enabled = True
    return OBS.metrics


def disable() -> None:
    """Restore the no-op state (NullTracer, disabled registry).

    Safe to call unconditionally; in-process callers should pair every
    enable with a ``finally: disable()`` so test runs stay isolated.
    """
    OBS.enabled = False
    OBS.tracer = NullTracer()
    OBS.metrics = MetricsRegistry(enabled=False)


def tracing_active() -> bool:
    """True when a live (non-null) tracer is installed."""
    return OBS.tracer.enabled


def metrics_active() -> bool:
    """True when a live metrics registry is installed."""
    return OBS.metrics.enabled


def current_tracer() -> Optional[Tracer]:
    """The live tracer, or ``None`` when tracing is off.

    Convenience for call sites that want to export (``dump``) rather
    than record; recording sites should use ``OBS.tracer`` directly.
    """
    return OBS.tracer if OBS.tracer.enabled else None
