"""Zero-dependency tracing + metrics for the repro stack.

Three modules:

* :mod:`repro.obs.tracer` -- nested wall-clock spans with JSONL export
  (fold them with ``tools/trace_report.py``);
* :mod:`repro.obs.metrics` -- counters and fixed-bucket histograms
  whose JSON documents merge exactly (fleet aggregation);
* :mod:`repro.obs.runtime` -- the process-global ``OBS`` switch every
  instrumentation site guards on (one attribute check when disabled).

The digest contract: nothing collected here may influence any report
digest.  Spans and metrics ride in trace files, stderr summaries, and
the non-digested ``observability`` section of ``SessionReport`` only.
See ``docs/observability.md`` for the span taxonomy and metric names.
"""

from .metrics import (
    DEFAULT_BUCKET_EDGES,
    Counter,
    Histogram,
    MetricsRegistry,
    merge_metric_docs,
    metric_name,
    render_metrics,
)
from .runtime import (
    OBS,
    current_tracer,
    disable,
    enable_metrics,
    enable_tracing,
    metrics_active,
    tracing_active,
)
from .tracer import NullTracer, Span, Tracer, iter_trace_lines

__all__ = [
    "OBS",
    "Counter",
    "DEFAULT_BUCKET_EDGES",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "current_tracer",
    "disable",
    "enable_metrics",
    "enable_tracing",
    "iter_trace_lines",
    "merge_metric_docs",
    "metric_name",
    "metrics_active",
    "render_metrics",
    "tracing_active",
]
