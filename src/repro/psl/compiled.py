"""Table-driven compiled assertion monitors.

:mod:`repro.psl.monitor` interprets Brzozowski derivative sets
symbolically every cycle: each ``step()`` re-walks the SERE AST,
allocates fresh residual ``frozenset``s and hashes structural SERE
nodes.  That is exact but slow, and it repeats identical work for
every scenario in a regression (same properties x thousands of seeds).

This module lowers each property **once per process** into a
table-driven automaton:

* the Boolean layer is pre-bound: every atom (the ``SereBool``
  expressions reachable from the desugared SERE) compiles to a closure
  over the bounded history window, and a cycle's atom valuation packs
  into one integer *symbol* (bit ``i`` = truth of atom ``i``);
* the SERE layer is enumerated: reachable derivative residual sets
  become integer state indices, and transitions ``(state, symbol) ->
  (next_state, matched)`` fill a per-state table lazily, exactly like
  a lazy-DFA regular-expression engine.  Filling a cell runs the
  *same* :func:`repro.psl.monitor.derivatives` machinery the
  interpreted engine uses -- over a symbolic letter -- so the two
  engines agree by construction;
* suffix implication tracks antecedent attempts and consequent
  obligations as **bitsets of state indices** (one Python int each),
  so a monitor step is a handful of dict lookups and integer ops with
  no AST in sight.

Automata and per-property compilation plans are memoized process-wide,
keyed by the (hashable, immutable) property AST plus the signal
binding -- equivalent to keying by source digest, since equal sources
parse to equal ASTs (:func:`property_digest` exposes the digest form).
Cache hit/miss counts are surfaced through ``OBS.metrics`` as
``psl.compile.cache`` / ``psl.compile.automaton`` counters and through
:func:`compile_cache_stats` for the worker ``/healthz`` endpoint.

:func:`compile_properties` is the public construction path for *all*
monitors (both engines); direct ``Monitor`` subclass instantiation is
deprecated outside this package.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..obs.runtime import OBS
from .ast_nodes import (
    Directive,
    DirectiveKind,
    Expr,
    FlAlways,
    FlBool,
    FlEventually,
    FlImplies,
    FlNever,
    FlNot,
    FlSere,
    FlSuffixImpl,
    FlUntil,
    Formula,
    Property,
    Sere,
    SereAnd,
    SereBool,
    SereConcat,
    SereFusion,
    SereOr,
    SereRepeat,
    TRUE,
    Var,
)
from .errors import PslParseError, PslUnsupportedError
from .letter import freeze_letter
from .monitor import (
    Monitor,
    SereTracker,
    _as_sere,
    _consequent_is_strong,
    _HistoryMixin,
    _sanctioned_construction,
    build_monitor,
    derivatives,
    history_depth,
    nullable,
    sere_history_depth,
)
from .semantics import Verdict
from .sere import desugar

Letter = Mapping[str, Any]

#: Engine names accepted by :func:`compile_properties`.
ENGINES = ("compiled", "interpreted")

#: Environment variable overriding the default engine (inherited by
#: worker subprocesses, so one switch flips a whole fleet).
ENGINE_ENV_VAR = "REPRO_PSL_ENGINE"

_DEFAULT_ENGINE = "compiled"


def default_engine() -> str:
    """Engine used when ``compile_properties(engine=None)``.

    ``REPRO_PSL_ENGINE`` (if set) wins over the process default so a
    regression fleet can be flipped without touching wire forms.
    """
    env = os.environ.get(ENGINE_ENV_VAR)
    if env:
        return _validate_engine(env)
    return _DEFAULT_ENGINE


def set_default_engine(engine: str) -> str:
    """Set the process default engine; returns the previous default."""
    global _DEFAULT_ENGINE
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = _validate_engine(engine)
    return previous


def _validate_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(
            f"unknown PSL engine {engine!r}; expected one of {ENGINES}"
        )
    return engine


# ---------------------------------------------------------------------------
# Symbolic letters: drive the interpreted derivative engine over a
# truth assignment instead of a concrete letter
# ---------------------------------------------------------------------------


class _SymbolicView:
    """Letter view answering ``holds`` from a fixed truth assignment.

    Used while filling transition-table cells: the cell's symbol fixes
    the truth of every atom, so :func:`~repro.psl.monitor.derivatives`
    runs unchanged over this view.  Meeting an expression outside the
    collected atom set means atom collection missed a reachable
    ``SereBool`` -- surfaced as unsupported rather than mis-evaluated.
    """

    __slots__ = ("_truth",)

    def __init__(self, truth: Dict[Expr, bool]):
        self._truth = truth

    def holds(self, expression: Expr) -> bool:
        value = self._truth.get(expression)
        if value is None:
            raise PslUnsupportedError(
                f"expression {expression} escaped atom collection; "
                f"cannot compile this SERE to an automaton"
            )
        return value


def _collect_atoms(item: Sere, out: Dict[Expr, None]) -> None:
    """Ordered-set walk of every Boolean atom reachable via desugaring.

    Desugaring happens *here* too (goto/non-consecutive repetition
    introduce negated atoms the surface SERE never mentions), so the
    collected set covers everything ``derivatives`` can ask about.
    """
    item = desugar(item)
    if isinstance(item, SereBool):
        out.setdefault(item.expr)
    elif isinstance(item, SereConcat):
        for part in item.parts:
            _collect_atoms(part, out)
    elif isinstance(item, (SereFusion, SereOr, SereAnd)):
        _collect_atoms(item.left, out)
        _collect_atoms(item.right, out)
    elif isinstance(item, SereRepeat):
        _collect_atoms(item.body, out)
    else:  # pragma: no cover - desugar() returns only the above
        raise TypeError(f"unknown SERE node {type(item).__name__}")


def _compiled_bool(expression: Expr) -> Callable[[Sequence[Letter]], bool]:
    """Compile a Boolean-layer expression, sharing the monitor cache."""
    from .monitor import _COMPILED_BOOL

    compiled = _COMPILED_BOOL.get(expression)
    if compiled is None:
        from .compile_ import compile_bool

        compiled = compile_bool(expression)
        _COMPILED_BOOL[expression] = compiled
    return compiled


# ---------------------------------------------------------------------------
# The automaton
# ---------------------------------------------------------------------------


class SereAutomaton:
    """Lazily-enumerated DFA over derivative residual sets.

    States are integer indices into ``_states`` (index ``i`` is the
    residual ``frozenset`` the interpreted engine would carry);
    ``start`` is the state for a match anchored *now*.  ``advance``
    consumes one symbol and returns ``(next_state, matched)`` where
    ``next_state`` is :data:`DEAD` when the residual set died and
    ``matched`` mirrors ``SereTracker.advance``'s completed-match flag.

    Transition cells are filled on first use by running the symbolic
    derivative engine, then hit as plain dict lookups forever after.
    Instances are shared (via :func:`shared_automaton`) across every
    monitor compiled from an equal SERE in the process.
    """

    #: Sentinel state index: the residual set became empty.
    DEAD = -1

    def __init__(self, item: Sere):
        self.sere = desugar(item)
        self.depth = sere_history_depth(self.sere)
        atoms: Dict[Expr, None] = {}
        _collect_atoms(self.sere, atoms)
        # The non-length-matching && rewrite pads with true[*]; make
        # sure TRUE is always a known atom.
        atoms.setdefault(TRUE)
        self.atoms: Tuple[Expr, ...] = tuple(atoms)
        self._atom_fns = tuple(_compiled_bool(a) for a in self.atoms)
        start_set = frozenset({self.sere})
        self._states: List[frozenset] = [start_set]
        self._index: Dict[frozenset, int] = {start_set: 0}
        self._table: List[Dict[int, Tuple[int, bool]]] = [{}]
        self.start = 0
        self.table_fills = 0  # cells computed (diagnostic / bench)

    # -- hot path ---------------------------------------------------------

    def valuation(self, history: Sequence[Letter]) -> int:
        """Pack the atoms' truth over ``history`` into one symbol."""
        symbol = 0
        bit = 1
        for fn in self._atom_fns:
            if fn(history):
                symbol |= bit
            bit <<= 1
        return symbol

    def advance(self, state: int, symbol: int) -> Tuple[int, bool]:
        """One transition; fills the table cell on first visit."""
        entry = self._table[state].get(symbol)
        if entry is None:
            entry = self._fill(state, symbol)
        return entry

    # -- cold path --------------------------------------------------------

    def _fill(self, state: int, symbol: int) -> Tuple[int, bool]:
        truth: Dict[Expr, bool] = {}
        bit = 1
        for atom in self.atoms:
            truth[atom] = bool(symbol & bit)
            bit <<= 1
        view = _SymbolicView(truth)
        result: set = set()
        for residual in self._states[state]:
            result |= derivatives(residual, view)
        if len(result) > SereTracker.MAX_RESIDUALS:
            raise PslUnsupportedError(
                f"SERE residual set exceeded {SereTracker.MAX_RESIDUALS} "
                f"terms; use the ReplayMonitor for this property"
            )
        matched = any(nullable(r) for r in result)
        if not result:
            entry = (self.DEAD, matched)
        else:
            new_set = frozenset(result)
            index = self._index.get(new_set)
            if index is None:
                index = len(self._states)
                self._states.append(new_set)
                self._index[new_set] = index
                self._table.append({})
            entry = (index, matched)
        self._table[state][symbol] = entry
        self.table_fills += 1
        return entry

    # -- introspection ----------------------------------------------------

    @property
    def state_count(self) -> int:
        """States discovered so far (grows as the table fills)."""
        return len(self._states)

    def variables(self) -> frozenset:
        """Signal names this monitor samples each cycle."""
        return self.sere.variables()


#: Process-wide automaton cache: equal (desugared) SEREs share one
#: automaton and therefore one transition table.
_AUTOMATON_CACHE: Dict[Sere, SereAutomaton] = {}


def shared_automaton(item: Sere) -> SereAutomaton:
    """Automaton for ``item``, shared process-wide by SERE equality."""
    key = desugar(item)
    automaton = _AUTOMATON_CACHE.get(key)
    if automaton is None:
        _bump("automaton_misses", "psl.compile.automaton", "miss")
        automaton = SereAutomaton(key)
        _AUTOMATON_CACHE[key] = automaton
    else:
        _bump("automaton_hits", "psl.compile.automaton", "hit")
    return automaton


def _iter_bits(mask: int):
    """Yield set-bit indices of ``mask`` (a state bitset), ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


# ---------------------------------------------------------------------------
# Compiled monitors
# ---------------------------------------------------------------------------


class CompiledProperty(Monitor, _HistoryMixin):
    """Base for table-driven monitors.

    Same protocol as the interpreted :class:`Monitor` --
    ``reset/step/verdict/snapshot/restore/variables`` -- so harness,
    explorer and workbench code cannot tell the engines apart except
    by the ``engine`` tag and by speed.
    """

    engine = "compiled"

    def _push_letter(self, letter: Letter) -> List[Letter]:
        history = self._history
        history.append(freeze_letter(letter))
        if len(history) > self._depth + 1:
            del history[0]
        return history


class CompiledInvariant(CompiledProperty):
    """``always b`` (expect=True) / ``never b`` (expect=False)."""

    def __init__(self, expression: Expr, expect: bool, name: str, report: str = ""):
        super().__init__(name, report)
        self.expression = expression
        self.expect = expect
        self._fn = _compiled_bool(expression)
        self._init_history(history_depth(expression))

    def reset(self) -> None:
        """Return to the initial (pre-trace) monitor state."""
        super().reset()
        self._history = []

    def variables(self) -> frozenset:
        """Signal names this monitor samples each cycle."""
        return self.expression.variables()

    def _advance(self, letter: Letter) -> Verdict:
        history = self._push_letter(letter)
        if self._fn(history) != self.expect:
            return Verdict.FAILS
        return Verdict.HOLDS

    def snapshot(self) -> Any:
        """Opaque, immutable state for :meth:`restore`."""
        return (self._verdict, self._history_snapshot())

    def restore(self, snap: Any) -> None:
        """Reinstate monitor state captured by :meth:`snapshot`."""
        self._verdict, history = snap
        self._history_restore(history)


class CompiledEventually(CompiledProperty):
    """``eventually! b``: PENDING until b holds once."""

    def __init__(self, expression: Expr, name: str, report: str = ""):
        super().__init__(name, report)
        self.expression = expression
        self._fn = _compiled_bool(expression)
        self._init_history(history_depth(expression))
        self._verdict = Verdict.PENDING

    def reset(self) -> None:
        """Return to the initial (pre-trace) monitor state."""
        super().reset()
        self._verdict = Verdict.PENDING
        self._history = []

    def variables(self) -> frozenset:
        """Signal names this monitor samples each cycle."""
        return self.expression.variables()

    def _advance(self, letter: Letter) -> Verdict:
        history = self._push_letter(letter)
        if self._fn(history):
            return Verdict.HOLDS_STRONGLY
        return Verdict.PENDING

    def snapshot(self) -> Any:
        """Opaque, immutable state for :meth:`restore`."""
        return (self._verdict, self._history_snapshot())

    def restore(self, snap: Any) -> None:
        """Reinstate monitor state captured by :meth:`snapshot`."""
        self._verdict, history = snap
        self._history_restore(history)


class CompiledUntil(CompiledProperty):
    """``a until b`` / ``a until! b`` over boolean operands."""

    def __init__(
        self,
        left: Expr,
        right: Expr,
        *,
        strong: bool,
        inclusive: bool = False,
        name: str = "until",
        report: str = "",
    ):
        super().__init__(name, report)
        self.left = left
        self.right = right
        self.strong = strong
        self.inclusive = inclusive
        self._left_fn = _compiled_bool(left)
        self._right_fn = _compiled_bool(right)
        self._released = False
        self._init_history(max(history_depth(left), history_depth(right)))
        self._verdict = Verdict.PENDING if strong else Verdict.HOLDS

    def reset(self) -> None:
        """Return to the initial (pre-trace) monitor state."""
        super().reset()
        self._released = False
        self._verdict = Verdict.PENDING if self.strong else Verdict.HOLDS
        self._history = []

    def variables(self) -> frozenset:
        """Signal names this monitor samples each cycle."""
        return self.left.variables() | self.right.variables()

    def _advance(self, letter: Letter) -> Verdict:
        if self._released:
            return self._verdict
        history = self._push_letter(letter)
        if self._right_fn(history) and (
            not self.inclusive or self._left_fn(history)
        ):
            self._released = True
            return Verdict.HOLDS_STRONGLY
        if not self._left_fn(history):
            return Verdict.FAILS
        return Verdict.PENDING if self.strong else Verdict.HOLDS

    def snapshot(self) -> Any:
        """Opaque, immutable state for :meth:`restore`."""
        return (self._verdict, self._released, self._history_snapshot())

    def restore(self, snap: Any) -> None:
        """Reinstate monitor state captured by :meth:`snapshot`."""
        self._verdict, self._released, history = snap
        self._history_restore(history)


class CompiledNeverSere(CompiledProperty):
    """``never {r}``: attempts tracked as a bitset of state indices."""

    def __init__(self, item: Sere, name: str = "never_sere", report: str = ""):
        super().__init__(name, report)
        self.automaton = shared_automaton(item)
        self._attempts = 0  # bitset of live automaton states
        self._init_history(self.automaton.depth)

    def reset(self) -> None:
        """Return to the initial (pre-trace) monitor state."""
        super().reset()
        self._attempts = 0
        self._history = []

    def variables(self) -> frozenset:
        """Signal names this monitor samples each cycle."""
        return self.automaton.variables()

    def _advance(self, letter: Letter) -> Verdict:
        history = self._push_letter(letter)
        automaton = self.automaton
        symbol = automaton.valuation(history)
        advance = automaton.advance
        survivors = 0
        for state in _iter_bits(self._attempts | (1 << automaton.start)):
            next_state, matched = advance(state, symbol)
            if matched:
                return Verdict.FAILS
            if next_state >= 0:
                survivors |= 1 << next_state
        self._attempts = survivors
        return Verdict.HOLDS

    def snapshot(self) -> Any:
        """Opaque, immutable state for :meth:`restore`."""
        return (self._verdict, self._attempts, self._history_snapshot())

    def restore(self, snap: Any) -> None:
        """Reinstate monitor state captured by :meth:`snapshot`."""
        self._verdict, self._attempts, history = snap
        self._history_restore(history)


class CompiledCover(CompiledProperty):
    """``cover {r}``: per-attempt hit counting on integer states."""

    latch_definite = False  # keep counting after the first hit
    is_cover = True

    def __init__(self, item: Sere, name: str = "cover", report: str = ""):
        super().__init__(name, report)
        self.automaton = shared_automaton(item)
        self._attempts = 0
        self.hits = 0
        self._init_history(self.automaton.depth)

    def reset(self) -> None:
        """Return to the initial (pre-trace) monitor state."""
        super().reset()
        self._attempts = 0
        self._history = []
        self.hits = 0

    def variables(self) -> frozenset:
        """Signal names this monitor samples each cycle."""
        return self.automaton.variables()

    def _advance(self, letter: Letter) -> Verdict:
        history = self._push_letter(letter)
        automaton = self.automaton
        symbol = automaton.valuation(history)
        advance = automaton.advance
        survivors = 0
        for state in _iter_bits(self._attempts | (1 << automaton.start)):
            next_state, matched = advance(state, symbol)
            if matched:
                self.hits += 1
            if next_state >= 0:
                survivors |= 1 << next_state
        self._attempts = survivors
        return Verdict.HOLDS_STRONGLY if self.hits else Verdict.PENDING

    def snapshot(self) -> Any:
        """Opaque, immutable state for :meth:`restore`."""
        # Mirror the interpreted CoverMonitor: the covered bit is
        # semantic state, the exact count is a statistic.
        return (self._verdict, self._attempts, self.hits > 0, self._history_snapshot())

    def restore(self, snap: Any) -> None:
        """Reinstate monitor state captured by :meth:`snapshot`."""
        self._verdict, self._attempts, covered, history = snap
        if covered and self.hits == 0:
            self.hits = 1
        self._history_restore(history)


class CompiledSuffixImplication(CompiledProperty):
    """``always {r} |->/|=> {s}`` on two shared automata.

    Antecedent attempts and consequent obligations are bitsets of
    state indices; the per-cycle work is two symbol valuations plus
    one table lookup per live state.  Obligation lifecycle (spawn,
    discharge on match, fail on death, PENDING under a strong
    consequent) mirrors ``SuffixImplicationMonitor._advance`` line by
    line.
    """

    def __init__(
        self,
        antecedent: Sere,
        consequent: Sere,
        *,
        overlapping: bool,
        strong_consequent: bool = False,
        name: str = "suffix_implication",
        report: str = "",
    ):
        super().__init__(name, report)
        self.antecedent_automaton = shared_automaton(antecedent)
        self.consequent_automaton = shared_automaton(consequent)
        self.overlapping = overlapping
        self.strong_consequent = strong_consequent
        self._antecedent_states = 0  # bitset of live antecedent states
        self._obligations = 0  # bitset of live consequent states
        self._fresh_obligations = 0  # spawned this cycle, consume next
        self._init_history(
            max(self.antecedent_automaton.depth, self.consequent_automaton.depth)
        )
        self.triggered = 0  # completed antecedent matches (activity metric)

    def reset(self) -> None:
        """Return to the initial (pre-trace) monitor state."""
        super().reset()
        self._antecedent_states = 0
        self._obligations = 0
        self._fresh_obligations = 0
        self._history = []
        self.triggered = 0

    def variables(self) -> frozenset:
        """Signal names this monitor samples each cycle."""
        return self.antecedent_automaton.variables() | (
            self.consequent_automaton.variables()
        )

    def _advance(self, letter: Letter) -> Verdict:
        history = self._push_letter(letter)
        antecedent = self.antecedent_automaton
        consequent = self.consequent_automaton
        antecedent_symbol = antecedent.valuation(history)
        consequent_symbol = consequent.valuation(history)

        # 1. advance antecedent attempts (plus a fresh anchor at this cycle)
        matched_now = False
        new_attempts = 0
        advance_antecedent = antecedent.advance
        for state in _iter_bits(self._antecedent_states | (1 << antecedent.start)):
            next_state, matched = advance_antecedent(state, antecedent_symbol)
            if matched:
                matched_now = True
            if next_state >= 0:
                new_attempts |= 1 << next_state
        self._antecedent_states = new_attempts

        # 2. advance outstanding obligations (those spawned before this cycle)
        live = 0
        failed = False
        advance_consequent = consequent.advance
        for state in _iter_bits(self._obligations | self._fresh_obligations):
            next_state, matched = advance_consequent(state, consequent_symbol)
            if matched:
                continue  # discharged
            if next_state < 0:
                failed = True
                continue
            live |= 1 << next_state
        self._fresh_obligations = 0

        # 3. a completed antecedent spawns a consequent obligation
        if matched_now:
            self.triggered += 1
            if self.overlapping:
                # |->: the consequent's first letter is the current one.
                next_state, matched = advance_consequent(
                    consequent.start, consequent_symbol
                )
                if not matched:
                    if next_state < 0:
                        failed = True
                    else:
                        live |= 1 << next_state
            else:
                # |=>: the consequent starts next cycle.
                self._fresh_obligations = 1 << consequent.start

        self._obligations = live
        if failed:
            return Verdict.FAILS
        if (self._obligations or self._fresh_obligations) and self.strong_consequent:
            return Verdict.PENDING
        return Verdict.HOLDS

    def snapshot(self) -> Any:
        """Opaque, immutable state for :meth:`restore`."""
        # ``triggered`` stays out, mirroring the interpreted monitor.
        return (
            self._verdict,
            self._antecedent_states,
            self._obligations,
            self._fresh_obligations,
            self._history_snapshot(),
        )

    def restore(self, snap: Any) -> None:
        """Reinstate monitor state captured by :meth:`snapshot`."""
        (
            self._verdict,
            self._antecedent_states,
            self._obligations,
            self._fresh_obligations,
            history,
        ) = snap
        self._history_restore(history)


# ---------------------------------------------------------------------------
# The public compilation API
# ---------------------------------------------------------------------------


#: Per-property compilation plans: (engine, kind, property AST,
#: binding) -> zero-arg monitor factory.
_PLAN_CACHE: Dict[Tuple, Callable[[], Monitor]] = {}

_CACHE_STATS = {
    "plan_hits": 0,
    "plan_misses": 0,
    "automaton_hits": 0,
    "automaton_misses": 0,
}


def _bump(stat: str, metric: str, result: str) -> None:
    _CACHE_STATS[stat] += 1
    metrics = OBS.metrics
    if metrics.enabled:
        metrics.counter(metric, result=result).inc()


def compile_cache_stats() -> Dict[str, int]:
    """Process-wide compile-cache counters (plans and automata).

    Exposed on the worker ``/healthz`` endpoint; hits should dwarf
    misses in any real regression (same properties x many seeds).
    """
    stats = dict(_CACHE_STATS)
    stats["plans"] = len(_PLAN_CACHE)
    stats["automata"] = len(_AUTOMATON_CACHE)
    stats["automaton_states"] = sum(
        a.state_count for a in _AUTOMATON_CACHE.values()
    )
    return stats


def clear_compile_caches() -> None:
    """Drop all compilation caches (tests and memory-pressure hooks)."""
    _PLAN_CACHE.clear()
    _AUTOMATON_CACHE.clear()
    for key in _CACHE_STATS:
        _CACHE_STATS[key] = 0


def property_digest(source: Property | Directive | Formula | str) -> str:
    """Stable hex digest of a property's source form.

    Equal sources parse to equal ASTs and equal ASTs print back to
    equal canonical text, so this digest is interchangeable with the
    AST as a cache identity; it exists for logs and cross-process
    comparison where shipping the AST is impractical.
    """
    directive = _as_directive(source)
    text = f"{directive.kind}:{directive.prop.name}:{directive.prop.formula}"
    return hashlib.sha256(text.encode()).hexdigest()


def _as_directive(source: Property | Directive | Formula | str) -> Directive:
    """Normalize any accepted source form to an assert/cover directive."""
    if isinstance(source, Directive):
        return source
    if isinstance(source, Property):
        return Directive(kind=DirectiveKind.ASSERT, prop=source)
    if isinstance(source, str):
        from .parser import parse_directive, parse_formula

        try:
            return _as_directive(parse_directive(source))
        except PslParseError:
            return _as_directive(parse_formula(source))
    if isinstance(source, Formula):
        return Directive(
            kind=DirectiveKind.ASSERT,
            prop=Property(name="property", formula=source),
        )
    raise TypeError(
        f"cannot compile {type(source).__name__}; expected "
        f"Directive, Property, Formula or source text"
    )


def _rebind(node: Any, bindings: Mapping[str, str]) -> Any:
    """Rename signal references throughout a (frozen dataclass) AST."""
    if isinstance(node, Var):
        renamed = bindings.get(node.name)
        return Var(renamed) if renamed is not None else node
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        changes = {}
        for field in dataclasses.fields(node):
            value = getattr(node, field.name)
            rebound = _rebind(value, bindings)
            if rebound is not value:
                changes[field.name] = rebound
        return dataclasses.replace(node, **changes) if changes else node
    if isinstance(node, tuple):
        rebound = tuple(_rebind(v, bindings) for v in node)
        return rebound if rebound != node else node
    return node


def compile_properties(
    sources: Iterable[Property | Directive | Formula | str],
    *,
    bindings: Optional[Mapping[str, str]] = None,
    engine: Optional[str] = None,
) -> List[Monitor]:
    """Compile properties into monitors -- the one construction path.

    ``sources`` may mix parsed :class:`Directive`/:class:`Property`/
    :class:`Formula` objects and PSL source text.  ``bindings``
    renames signal references (formal -> actual) before compilation
    and is part of the cache key.  ``engine`` selects ``"compiled"``
    (table-driven automata, the default) or ``"interpreted"`` (the
    original derivative interpreter); ``None`` defers to
    :func:`default_engine`, i.e. ``REPRO_PSL_ENGINE`` when set.

    Properties the compiled engine cannot lower (deep ``until``
    nests, unbounded-residual SEREs, ...) transparently fall back to
    the interpreted :func:`build_monitor` result, so both engines
    accept the full supported PSL subset and produce identical
    verdict traces.
    """
    resolved = _validate_engine(engine) if engine is not None else default_engine()
    return [
        compile_property(source, bindings=bindings, engine=resolved)
        for source in sources
    ]


def compile_property(
    source: Property | Directive | Formula | str,
    *,
    name: Optional[str] = None,
    bindings: Optional[Mapping[str, str]] = None,
    engine: Optional[str] = None,
) -> Monitor:
    """Compile one property (see :func:`compile_properties`)."""
    resolved = _validate_engine(engine) if engine is not None else default_engine()
    directive = _as_directive(source)
    if bindings:
        directive = _rebind(directive, dict(bindings))
    binding_key = (
        tuple(sorted(bindings.items())) if bindings else None
    )
    key = (resolved, directive.kind, directive.prop, binding_key)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        _bump("plan_misses", "psl.compile.cache", "miss")
        plan = _build_plan(directive, resolved)
        _PLAN_CACHE[key] = plan
    else:
        _bump("plan_hits", "psl.compile.cache", "hit")
    monitor = plan()
    if name is not None:
        monitor.name = name
    return monitor


def _build_plan(directive: Directive, engine: str) -> Callable[[], Monitor]:
    """Build the per-property monitor factory for one engine."""
    if engine == "interpreted":
        def interpreted_plan() -> Monitor:
            with _sanctioned_construction():
                return build_monitor(directive)

        return interpreted_plan

    builder = _match_compiled(directive)
    if builder is None:
        # Transparent fallback: patterns (or SEREs) the table engine
        # cannot lower run on the interpreted engine instead.
        def fallback_plan() -> Monitor:
            with _sanctioned_construction():
                return build_monitor(directive)

        return fallback_plan

    def compiled_plan() -> Monitor:
        with _sanctioned_construction():
            return builder()

    # Compile eagerly once so unsupported SEREs surface now (and fall
    # back) rather than mid-regression.
    try:
        compiled_plan()
    except PslUnsupportedError:
        def unsupported_plan() -> Monitor:
            with _sanctioned_construction():
                return build_monitor(directive)

        return unsupported_plan
    return compiled_plan


def _match_compiled(directive: Directive) -> Optional[Callable[[], Monitor]]:
    """Mirror of ``build_monitor``'s pattern match, building table-driven
    monitors; ``None`` means no compiled lowering exists."""
    prop = directive.prop
    formula = prop.formula
    name = prop.name
    report = prop.report

    if directive.kind == DirectiveKind.COVER:
        target = formula
        if isinstance(target, FlEventually):
            target = target.operand
        if isinstance(target, FlSere):
            sere = target.sere
            return lambda: CompiledCover(sere, name=name, report=report)
        if isinstance(target, FlBool):
            sere = SereBool(target.expr)
            return lambda: CompiledCover(sere, name=name, report=report)
        return None

    if isinstance(formula, FlAlways):
        body = formula.operand
        if isinstance(body, FlBool):
            expr = body.expr
            return lambda: CompiledInvariant(expr, True, name, report)
        if isinstance(body, FlNot) and isinstance(body.operand, FlBool):
            expr = body.operand.expr
            return lambda: CompiledInvariant(expr, False, name, report)
        if isinstance(body, FlSuffixImpl):
            consequent = _as_sere(body.consequent)
            if consequent is not None:
                antecedent = body.antecedent
                overlapping = body.overlapping
                strong = _consequent_is_strong(body.consequent)
                return lambda: CompiledSuffixImplication(
                    antecedent,
                    consequent,
                    overlapping=overlapping,
                    strong_consequent=strong,
                    name=name,
                    report=report,
                )
        if isinstance(body, FlImplies) and isinstance(body.left, FlBool):
            consequent = _as_sere(body.right)
            if consequent is not None:
                antecedent = SereBool(body.left.expr)
                strong = _consequent_is_strong(body.right)
                return lambda: CompiledSuffixImplication(
                    antecedent,
                    consequent,
                    overlapping=True,
                    strong_consequent=strong,
                    name=name,
                    report=report,
                )
    if isinstance(formula, FlNever):
        body = formula.operand
        if isinstance(body, FlBool):
            expr = body.expr
            return lambda: CompiledInvariant(expr, False, name, report)
        if isinstance(body, FlSere):
            sere = body.sere
            return lambda: CompiledNeverSere(sere, name=name, report=report)
    if isinstance(formula, FlEventually) and isinstance(formula.operand, FlBool):
        expr = formula.operand.expr
        return lambda: CompiledEventually(expr, name=name, report=report)
    if isinstance(formula, FlUntil):
        if isinstance(formula.left, FlBool) and isinstance(formula.right, FlBool):
            left = formula.left.expr
            right = formula.right.expr
            strong = formula.strong
            inclusive = formula.inclusive
            return lambda: CompiledUntil(
                left,
                right,
                strong=strong,
                inclusive=inclusive,
                name=name,
                report=report,
            )
    return None
