"""Formula rewriting: simplification and negation normal form.

Monitor generation and FSM embedding both benefit from smaller
formulas; this module implements the standard meaning-preserving
rewrites (checked by the hypothesis equivalence tests):

* Boolean-layer constant folding (``a && true -> a``, double negation),
* FL-level absorption (``always always f -> always f``,
  ``eventually! eventually! f -> eventually! f``),
* negation normal form via the PSL dualities
  (``!always f -> eventually! !f``, ``!(f until g)`` expansion via
  release-style rewriting is deliberately *not* applied -- PSL has no
  release operator, so negations stop at until boundaries),
* SERE cleanups (``r[*1] -> r``, flattening nested concatenations,
  collapsing nested stars).
"""

from __future__ import annotations

from typing import Union

from .ast_nodes import (
    And,
    Const,
    Expr,
    FlAlways,
    FlAnd,
    FlBool,
    FlEventually,
    FlIff,
    FlImplies,
    FlNever,
    FlNext,
    FlNot,
    FlOr,
    FlSere,
    FlSuffixImpl,
    FlUntil,
    Formula,
    Not,
    Or,
    Sere,
    SereAnd,
    SereBool,
    SereConcat,
    SereFusion,
    SereOr,
    SereRepeat,
)


# ---------------------------------------------------------------------------
# Boolean layer
# ---------------------------------------------------------------------------


def simplify_expr(expression: Expr) -> Expr:
    """Constant folding and involution removal on Boolean expressions."""
    if isinstance(expression, Not):
        inner = simplify_expr(expression.operand)
        if isinstance(inner, Not):
            return inner.operand
        if isinstance(inner, Const) and isinstance(inner.value, bool):
            return Const(not inner.value)
        return Not(inner)
    if isinstance(expression, And):
        left = simplify_expr(expression.left)
        right = simplify_expr(expression.right)
        if _is_const(left, False) or _is_const(right, False):
            return Const(False)
        if _is_const(left, True):
            return right
        if _is_const(right, True):
            return left
        if left == right:
            return left
        return And(left, right)
    if isinstance(expression, Or):
        left = simplify_expr(expression.left)
        right = simplify_expr(expression.right)
        if _is_const(left, True) or _is_const(right, True):
            return Const(True)
        if _is_const(left, False):
            return right
        if _is_const(right, False):
            return left
        if left == right:
            return left
        return Or(left, right)
    return expression


def _is_const(expression: Expr, value: bool) -> bool:
    return isinstance(expression, Const) and expression.value is value


# ---------------------------------------------------------------------------
# SEREs
# ---------------------------------------------------------------------------


def simplify_sere(item: Sere) -> Sere:
    """Flatten and collapse SEREs without changing the language."""
    if isinstance(item, SereBool):
        return SereBool(simplify_expr(item.expr))
    if isinstance(item, SereConcat):
        parts: list[Sere] = []
        for part in item.parts:
            part = simplify_sere(part)
            if isinstance(part, SereConcat):
                parts.extend(part.parts)
            elif _is_epsilon(part):
                continue  # unit of concatenation
            else:
                parts.append(part)
        if not parts:
            return _EPSILON
        if len(parts) == 1:
            return parts[0]
        return SereConcat(tuple(parts))
    if isinstance(item, SereOr):
        left = simplify_sere(item.left)
        right = simplify_sere(item.right)
        if left == right:
            return left
        return SereOr(left, right)
    if isinstance(item, SereAnd):
        left = simplify_sere(item.left)
        right = simplify_sere(item.right)
        if left == right:
            return left
        return SereAnd(left, right, item.length_matching)
    if isinstance(item, SereFusion):
        return SereFusion(simplify_sere(item.left), simplify_sere(item.right))
    if isinstance(item, SereRepeat):
        body = simplify_sere(item.body)
        if item.low == 1 and item.high == 1:
            return body
        if (
            isinstance(body, SereRepeat)
            and body.low in (0, 1)
            and body.high is None
            and item.high is None
        ):
            # (r[*])[*] == r[*];  (r[+])[*] == r[*]
            low = 0 if (item.low == 0 or body.low == 0) else 1
            return SereRepeat(body.body, low, None)
        return SereRepeat(body, item.low, item.high)
    return item


_EPSILON = SereRepeat(SereBool(Const(True)), 0, 0)


def _is_epsilon(item: Sere) -> bool:
    return (
        isinstance(item, SereRepeat)
        and item.low == 0
        and item.high == 0
    )


# ---------------------------------------------------------------------------
# FL formulas
# ---------------------------------------------------------------------------


def simplify(formula: Formula) -> Formula:
    """Meaning-preserving FL simplification (idempotent)."""
    if isinstance(formula, FlBool):
        return FlBool(simplify_expr(formula.expr))
    if isinstance(formula, FlNot):
        inner = simplify(formula.operand)
        if isinstance(inner, FlNot):
            return inner.operand
        if isinstance(inner, FlBool):
            return FlBool(simplify_expr(Not(inner.expr)))
        return FlNot(inner)
    if isinstance(formula, FlAnd):
        left, right = simplify(formula.left), simplify(formula.right)
        if left == right:
            return left
        if _is_true(left):
            return right
        if _is_true(right):
            return left
        if _is_false(left) or _is_false(right):
            return FlBool(Const(False))
        return FlAnd(left, right)
    if isinstance(formula, FlOr):
        left, right = simplify(formula.left), simplify(formula.right)
        if left == right:
            return left
        if _is_false(left):
            return right
        if _is_false(right):
            return left
        if _is_true(left) or _is_true(right):
            return FlBool(Const(True))
        return FlOr(left, right)
    if isinstance(formula, FlImplies):
        left, right = simplify(formula.left), simplify(formula.right)
        if _is_true(left):
            return right
        if _is_false(left):
            return FlBool(Const(True))
        return FlImplies(left, right)
    if isinstance(formula, FlIff):
        return FlIff(simplify(formula.left), simplify(formula.right))
    if isinstance(formula, FlAlways):
        inner = simplify(formula.operand)
        if isinstance(inner, FlAlways):
            return inner  # GG f == G f
        if isinstance(inner, FlAnd):
            # G(f && g) == Gf && Gg -- helps monitor splitting
            return FlAnd(
                simplify(FlAlways(inner.left)), simplify(FlAlways(inner.right))
            )
        return FlAlways(inner)
    if isinstance(formula, FlNever):
        inner = simplify(formula.operand)
        if isinstance(inner, FlBool):
            return FlAlways(FlBool(simplify_expr(Not(inner.expr))))
        return FlNever(inner)
    if isinstance(formula, FlEventually):
        inner = simplify(formula.operand)
        if isinstance(inner, FlEventually):
            return inner  # FF f == F f
        return FlEventually(inner)
    if isinstance(formula, FlNext):
        inner = simplify(formula.operand)
        if formula.count == 0:
            return inner
        if isinstance(inner, FlNext) and inner.strong == formula.strong:
            return FlNext(
                inner.operand, strong=formula.strong,
                count=formula.count + inner.count,
            )
        return FlNext(inner, strong=formula.strong, count=formula.count)
    if isinstance(formula, FlUntil):
        return FlUntil(
            simplify(formula.left),
            simplify(formula.right),
            strong=formula.strong,
            inclusive=formula.inclusive,
        )
    if isinstance(formula, FlSere):
        return FlSere(simplify_sere(formula.sere), strong=formula.strong)
    if isinstance(formula, FlSuffixImpl):
        return FlSuffixImpl(
            simplify_sere(formula.antecedent),
            simplify(formula.consequent),
            overlapping=formula.overlapping,
        )
    return formula


def _is_true(formula: Formula) -> bool:
    return isinstance(formula, FlBool) and _is_const(formula.expr, True)


def _is_false(formula: Formula) -> bool:
    return isinstance(formula, FlBool) and _is_const(formula.expr, False)


def negation_normal_form(formula: Formula) -> Formula:
    """Push negations inward using the PSL dualities.

    ``!G f -> F! !f``, ``!F! f -> G !f``, ``!X f -> X! !f``,
    ``!X! f -> X !f``, De Morgan on and/or.  Negations over ``until``
    and SEREs stay in place (PSL has no dual operators for them).
    """
    formula = simplify(formula)
    if isinstance(formula, FlNot):
        inner = formula.operand
        if isinstance(inner, FlNot):
            return negation_normal_form(inner.operand)
        if isinstance(inner, FlBool):
            return FlBool(simplify_expr(Not(inner.expr)))
        if isinstance(inner, FlAnd):
            return FlOr(
                negation_normal_form(FlNot(inner.left)),
                negation_normal_form(FlNot(inner.right)),
            )
        if isinstance(inner, FlOr):
            return FlAnd(
                negation_normal_form(FlNot(inner.left)),
                negation_normal_form(FlNot(inner.right)),
            )
        if isinstance(inner, FlImplies):
            return FlAnd(
                negation_normal_form(inner.left),
                negation_normal_form(FlNot(inner.right)),
            )
        if isinstance(inner, FlAlways):
            return FlEventually(negation_normal_form(FlNot(inner.operand)))
        if isinstance(inner, FlEventually):
            return FlAlways(negation_normal_form(FlNot(inner.operand)))
        if isinstance(inner, FlNever):
            return FlEventually(negation_normal_form(inner.operand))
        if isinstance(inner, FlNext):
            return FlNext(
                negation_normal_form(FlNot(inner.operand)),
                strong=not inner.strong,
                count=inner.count,
            )
        return formula
    if isinstance(formula, FlAnd):
        return FlAnd(
            negation_normal_form(formula.left), negation_normal_form(formula.right)
        )
    if isinstance(formula, FlOr):
        return FlOr(
            negation_normal_form(formula.left), negation_normal_form(formula.right)
        )
    if isinstance(formula, FlImplies):
        return FlOr(
            negation_normal_form(FlNot(formula.left)),
            negation_normal_form(formula.right),
        )
    if isinstance(formula, FlAlways):
        return FlAlways(negation_normal_form(formula.operand))
    if isinstance(formula, FlEventually):
        return FlEventually(negation_normal_form(formula.operand))
    if isinstance(formula, FlNext):
        return FlNext(
            negation_normal_form(formula.operand),
            strong=formula.strong,
            count=formula.count,
        )
    if isinstance(formula, FlUntil):
        return FlUntil(
            negation_normal_form(formula.left),
            negation_normal_form(formula.right),
            strong=formula.strong,
            inclusive=formula.inclusive,
        )
    return formula
