"""PSL abstract syntax: Boolean layer, temporal layer (SEREs + FL), and
verification layer.

PSL "is a hierarchical language, where every layer is built on top of
the layer below" (paper, Section 2.1).  The nodes here mirror that
hierarchy:

* **Boolean layer** -- expressions over design signals, evaluated in a
  single cycle (plus the built-in functions ``prev``/``next``/``rose``/
  ``fell``/``stable`` that peek at neighbouring cycles),
* **temporal layer** -- SEREs (Sequential Extended Regular Expressions)
  and FL (Foundation Language) formulas,
* **verification layer** -- ``assert``/``assume``/``restrict``/``cover``
  directives and verification units (``vunit``).

The modeling layer is VHDL/Verilog-specific and deliberately not
implemented ("This layer is not used in our verification approach",
paper Section 2.1.2).

Every node is immutable, hashable, and renders back to PSL-ish concrete
syntax via ``str()``.  Evaluation of Boolean-layer expressions happens
against an :class:`EvalContext` (a trace plus a position) so the
history-peeking built-ins work uniformly in model checking and in
simulation monitors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from ..asm.types import BitVector
from .errors import PslEvaluationError, PslTypeError

#: Unbounded repetition marker (``[*]`` upper bound).
INFINITY: Optional[int] = None


# ---------------------------------------------------------------------------
# Evaluation context
# ---------------------------------------------------------------------------


class EvalContext:
    """A finite trace plus the cycle under evaluation.

    ``trace`` is a sequence of *letters*; each letter maps signal names
    to values (bool / int / :class:`BitVector` / str).
    """

    __slots__ = ("trace", "position")

    def __init__(self, trace: Sequence[Mapping[str, Any]], position: int = 0):
        self.trace = trace
        self.position = position

    def letter(self, offset: int = 0) -> Mapping[str, Any]:
        index = self.position + offset
        if index < 0 or index >= len(self.trace):
            raise PslEvaluationError(
                f"cycle {index} outside trace of length {len(self.trace)}"
            )
        return self.trace[index]

    def has(self, offset: int) -> bool:
        index = self.position + offset
        return 0 <= index < len(self.trace)

    def at(self, position: int) -> "EvalContext":
        return EvalContext(self.trace, position)


def as_bool(value: Any) -> bool:
    """Interpret an evaluated expression value as a PSL Boolean."""
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value != 0
    if isinstance(value, BitVector):
        return value.to_unsigned() != 0
    if isinstance(value, str):
        return value != ""
    raise PslTypeError(f"cannot interpret {value!r} as Boolean")


# ---------------------------------------------------------------------------
# Boolean layer
# ---------------------------------------------------------------------------


class Expr:
    """Base class of Boolean-layer expressions."""

    def eval(self, ctx: EvalContext) -> Any:
        raise NotImplementedError

    def eval_bool(self, ctx: EvalContext) -> bool:
        return as_bool(self.eval(ctx))

    def variables(self) -> frozenset[str]:
        """Names of all design signals the expression reads."""
        raise NotImplementedError

    # sugar for building ASTs in Python

    def __and__(self, other: "Expr") -> "And":
        return And(self, _expr(other))

    def __or__(self, other: "Expr") -> "Or":
        return Or(self, _expr(other))

    def __invert__(self) -> "Not":
        return Not(self)

    def implies(self, other: "Expr") -> "Implies":
        return Implies(self, _expr(other))

    def iff(self, other: "Expr") -> "Iff":
        return Iff(self, _expr(other))

    def eq(self, other: Any) -> "Compare":
        return Compare("==", self, _expr(other))

    def ne(self, other: Any) -> "Compare":
        return Compare("!=", self, _expr(other))

    def lt(self, other: Any) -> "Compare":
        return Compare("<", self, _expr(other))

    def le(self, other: Any) -> "Compare":
        return Compare("<=", self, _expr(other))

    def gt(self, other: Any) -> "Compare":
        return Compare(">", self, _expr(other))

    def ge(self, other: Any) -> "Compare":
        return Compare(">=", self, _expr(other))


def _expr(value: Any) -> Expr:
    if isinstance(value, Expr):
        return value
    return Const(value)


@dataclass(frozen=True)
class Var(Expr):
    """A design signal reference, e.g. ``req`` or ``master0.m_req``."""

    name: str

    def eval(self, ctx: EvalContext) -> Any:
        letter = ctx.letter()
        if self.name not in letter:
            raise PslEvaluationError(f"unknown signal {self.name!r}")
        return letter[self.name]

    def variables(self) -> frozenset[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expr):
    """A literal: Boolean, numeric, bit vector or string."""

    value: Any

    def eval(self, ctx: EvalContext) -> Any:
        return self.value

    def variables(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, BitVector):
            return f"{self.value.width}'b{self.value.to_binary_string()}"
        return repr(self.value)


TRUE = Const(True)
FALSE = Const(False)


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def eval(self, ctx: EvalContext) -> bool:
        return not self.operand.eval_bool(ctx)

    def variables(self) -> frozenset[str]:
        return self.operand.variables()

    def __str__(self) -> str:
        return f"!{_paren(self.operand)}"


@dataclass(frozen=True)
class And(Expr):
    left: Expr
    right: Expr

    def eval(self, ctx: EvalContext) -> bool:
        return self.left.eval_bool(ctx) and self.right.eval_bool(ctx)

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"{_paren(self.left)} && {_paren(self.right)}"


@dataclass(frozen=True)
class Or(Expr):
    left: Expr
    right: Expr

    def eval(self, ctx: EvalContext) -> bool:
        return self.left.eval_bool(ctx) or self.right.eval_bool(ctx)

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"{_paren(self.left)} || {_paren(self.right)}"


@dataclass(frozen=True)
class Xor(Expr):
    left: Expr
    right: Expr

    def eval(self, ctx: EvalContext) -> bool:
        return self.left.eval_bool(ctx) != self.right.eval_bool(ctx)

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"{_paren(self.left)} ^ {_paren(self.right)}"


@dataclass(frozen=True)
class Implies(Expr):
    """Boolean-layer implication ``->`` (paper: "PSL Expressions
    includes constructing properties using the implication and
    equivalence operators")."""

    left: Expr
    right: Expr

    def eval(self, ctx: EvalContext) -> bool:
        return (not self.left.eval_bool(ctx)) or self.right.eval_bool(ctx)

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"{_paren(self.left)} -> {_paren(self.right)}"


@dataclass(frozen=True)
class Iff(Expr):
    """Boolean-layer equivalence ``<->``."""

    left: Expr
    right: Expr

    def eval(self, ctx: EvalContext) -> bool:
        return self.left.eval_bool(ctx) == self.right.eval_bool(ctx)

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"{_paren(self.left)} <-> {_paren(self.right)}"


_COMPARE_OPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Compare(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _COMPARE_OPS:
            raise PslTypeError(f"unknown comparison operator {self.op!r}")

    def eval(self, ctx: EvalContext) -> bool:
        return bool(_COMPARE_OPS[self.op](self.left.eval(ctx), self.right.eval(ctx)))

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"{_paren(self.left)} {self.op} {_paren(self.right)}"


_ARITH_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a // b if isinstance(a, int) and isinstance(b, int) else a / b,
    "%": lambda a, b: a % b,
}


@dataclass(frozen=True)
class Arith(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _ARITH_OPS:
            raise PslTypeError(f"unknown arithmetic operator {self.op!r}")

    def eval(self, ctx: EvalContext) -> Any:
        return _ARITH_OPS[self.op](self.left.eval(ctx), self.right.eval(ctx))

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"{_paren(self.left)} {self.op} {_paren(self.right)}"


@dataclass(frozen=True)
class Index(Expr):
    """Bit selection ``v[i]`` on a BitVector value."""

    base: Expr
    index: Expr

    def eval(self, ctx: EvalContext) -> Any:
        vector = self.base.eval(ctx)
        position = self.index.eval(ctx)
        if not isinstance(vector, BitVector):
            raise PslTypeError(f"cannot index into {vector!r}")
        return bool(int(vector[int(position)]))

    def variables(self) -> frozenset[str]:
        return self.base.variables() | self.index.variables()

    def __str__(self) -> str:
        return f"{_paren(self.base)}[{self.index}]"


#: Boolean-layer built-in functions and their arities (min, max).
BUILTIN_ARITIES: Dict[str, tuple[int, int]] = {
    "prev": (1, 2),
    "next": (1, 1),
    "rose": (1, 1),
    "fell": (1, 1),
    "stable": (1, 1),
    "countones": (1, 1),
    "onehot": (1, 1),
    "onehot0": (1, 1),
    "isunknown": (1, 1),
}


@dataclass(frozen=True)
class Func(Expr):
    """A PSL Boolean-layer built-in function call.

    ``prev(e [, n])`` -- value of ``e`` n cycles ago (default 1);
    ``next(e)`` -- value one cycle ahead (usable where lookahead exists);
    ``rose/fell/stable`` -- edge detection against the previous cycle;
    ``countones/onehot/onehot0`` -- BitVector population checks;
    ``isunknown`` -- True when the signal is absent from the letter.
    """

    name: str
    args: Tuple[Expr, ...]

    def __post_init__(self):
        if self.name not in BUILTIN_ARITIES:
            raise PslTypeError(f"unknown built-in function {self.name!r}")
        low, high = BUILTIN_ARITIES[self.name]
        if not low <= len(self.args) <= high:
            raise PslTypeError(
                f"{self.name}() takes {low}..{high} arguments, got {len(self.args)}"
            )

    def eval(self, ctx: EvalContext) -> Any:
        name = self.name
        if name == "prev":
            depth = 1
            if len(self.args) == 2:
                depth = int(self.args[1].eval(ctx))
            if not ctx.has(-depth):
                raise PslEvaluationError(f"prev({depth}) before start of trace")
            return self.args[0].eval(ctx.at(ctx.position - depth))
        if name == "next":
            if not ctx.has(1):
                raise PslEvaluationError("next() at end of trace")
            return self.args[0].eval(ctx.at(ctx.position + 1))
        if name in ("rose", "fell", "stable"):
            current = self.args[0].eval(ctx)
            if not ctx.has(-1):
                # First cycle: rose/fell are false, stable is false (LRM:
                # built-ins comparing against a non-existent previous
                # cycle yield false).
                return False
            previous = self.args[0].eval(ctx.at(ctx.position - 1))
            if name == "rose":
                return as_bool(current) and not as_bool(previous)
            if name == "fell":
                return (not as_bool(current)) and as_bool(previous)
            return current == previous
        if name == "countones":
            vector = self.args[0].eval(ctx)
            if isinstance(vector, BitVector):
                return vector.count_ones()
            return bin(int(vector)).count("1")
        if name == "onehot":
            vector = self.args[0].eval(ctx)
            if isinstance(vector, BitVector):
                return vector.is_onehot()
            return bin(int(vector)).count("1") == 1
        if name == "onehot0":
            vector = self.args[0].eval(ctx)
            if isinstance(vector, BitVector):
                return vector.is_onehot0()
            return bin(int(vector)).count("1") <= 1
        if name == "isunknown":
            argument = self.args[0]
            if isinstance(argument, Var):
                return argument.name not in ctx.letter()
            try:
                argument.eval(ctx)
                return False
            except PslEvaluationError:
                return True
        raise PslTypeError(f"unknown built-in {name!r}")

    def variables(self) -> frozenset[str]:
        names: frozenset[str] = frozenset()
        for argument in self.args:
            names |= argument.variables()
        return names

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


def _paren(expression: Expr) -> str:
    if isinstance(expression, (Var, Const, Func, Index, Not)):
        return str(expression)
    return f"({expression})"


# ---------------------------------------------------------------------------
# Temporal layer: SEREs
# ---------------------------------------------------------------------------


class Sere:
    """Base class of Sequential Extended Regular Expressions."""

    def variables(self) -> frozenset[str]:
        raise NotImplementedError

    # sugar

    def then(self, other: "SereLike") -> "SereConcat":
        """Concatenation ``;``."""
        return SereConcat((self, sere(other)))

    def fuse(self, other: "SereLike") -> "SereFusion":
        """Fusion ``:`` (overlapping concatenation)."""
        return SereFusion(self, sere(other))

    def alt(self, other: "SereLike") -> "SereOr":
        """Alternation ``|``."""
        return SereOr(self, sere(other))

    def repeat(self, low: int = 0, high: Optional[int] = INFINITY) -> "SereRepeat":
        """Consecutive repetition ``[*low:high]``."""
        return SereRepeat(self, low, high)

    def plus(self) -> "SereRepeat":
        """``[+]`` = one or more repetitions."""
        return SereRepeat(self, 1, INFINITY)

    def star(self) -> "SereRepeat":
        """``[*]`` = zero or more repetitions."""
        return SereRepeat(self, 0, INFINITY)


SereLike = Union[Sere, Expr, bool, str]


def sere(value: SereLike) -> Sere:
    """Coerce Python values into SEREs (signal names become variables)."""
    if isinstance(value, Sere):
        return value
    if isinstance(value, Expr):
        return SereBool(value)
    if isinstance(value, bool):
        return SereBool(Const(value))
    if isinstance(value, str):
        return SereBool(Var(value))
    raise PslTypeError(f"cannot interpret {value!r} as a SERE")


@dataclass(frozen=True)
class SereBool(Sere):
    """A single-cycle Boolean step."""

    expr: Expr

    def variables(self) -> frozenset[str]:
        return self.expr.variables()

    def __str__(self) -> str:
        return str(self.expr)


@dataclass(frozen=True)
class SereConcat(Sere):
    """``r1 ; r2 ; ...`` -- back-to-back matching."""

    parts: Tuple[Sere, ...]

    def variables(self) -> frozenset[str]:
        names: frozenset[str] = frozenset()
        for part in self.parts:
            names |= part.variables()
        return names

    def __str__(self) -> str:
        return "{" + " ; ".join(str(p) for p in self.parts) + "}"


@dataclass(frozen=True)
class SereFusion(Sere):
    """``r1 : r2`` -- the last cycle of r1 is the first cycle of r2."""

    left: Sere
    right: Sere

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"{{{self.left} : {self.right}}}"


@dataclass(frozen=True)
class SereOr(Sere):
    """``r1 | r2`` -- either matches."""

    left: Sere
    right: Sere

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"{{{self.left} | {self.right}}}"


@dataclass(frozen=True)
class SereAnd(Sere):
    """``r1 && r2`` (length-matching) or ``r1 & r2`` (non-length-matching)."""

    left: Sere
    right: Sere
    length_matching: bool = True

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        op = "&&" if self.length_matching else "&"
        return f"{{{self.left} {op} {self.right}}}"


@dataclass(frozen=True)
class SereRepeat(Sere):
    """Consecutive repetition ``r[*low:high]`` (high=None means unbounded)."""

    body: Sere
    low: int = 0
    high: Optional[int] = INFINITY

    def __post_init__(self):
        if self.low < 0:
            raise PslTypeError("repetition lower bound must be >= 0")
        if self.high is not None and self.high < self.low:
            raise PslTypeError("repetition upper bound below lower bound")

    def variables(self) -> frozenset[str]:
        return self.body.variables()

    def __str__(self) -> str:
        if self.low == 0 and self.high is None:
            suffix = "[*]"
        elif self.low == 1 and self.high is None:
            suffix = "[+]"
        elif self.high == self.low:
            suffix = f"[*{self.low}]"
        elif self.high is None:
            suffix = f"[*{self.low}:inf]"
        else:
            suffix = f"[*{self.low}:{self.high}]"
        return f"{self.body}{suffix}"


@dataclass(frozen=True)
class SereGoto(Sere):
    """Goto repetition ``b[->low:high]``: skip non-b cycles, end on the
    (low..high)-th occurrence of b."""

    expr: Expr
    low: int = 1
    high: Optional[int] = None  # None = same as low

    def __post_init__(self):
        if self.low < 1:
            raise PslTypeError("goto repetition needs low >= 1")
        if self.high is not None and self.high < self.low:
            raise PslTypeError("goto repetition upper bound below lower bound")

    def variables(self) -> frozenset[str]:
        return self.expr.variables()

    def __str__(self) -> str:
        if self.high is None or self.high == self.low:
            return f"{_paren(self.expr)}[->{self.low}]"
        return f"{_paren(self.expr)}[->{self.low}:{self.high}]"


@dataclass(frozen=True)
class SereNonConsec(Sere):
    """Non-consecutive repetition ``b[=low:high]``: like goto but the
    match may extend past the last occurrence with non-b cycles."""

    expr: Expr
    low: int = 1
    high: Optional[int] = None

    def __post_init__(self):
        if self.low < 0:
            raise PslTypeError("non-consecutive repetition needs low >= 0")
        if self.high is not None and self.high < self.low:
            raise PslTypeError("non-consecutive repetition bounds inverted")

    def variables(self) -> frozenset[str]:
        return self.expr.variables()

    def __str__(self) -> str:
        if self.high is None or self.high == self.low:
            return f"{_paren(self.expr)}[={self.low}]"
        return f"{_paren(self.expr)}[={self.low}:{self.high}]"


def sere_within(inner: SereLike, outer: SereLike) -> SereAnd:
    """``{r1} within {r2}`` == ``{[*]; r1; [*]} && {r2}`` (LRM sugar)."""
    padded = SereConcat(
        (SereRepeat(SereBool(TRUE), 0, INFINITY), sere(inner), SereRepeat(SereBool(TRUE), 0, INFINITY))
    )
    return SereAnd(padded, sere(outer), length_matching=True)


# ---------------------------------------------------------------------------
# Temporal layer: FL formulas
# ---------------------------------------------------------------------------


class Formula:
    """Base class of Foundation Language formulas."""

    def variables(self) -> frozenset[str]:
        raise NotImplementedError

    # sugar

    def and_(self, other: "Formula") -> "FlAnd":
        return FlAnd(self, other)

    def or_(self, other: "Formula") -> "FlOr":
        return FlOr(self, other)

    def implies(self, other: "Formula") -> "FlImplies":
        return FlImplies(self, other)


@dataclass(frozen=True)
class FlBool(Formula):
    expr: Expr

    def variables(self) -> frozenset[str]:
        return self.expr.variables()

    def __str__(self) -> str:
        return str(self.expr)


@dataclass(frozen=True)
class FlNot(Formula):
    operand: Formula

    def variables(self) -> frozenset[str]:
        return self.operand.variables()

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True)
class FlAnd(Formula):
    left: Formula
    right: Formula

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"({self.left}) && ({self.right})"


@dataclass(frozen=True)
class FlOr(Formula):
    left: Formula
    right: Formula

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"({self.left}) || ({self.right})"


@dataclass(frozen=True)
class FlImplies(Formula):
    left: Formula
    right: Formula

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"({self.left}) -> ({self.right})"


@dataclass(frozen=True)
class FlIff(Formula):
    left: Formula
    right: Formula

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"({self.left}) <-> ({self.right})"


@dataclass(frozen=True)
class FlNext(Formula):
    """``next[n] f`` (weak) / ``next![n] f`` (strong)."""

    operand: Formula
    strong: bool = False
    count: int = 1

    def __post_init__(self):
        if self.count < 0:
            raise PslTypeError("next count must be >= 0")

    def variables(self) -> frozenset[str]:
        return self.operand.variables()

    def __str__(self) -> str:
        bang = "!" if self.strong else ""
        if self.count == 1:
            return f"next{bang} ({self.operand})"
        return f"next{bang}[{self.count}] ({self.operand})"


@dataclass(frozen=True)
class FlNextA(Formula):
    """``next_a[i:j] f`` -- f at *all* cycles i..j from now."""

    operand: Formula
    low: int
    high: int
    strong: bool = False

    def variables(self) -> frozenset[str]:
        return self.operand.variables()

    def __str__(self) -> str:
        bang = "!" if self.strong else ""
        return f"next_a{bang}[{self.low}:{self.high}] ({self.operand})"


@dataclass(frozen=True)
class FlNextE(Formula):
    """``next_e[i:j] f`` -- f at *some* cycle i..j from now."""

    operand: Formula
    low: int
    high: int
    strong: bool = False

    def variables(self) -> frozenset[str]:
        return self.operand.variables()

    def __str__(self) -> str:
        bang = "!" if self.strong else ""
        return f"next_e{bang}[{self.low}:{self.high}] ({self.operand})"


@dataclass(frozen=True)
class FlNextEvent(Formula):
    """``next_event(b)[n](f)`` -- f at the n-th future cycle where b holds."""

    trigger: Expr
    operand: Formula
    count: int = 1
    strong: bool = False

    def __post_init__(self):
        if self.count < 1:
            raise PslTypeError("next_event count must be >= 1")

    def variables(self) -> frozenset[str]:
        return self.trigger.variables() | self.operand.variables()

    def __str__(self) -> str:
        bang = "!" if self.strong else ""
        if self.count == 1:
            return f"next_event{bang}({self.trigger})({self.operand})"
        return f"next_event{bang}({self.trigger})[{self.count}]({self.operand})"


@dataclass(frozen=True)
class FlAlways(Formula):
    """``always f`` -- f at every cycle.  The paper's temporal operator A."""

    operand: Formula

    def variables(self) -> frozenset[str]:
        return self.operand.variables()

    def __str__(self) -> str:
        return f"always ({self.operand})"


@dataclass(frozen=True)
class FlNever(Formula):
    """``never f`` -- f at no cycle."""

    operand: Formula

    def variables(self) -> frozenset[str]:
        return self.operand.variables()

    def __str__(self) -> str:
        return f"never ({self.operand})"


@dataclass(frozen=True)
class FlEventually(Formula):
    """``eventually! f`` -- strong liveness.  The paper's operator E.

    This is exactly the kind of property "that cannot be verified using
    simulation which requires using formal verification techniques such
    as model checking" (paper Section 4).
    """

    operand: Formula

    def variables(self) -> frozenset[str]:
        return self.operand.variables()

    def __str__(self) -> str:
        return f"eventually! ({self.operand})"


@dataclass(frozen=True)
class FlUntil(Formula):
    """``f until g`` family.  The paper's operator U.

    ``strong`` adds the obligation that g eventually occurs (``until!``);
    ``inclusive`` keeps f required at the cycle where g holds
    (``until_`` / ``until!_``).
    """

    left: Formula
    right: Formula
    strong: bool = False
    inclusive: bool = False

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        bang = "!" if self.strong else ""
        underscore = "_" if self.inclusive else ""
        return f"({self.left}) until{bang}{underscore} ({self.right})"


@dataclass(frozen=True)
class FlBefore(Formula):
    """``f before g`` family: f must occur before g does."""

    left: Formula
    right: Formula
    strong: bool = False
    inclusive: bool = False

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        bang = "!" if self.strong else ""
        underscore = "_" if self.inclusive else ""
        return f"({self.left}) before{bang}{underscore} ({self.right})"


@dataclass(frozen=True)
class FlSere(Formula):
    """A SERE used as a formula: ``{r}`` (weak) or ``{r}!`` (strong)."""

    sere: Sere
    strong: bool = False

    def variables(self) -> frozenset[str]:
        return self.sere.variables()

    def __str__(self) -> str:
        return f"{{{self.sere}}}{'!' if self.strong else ''}"


@dataclass(frozen=True)
class FlSuffixImpl(Formula):
    """Suffix implication ``{r} |-> f`` (overlapping) / ``{r} |=> f``.

    Every tight match of ``r`` obliges ``f`` starting at the match's
    last cycle (``|->``) or the cycle after it (``|=>``).
    """

    antecedent: Sere
    consequent: Formula
    overlapping: bool = True

    def variables(self) -> frozenset[str]:
        return self.antecedent.variables() | self.consequent.variables()

    def __str__(self) -> str:
        arrow = "|->" if self.overlapping else "|=>"
        return f"{{{self.antecedent}}} {arrow} ({self.consequent})"


@dataclass(frozen=True)
class FlAbort(Formula):
    """``f abort b`` -- obligations of f are discharged when b occurs."""

    operand: Formula
    condition: Expr

    def variables(self) -> frozenset[str]:
        return self.operand.variables() | self.condition.variables()

    def __str__(self) -> str:
        return f"({self.operand}) abort ({self.condition})"


@dataclass(frozen=True)
class FlClocked(Formula):
    """``f @ clk`` -- evaluate f on the cycles where ``clk`` holds.

    The paper's modified sequence diagrams attach a clock to each
    action; clocking projects the trace onto the clock's active cycles.
    """

    operand: Formula
    clock: Expr

    def variables(self) -> frozenset[str]:
        return self.operand.variables() | self.clock.variables()

    def __str__(self) -> str:
        return f"({self.operand}) @ ({self.clock})"


# ---------------------------------------------------------------------------
# Verification layer
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Property:
    """A named property: ``property NAME = <formula>;``

    ``report`` carries the paper's "text output ... message displayed in
    case the method fails".
    """

    name: str
    formula: Formula
    report: str = ""

    def variables(self) -> frozenset[str]:
        return self.formula.variables()

    def __str__(self) -> str:
        return f"property {self.name} = {self.formula};"


class DirectiveKind:
    """The four verification directives of the PSL verification layer."""

    ASSERT = "assert"
    ASSUME = "assume"
    RESTRICT = "restrict"
    COVER = "cover"

    ALL = (ASSERT, ASSUME, RESTRICT, COVER)


@dataclass(frozen=True)
class Directive:
    """``assert P;`` / ``assume P;`` / ``restrict {r};`` / ``cover {r};``

    "Verification Directives ... specify how the property will be
    interpreted (assertion, requirement, restriction or assumption)"
    (paper, Section 2.1.2).
    """

    kind: str
    prop: Property

    def __post_init__(self):
        if self.kind not in DirectiveKind.ALL:
            raise PslTypeError(f"unknown directive kind {self.kind!r}")

    @property
    def name(self) -> str:
        return self.prop.name

    def variables(self) -> frozenset[str]:
        return self.prop.variables()

    def __str__(self) -> str:
        return f"{self.kind} {self.prop.name};"


class VUnit:
    """A verification unit: "a compact way to include several properties
    together.  The embedded class includes several operations to
    add/remove and update the unit's list of properties." """

    def __init__(self, name: str, directives: Sequence[Directive] = ()):
        self.name = name
        self._directives: list[Directive] = list(directives)

    @property
    def directives(self) -> Tuple[Directive, ...]:
        return tuple(self._directives)

    def add(self, directive: Directive) -> None:
        if any(d.name == directive.name for d in self._directives):
            raise PslTypeError(
                f"vunit {self.name!r} already contains {directive.name!r}"
            )
        self._directives.append(directive)

    def remove(self, name: str) -> Directive:
        for position, directive in enumerate(self._directives):
            if directive.name == name:
                return self._directives.pop(position)
        raise KeyError(name)

    def update(self, name: str, new_property: Property) -> None:
        for position, directive in enumerate(self._directives):
            if directive.name == name:
                self._directives[position] = Directive(
                    directive.kind, new_property
                )
                return
        raise KeyError(name)

    def get(self, name: str) -> Directive:
        for directive in self._directives:
            if directive.name == name:
                return directive
        raise KeyError(name)

    def asserts(self) -> list[Directive]:
        return [d for d in self._directives if d.kind == DirectiveKind.ASSERT]

    def assumes(self) -> list[Directive]:
        return [d for d in self._directives if d.kind == DirectiveKind.ASSUME]

    def covers(self) -> list[Directive]:
        return [d for d in self._directives if d.kind == DirectiveKind.COVER]

    def restricts(self) -> list[Directive]:
        return [d for d in self._directives if d.kind == DirectiveKind.RESTRICT]

    def variables(self) -> frozenset[str]:
        names: frozenset[str] = frozenset()
        for directive in self._directives:
            names |= directive.variables()
        return names

    def __len__(self) -> int:
        return len(self._directives)

    def __iter__(self):
        return iter(self._directives)

    def __str__(self) -> str:
        body = "\n".join(f"  {d}" for d in self._directives)
        return f"vunit {self.name} {{\n{body}\n}}"


# Convenience constructors mirroring PSL's surface syntax --------------------


def always(f: Formula | Expr | Sere) -> FlAlways:
    return FlAlways(_formula(f))


def never(f: Formula | Expr | Sere) -> FlNever:
    return FlNever(_formula(f))


def eventually(f: Formula | Expr | Sere) -> FlEventually:
    return FlEventually(_formula(f))


def next_(f: Formula | Expr, n: int = 1, strong: bool = False) -> FlNext:
    return FlNext(_formula(f), strong=strong, count=n)


def strong_next(f: Formula | Expr, n: int = 1) -> FlNext:
    return FlNext(_formula(f), strong=True, count=n)


def until(left: Formula | Expr, right: Formula | Expr, strong: bool = False) -> FlUntil:
    return FlUntil(_formula(left), _formula(right), strong=strong)


def suffix_implication(
    antecedent: SereLike, consequent: Formula | Expr | Sere, overlapping: bool = False
) -> FlSuffixImpl:
    return FlSuffixImpl(sere(antecedent), _formula(consequent), overlapping=overlapping)


def _formula(value: Formula | Expr | Sere | str | bool) -> Formula:
    if isinstance(value, Formula):
        return value
    if isinstance(value, Expr):
        return FlBool(value)
    if isinstance(value, Sere):
        return FlSere(value)
    if isinstance(value, str):
        return FlBool(Var(value))
    if isinstance(value, bool):
        return FlBool(Const(value))
    raise PslTypeError(f"cannot interpret {value!r} as a formula")
