"""The paper's typed PSL Boolean layer embedding.

Section 2.1.2: "The embedding of the PSL Boolean layer mainly includes:
(1) Expression type class includes the basic 5 types: Boolean, PSLBit,
PSLBitVector, Numeric and String.  Both Boolean and String types are
directly inherited from the ASM's AsmL.Boolean and AsmL.String ...
(3) PSL Built Functions ... a method that provides the previous values
of a variable (e.g., prev()) and a method that provides the future
values of a variable (e.g., next())."

These classes wrap runtime *values* flowing through assertion monitors
(as opposed to :mod:`repro.psl.ast_nodes`, which is the expression
syntax).  A :class:`SignalHistory` records a signal over cycles and
provides the ``prev()``/``next()`` accessors the paper lists.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..asm.types import Bit, BitVector
from .errors import PslEvaluationError, PslTypeError


class PslType:
    """Common base of the five Boolean-layer value types."""

    type_name = "psl_type"

    def __init__(self, value: Any):
        self._value = self._validate(value)

    def _validate(self, value: Any) -> Any:
        return value

    @property
    def value(self) -> Any:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PslType):
            return self.type_name == other.type_name and self._value == other._value
        return self._value == other

    def __hash__(self) -> int:
        return hash((self.type_name, self._value))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._value!r})"


class PslBoolean(PslType):
    """PSL Boolean, inherited from AsmL.Boolean (a Python bool here)."""

    type_name = "boolean"

    def _validate(self, value: Any) -> bool:
        if isinstance(value, PslBoolean):
            return value.value
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        raise PslTypeError(f"not a Boolean: {value!r}")

    def __bool__(self) -> bool:
        return self._value

    def land(self, other: "PslBoolean") -> "PslBoolean":
        return PslBoolean(self._value and PslBoolean(other).value)

    def lor(self, other: "PslBoolean") -> "PslBoolean":
        return PslBoolean(self._value or PslBoolean(other).value)

    def lnot(self) -> "PslBoolean":
        return PslBoolean(not self._value)

    def implies(self, other: "PslBoolean") -> "PslBoolean":
        """The PSL Boolean-layer implication operator."""
        return PslBoolean((not self._value) or PslBoolean(other).value)

    def iff(self, other: "PslBoolean") -> "PslBoolean":
        """The PSL Boolean-layer equivalence operator."""
        return PslBoolean(self._value == PslBoolean(other).value)


class PslBit(PslType):
    """A single bit (0/1), with bitwise algebra via :class:`Bit`."""

    type_name = "bit"

    def _validate(self, value: Any) -> Bit:
        if isinstance(value, PslBit):
            return value.value
        if isinstance(value, Bit):
            return value
        return Bit(value)

    def __bool__(self) -> bool:
        return bool(self._value)

    def band(self, other: "PslBit") -> "PslBit":
        return PslBit(self._value & PslBit(other).value)

    def bor(self, other: "PslBit") -> "PslBit":
        return PslBit(self._value | PslBit(other).value)

    def bxor(self, other: "PslBit") -> "PslBit":
        return PslBit(self._value ^ PslBit(other).value)

    def bnot(self) -> "PslBit":
        return PslBit(~self._value)


class PslBitVector(PslType):
    """A fixed-width bit vector, wrapping :class:`BitVector`."""

    type_name = "bitvector"

    def _validate(self, value: Any) -> BitVector:
        if isinstance(value, PslBitVector):
            return value.value
        if isinstance(value, BitVector):
            return value
        return BitVector(value)

    @property
    def width(self) -> int:
        return self._value.width

    def bit(self, index: int) -> PslBit:
        return PslBit(self._value[index])

    def countones(self) -> "PslNumeric":
        return PslNumeric(self._value.count_ones())

    def onehot(self) -> PslBoolean:
        return PslBoolean(self._value.is_onehot())

    def onehot0(self) -> PslBoolean:
        return PslBoolean(self._value.is_onehot0())

    def concat(self, other: "PslBitVector") -> "PslBitVector":
        return PslBitVector(self._value.concat(PslBitVector(other).value))


class PslNumeric(PslType):
    """Numeric values (unbounded integers, AsmL Integer)."""

    type_name = "numeric"

    def _validate(self, value: Any) -> int:
        if isinstance(value, PslNumeric):
            return value.value
        if isinstance(value, bool):
            raise PslTypeError("Boolean is not Numeric in PSL")
        if isinstance(value, int):
            return value
        if isinstance(value, BitVector):
            return value.to_unsigned()
        raise PslTypeError(f"not Numeric: {value!r}")

    def add(self, other: "PslNumeric") -> "PslNumeric":
        return PslNumeric(self._value + PslNumeric(other).value)

    def sub(self, other: "PslNumeric") -> "PslNumeric":
        return PslNumeric(self._value - PslNumeric(other).value)

    def mul(self, other: "PslNumeric") -> "PslNumeric":
        return PslNumeric(self._value * PslNumeric(other).value)

    def less(self, other: "PslNumeric") -> PslBoolean:
        return PslBoolean(self._value < PslNumeric(other).value)

    def less_equal(self, other: "PslNumeric") -> PslBoolean:
        return PslBoolean(self._value <= PslNumeric(other).value)


class PslString(PslType):
    """PSL String, inherited from AsmL.String (a Python str here)."""

    type_name = "string"

    def _validate(self, value: Any) -> str:
        if isinstance(value, PslString):
            return value.value
        if isinstance(value, str):
            return value
        raise PslTypeError(f"not a String: {value!r}")

    def concat(self, other: "PslString") -> "PslString":
        return PslString(self._value + PslString(other).value)


def coerce(value: Any) -> PslType:
    """Wrap a raw Python/ASM value in the matching PSL type."""
    if isinstance(value, PslType):
        return value
    if isinstance(value, bool):
        return PslBoolean(value)
    if isinstance(value, Bit):
        return PslBit(value)
    if isinstance(value, BitVector):
        return PslBitVector(value)
    if isinstance(value, int):
        return PslNumeric(value)
    if isinstance(value, str):
        return PslString(value)
    raise PslTypeError(f"no PSL type for {value!r}")


class SignalHistory:
    """A signal's value over cycles with the paper's built-in accessors.

    The paper distinguishes "a method that provides the previous values
    of a variable (e.g., prev()) and a method that provides the future
    values of a variable (e.g., next())".  ``next()`` is only available
    when the history was recorded ahead of the cursor (model-checking
    traces); online monitors only use ``prev``-family accessors.
    """

    def __init__(self, name: str):
        self.name = name
        self._values: List[Any] = []
        self._cursor = -1

    # -- recording -------------------------------------------------------------

    def record(self, value: Any) -> None:
        """Append the value for the next cycle and move the cursor to it."""
        self._values.append(value)
        self._cursor = len(self._values) - 1

    def load(self, values: List[Any]) -> None:
        """Install a complete pre-recorded trace (cursor at cycle 0)."""
        self._values = list(values)
        self._cursor = 0 if values else -1

    def seek(self, cycle: int) -> None:
        if not 0 <= cycle < len(self._values):
            raise PslEvaluationError(
                f"cycle {cycle} outside recorded history of {self.name!r}"
            )
        self._cursor = cycle

    # -- the paper's accessors -----------------------------------------------------

    def current(self) -> Any:
        if self._cursor < 0:
            raise PslEvaluationError(f"{self.name!r} has no recorded value yet")
        return self._values[self._cursor]

    def prev(self, cycles: int = 1) -> Any:
        index = self._cursor - cycles
        if index < 0:
            raise PslEvaluationError(
                f"prev({cycles}) of {self.name!r} before start of history"
            )
        return self._values[index]

    def next(self, cycles: int = 1) -> Any:
        index = self._cursor + cycles
        if index >= len(self._values):
            raise PslEvaluationError(
                f"next({cycles}) of {self.name!r} beyond recorded history"
            )
        return self._values[index]

    def rose(self) -> bool:
        if self._cursor < 1:
            return False
        return bool(self.current()) and not bool(self.prev())

    def fell(self) -> bool:
        if self._cursor < 1:
            return False
        return (not bool(self.current())) and bool(self.prev())

    def stable(self) -> bool:
        if self._cursor < 1:
            return False
        return self.current() == self.prev()

    def __len__(self) -> int:
        return len(self._values)
