"""The paper's PSL-in-ASM embedding (Figures 3 and Section 3.1).

Two layers live here:

1. A faithful transcription of the paper's embedding classes:
   :class:`PslSere` is Figure 3's ``PSL_SERE`` (an ASM machine with
   ``m_size``/``m_seq``/``m_cycle``/``m_actualState``/``m_evaluation``
   and an ``Evaluate`` action guarded by ``require m_evaluationState =
   INIT``), :class:`PslSequence`/:class:`PslPropertyAsm`/
   :class:`PslAssertion` follow Section 3.1's recipe -- "Add all the
   Boolean items to the sequences ... Create the property P := S1 OP S2
   ... Define the verification unit as an assertion A that includes the
   above property".

2. The bridge to the FSM explorer: :class:`AssertionProperty` adapts
   any :class:`repro.psl.monitor.Monitor` to the explorer's
   ``StateProperty`` protocol, exposing the paper's two Boolean state
   variables ``P_eval`` / ``P_value`` ("a violated property is detected
   once P_eval = true and P_value = false").
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..asm.collections_ import Seq
from ..asm.machine import AsmMachine, StateVar, action, require
from .ast_nodes import Directive, Formula, Property
from .monitor import Monitor, build_monitor
from .semantics import Verdict


class SereEvaluation(enum.Enum):
    """Figure 3's ``SERE_Evaluation`` status values."""

    NOT_STARTED = "NOT_STARTED"
    INIT = "INIT"
    IN_PROGRESS = "IN_PROGRESS"
    FAILED = "FAILED"
    SUCCEEDED = "SUCCEEDED"


class PslSere(AsmMachine):
    """Figure 3: ``class PSL_SERE`` -- checks "if a sequence is true in a
    certain path".

    The machine walks ``m_seq`` (an AsmL ``Seq of Boolean``) one element
    per evaluation step; the ``m_cycle`` sequence gives, per element,
    the cycle count the element is allowed to take (the paper's
    ``Mtd[5]()`` and ``$`` duration annotations compile into it).
    """

    m_size = StateVar(0, doc="number of elements in the sequence")
    m_seq = StateVar(Seq(), doc="the boolean sequence to check")
    m_cycle = StateVar(Seq(), doc="per-element cycle budgets")
    m_actualState = StateVar(0, doc="index of the element under evaluation")
    m_evaluation = StateVar(
        SereEvaluation.NOT_STARTED, doc="evaluation status (Figure 3)"
    )
    m_evaluationState = StateVar(
        SereEvaluation.NOT_STARTED, doc="activation signal set by the property"
    )

    def __init__(self, name: str | None = None, model=None):
        super().__init__(name=name, model=model)

    # -- construction ------------------------------------------------------

    def add_element(self, value: bool, cycles: int = 1) -> None:
        """``S.AddElement(x)`` from Section 3.1."""
        self.m_seq = self.m_seq.add(bool(value))
        self.m_cycle = self.m_cycle.add(int(cycles))
        self.m_size = len(self.m_seq)

    def init_evaluation(self) -> None:
        """Raise the INIT signal ("activated according to an INIT signal
        that must be set by the property")."""
        self.m_evaluationState = SereEvaluation.INIT
        self.m_actualState = 0
        self.m_evaluation = SereEvaluation.NOT_STARTED

    # -- Figure 3's method, transcribed -----------------------------------------

    @action
    def evaluate(self) -> SereEvaluation:
        """``public Evaluate() as SERE_Evaluation`` (Figure 3)."""
        require(self.m_evaluationState == SereEvaluation.INIT, "needs INIT signal")
        if self.m_actualState >= self.m_size:
            # Walked past the end without failing: the sequence held.
            self.m_evaluation = SereEvaluation.SUCCEEDED
            return SereEvaluation.SUCCEEDED
        if self.m_seq[self.m_actualState] is False:
            self.m_evaluation = SereEvaluation.FAILED
            return SereEvaluation.FAILED
        if self.m_actualState < self.m_size - 1:
            self.m_actualState = self.m_actualState + 1
            self.m_evaluation = SereEvaluation.IN_PROGRESS
            return SereEvaluation.IN_PROGRESS
        self.m_actualState = 0
        self.m_evaluation = SereEvaluation.SUCCEEDED
        return SereEvaluation.SUCCEEDED

    def run_to_completion(self, max_steps: int = 10_000) -> SereEvaluation:
        """Drive ``evaluate`` until it reports FAILED or SUCCEEDED."""
        for _ in range(max_steps):
            status = self.evaluate()
            if status in (SereEvaluation.FAILED, SereEvaluation.SUCCEEDED):
                return status
        return self.m_evaluation


class PslOperator(enum.Enum):
    """Operators allowed between two sequences (Section 3.1)."""

    IMPLICATION = "=>"
    EQUIVALENCE = "<=>"


class PslSequence:
    """Section 3.1's S1/S2: an ordered collection of Boolean items."""

    def __init__(self, name: str):
        self.name = name
        self._items: list[bool] = []

    def add_element(self, item: bool) -> None:
        self._items.append(bool(item))

    @property
    def items(self) -> Tuple[bool, ...]:
        return tuple(self._items)

    def holds(self) -> bool:
        """A sequence of booleans holds when all its items hold."""
        return all(self._items)

    def __len__(self) -> int:
        return len(self._items)


class PslPropertyAsm:
    """``P := S1 OP S2`` (Section 3.1)."""

    def __init__(self, name: str, left: PslSequence, op: PslOperator, right: PslSequence):
        self.name = name
        self.left = left
        self.op = op
        self.right = right

    def evaluate(self) -> bool:
        if self.op is PslOperator.IMPLICATION:
            return (not self.left.holds()) or self.right.holds()
        return self.left.holds() == self.right.holds()

    def evaluate_next(self, steps: int, evaluator: Callable[[], bool]) -> bool:
        """"verify the sequence is true after n states" is defined as
        ``PSL_Property.EvaluateNext(n)`` -- defer to an evaluator after
        ``steps`` states."""
        for _ in range(steps):
            evaluator()
        return self.evaluate()


class PslAssertion(AsmMachine):
    """The verification-unit-as-assertion of Section 3.1.

    Exposes the two Boolean state variables the paper embeds in every
    FSM state: ``P_eval`` and ``P_value``.
    """

    P_eval = StateVar(False, doc="the property can be evaluated in this state")
    P_value = StateVar(True, doc="the property's value in this state")

    def __init__(self, name: str | None = None, model=None):
        super().__init__(name=name, model=model)
        self._properties: list[PslPropertyAsm] = []

    def add(self, prop: PslPropertyAsm) -> None:
        """``A.Add(P)`` from Section 3.1."""
        self._properties.append(prop)

    @property
    def properties(self) -> Tuple[PslPropertyAsm, ...]:
        return tuple(self._properties)

    @action
    def check(self) -> bool:
        """Evaluate all properties; update P_eval / P_value."""
        require(bool(self._properties), "no properties added")
        value = all(p.evaluate() for p in self._properties)
        self.P_eval = True
        self.P_value = value
        return value

    @property
    def violated(self) -> bool:
        """Paper: "a violated property is detected once P_eval = true
        and P_value = false"."""
        return self.P_eval and not self.P_value


# ---------------------------------------------------------------------------
# The explorer bridge
# ---------------------------------------------------------------------------

#: Extracts the letter (signal valuation) a monitor reads from a model.
LetterExtractor = Callable[[Any], Mapping[str, Any]]


def state_extractor(model: Any) -> Mapping[str, Any]:
    """Default extractor: every machine state variable, dot-qualified,
    plus every bare variable name (unambiguous shorthand wins last)."""
    letter: Dict[str, Any] = {}
    for machine_name in sorted(model.machines):
        machine = model.machines[machine_name]
        for var_name, value in machine.state_items():
            letter[f"{machine_name}.{var_name}"] = value
            letter[var_name] = value
    return letter


class AssertionProperty:
    """Adapts a PSL monitor to the explorer's StateProperty protocol.

    Each explored state advances the monitor by one letter extracted
    from the model; the monitor's verdict maps onto the paper's
    ``(P_eval, P_value)`` pair:

    ========================  ======  =======
    verdict                   P_eval  P_value
    ========================  ======  =======
    HOLDS / HOLDS_STRONGLY    True    True
    PENDING                   False   True
    FAILS                     True    False
    ========================  ======  =======
    """

    def __init__(
        self,
        source: Property | Directive | Formula | Monitor,
        extractor: LetterExtractor = state_extractor,
        name: str | None = None,
    ):
        if isinstance(source, Monitor):
            self.monitor = source
        else:
            self.monitor = build_monitor(source, name=name)
        self.name = name or self.monitor.name
        self.extractor = extractor
        self._status: Tuple[bool, bool] = (False, True)

    def reset(self) -> None:
        self.monitor.reset()
        self._status = (False, True)

    def observe(self, model: Any) -> Tuple[bool, bool]:
        letter = self.extractor(model)
        return self.observe_letter(letter)

    def observe_letter(self, letter: Mapping[str, Any]) -> Tuple[bool, bool]:
        """Advance on a pre-extracted letter (the explorer batches the
        extraction when several properties share one extractor)."""
        verdict = self.monitor.step(letter)
        self._status = _verdict_to_bits(verdict)
        return self._status

    def status(self) -> Tuple[bool, bool]:
        return self._status

    def snapshot(self) -> Any:
        # Deliberately excludes the monitor's cycle counter: it counts
        # path length, and keying exploration states on it would split
        # every model state by the depth it was reached at (destroying
        # state merging).  Violations during exploration are located by
        # state, not by cycle.
        return (self.monitor.snapshot(), self._status)

    def restore(self, snap: Any) -> None:
        inner, status = snap
        self.monitor.restore(inner)
        self._status = status


def _verdict_to_bits(verdict: Verdict) -> Tuple[bool, bool]:
    if verdict is Verdict.FAILS:
        return (True, False)
    if verdict is Verdict.PENDING:
        return (False, True)
    return (True, True)
