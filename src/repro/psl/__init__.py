"""Property Specification Language (Accellera PSL 1.01 subset).

Implements the three layers the paper's methodology uses (Section 2.1):
the Boolean layer (typed expressions and built-in functions), the
temporal layer (SEREs and FL formulas with the LRM's four-valued
finite-trace semantics), and the verification layer (directives and
vunits).  The modeling layer is VHDL/Verilog-specific and intentionally
out of scope, exactly as in the paper.

Entry points:

* :func:`parse_formula` / :func:`parse_vunit` -- concrete syntax,
* :func:`verdict` -- four-valued evaluation on a recorded trace,
* :func:`compile_properties` -- build online assertion monitors (the
  table-driven compiled engine by default, the derivative interpreter
  on request) -- the one public construction path,
* :class:`AssertionProperty` -- embed a property into FSM exploration.
"""

from .ast_nodes import (
    FALSE,
    INFINITY,
    TRUE,
    And,
    Arith,
    Compare,
    Const,
    Directive,
    DirectiveKind,
    EvalContext,
    Expr,
    FlAbort,
    FlAlways,
    FlAnd,
    FlBefore,
    FlBool,
    FlClocked,
    FlEventually,
    FlIff,
    FlImplies,
    FlNever,
    FlNext,
    FlNextA,
    FlNextE,
    FlNextEvent,
    FlNot,
    FlOr,
    FlSere,
    FlSuffixImpl,
    FlUntil,
    Formula,
    Func,
    Iff,
    Implies,
    Index,
    Not,
    Or,
    Property,
    Sere,
    SereAnd,
    SereBool,
    SereConcat,
    SereFusion,
    SereGoto,
    SereNonConsec,
    SereOr,
    SereRepeat,
    Var,
    VUnit,
    Xor,
    always,
    eventually,
    never,
    next_,
    sere,
    sere_within,
    strong_next,
    suffix_implication,
    until,
)
from .asm_embedding import (
    AssertionProperty,
    PslAssertion,
    PslOperator,
    PslPropertyAsm,
    PslSequence,
    PslSere,
    SereEvaluation,
    state_extractor,
)
from .boolean_layer import (
    PslBit,
    PslBitVector,
    PslBoolean,
    PslNumeric,
    PslString,
    PslType,
    SignalHistory,
    coerce,
)
from .errors import (
    PslError,
    PslEvaluationError,
    PslParseError,
    PslTypeError,
    PslUnsupportedError,
)
from .compiled import (
    CompiledCover,
    CompiledEventually,
    CompiledInvariant,
    CompiledNeverSere,
    CompiledProperty,
    CompiledSuffixImplication,
    CompiledUntil,
    SereAutomaton,
    clear_compile_caches,
    compile_cache_stats,
    compile_properties,
    compile_property,
    default_engine,
    property_digest,
    set_default_engine,
    shared_automaton,
)
from .monitor import (
    BooleanInvariantMonitor,
    BooleanUntilMonitor,
    CoverMonitor,
    EventuallyMonitor,
    Monitor,
    MonitorReport,
    NeverSereMonitor,
    ReplayMonitor,
    SereTracker,
    SuffixImplicationMonitor,
    build_monitor,
    run_monitor,
)
from .parser import parse_bool, parse_directive, parse_formula, parse_sere, parse_vunit
from .semantics import Evaluator, Verdict, View, satisfies, verdict
from .sere import Matcher, match_ends, tightly_matches

__all__ = [
    # ast
    "FALSE", "INFINITY", "TRUE", "And", "Arith", "Compare", "Const",
    "Directive", "DirectiveKind", "EvalContext", "Expr", "FlAbort",
    "FlAlways", "FlAnd", "FlBefore", "FlBool", "FlClocked", "FlEventually",
    "FlIff", "FlImplies", "FlNever", "FlNext", "FlNextA", "FlNextE",
    "FlNextEvent", "FlNot", "FlOr", "FlSere", "FlSuffixImpl", "FlUntil",
    "Formula", "Func", "Iff", "Implies", "Index", "Not", "Or", "Property",
    "Sere", "SereAnd", "SereBool", "SereConcat", "SereFusion", "SereGoto",
    "SereNonConsec", "SereOr", "SereRepeat", "Var", "VUnit", "Xor",
    "always", "eventually", "never", "next_", "sere", "sere_within",
    "strong_next", "suffix_implication", "until",
    # embedding
    "AssertionProperty", "PslAssertion", "PslOperator", "PslPropertyAsm",
    "PslSequence", "PslSere", "SereEvaluation", "state_extractor",
    # boolean layer
    "PslBit", "PslBitVector", "PslBoolean", "PslNumeric", "PslString",
    "PslType", "SignalHistory", "coerce",
    # errors
    "PslError", "PslEvaluationError", "PslParseError", "PslTypeError",
    "PslUnsupportedError",
    # monitors
    "BooleanInvariantMonitor", "BooleanUntilMonitor", "CoverMonitor",
    "EventuallyMonitor", "Monitor", "MonitorReport", "NeverSereMonitor",
    "ReplayMonitor", "SereTracker", "SuffixImplicationMonitor",
    "build_monitor", "run_monitor",
    # compiled engine
    "CompiledCover", "CompiledEventually", "CompiledInvariant",
    "CompiledNeverSere", "CompiledProperty", "CompiledSuffixImplication",
    "CompiledUntil", "SereAutomaton", "clear_compile_caches",
    "compile_cache_stats", "compile_properties", "compile_property",
    "default_engine", "property_digest", "set_default_engine",
    "shared_automaton",
    # parsing
    "parse_bool", "parse_directive", "parse_formula", "parse_sere",
    "parse_vunit",
    # semantics
    "Evaluator", "Verdict", "View", "satisfies", "verdict",
    # sere
    "Matcher", "match_ends", "tightly_matches",
]
