"""Property Specification Language (Accellera PSL 1.01 subset).

Implements the three layers the paper's methodology uses (Section 2.1):
the Boolean layer (typed expressions and built-in functions), the
temporal layer (SEREs and FL formulas with the LRM's four-valued
finite-trace semantics), and the verification layer (directives and
vunits).  The modeling layer is VHDL/Verilog-specific and intentionally
out of scope, exactly as in the paper.

Entry points:

* :func:`parse_formula` / :func:`parse_vunit` -- concrete syntax,
* :func:`verdict` -- four-valued evaluation on a recorded trace,
* :func:`build_monitor` -- compile to an online assertion monitor,
* :class:`AssertionProperty` -- embed a property into FSM exploration.
"""

from .ast_nodes import (
    FALSE,
    INFINITY,
    TRUE,
    And,
    Arith,
    Compare,
    Const,
    Directive,
    DirectiveKind,
    EvalContext,
    Expr,
    FlAbort,
    FlAlways,
    FlAnd,
    FlBefore,
    FlBool,
    FlClocked,
    FlEventually,
    FlIff,
    FlImplies,
    FlNever,
    FlNext,
    FlNextA,
    FlNextE,
    FlNextEvent,
    FlNot,
    FlOr,
    FlSere,
    FlSuffixImpl,
    FlUntil,
    Formula,
    Func,
    Iff,
    Implies,
    Index,
    Not,
    Or,
    Property,
    Sere,
    SereAnd,
    SereBool,
    SereConcat,
    SereFusion,
    SereGoto,
    SereNonConsec,
    SereOr,
    SereRepeat,
    Var,
    VUnit,
    Xor,
    always,
    eventually,
    never,
    next_,
    sere,
    sere_within,
    strong_next,
    suffix_implication,
    until,
)
from .asm_embedding import (
    AssertionProperty,
    PslAssertion,
    PslOperator,
    PslPropertyAsm,
    PslSequence,
    PslSere,
    SereEvaluation,
    state_extractor,
)
from .boolean_layer import (
    PslBit,
    PslBitVector,
    PslBoolean,
    PslNumeric,
    PslString,
    PslType,
    SignalHistory,
    coerce,
)
from .errors import (
    PslError,
    PslEvaluationError,
    PslParseError,
    PslTypeError,
    PslUnsupportedError,
)
from .monitor import (
    BooleanInvariantMonitor,
    BooleanUntilMonitor,
    CoverMonitor,
    EventuallyMonitor,
    Monitor,
    MonitorReport,
    NeverSereMonitor,
    ReplayMonitor,
    SereTracker,
    SuffixImplicationMonitor,
    build_monitor,
    run_monitor,
)
from .parser import parse_bool, parse_directive, parse_formula, parse_sere, parse_vunit
from .semantics import Evaluator, Verdict, View, satisfies, verdict
from .sere import Matcher, match_ends, tightly_matches

__all__ = [
    # ast
    "FALSE", "INFINITY", "TRUE", "And", "Arith", "Compare", "Const",
    "Directive", "DirectiveKind", "EvalContext", "Expr", "FlAbort",
    "FlAlways", "FlAnd", "FlBefore", "FlBool", "FlClocked", "FlEventually",
    "FlIff", "FlImplies", "FlNever", "FlNext", "FlNextA", "FlNextE",
    "FlNextEvent", "FlNot", "FlOr", "FlSere", "FlSuffixImpl", "FlUntil",
    "Formula", "Func", "Iff", "Implies", "Index", "Not", "Or", "Property",
    "Sere", "SereAnd", "SereBool", "SereConcat", "SereFusion", "SereGoto",
    "SereNonConsec", "SereOr", "SereRepeat", "Var", "VUnit", "Xor",
    "always", "eventually", "never", "next_", "sere", "sere_within",
    "strong_next", "suffix_implication", "until",
    # embedding
    "AssertionProperty", "PslAssertion", "PslOperator", "PslPropertyAsm",
    "PslSequence", "PslSere", "SereEvaluation", "state_extractor",
    # boolean layer
    "PslBit", "PslBitVector", "PslBoolean", "PslNumeric", "PslString",
    "PslType", "SignalHistory", "coerce",
    # errors
    "PslError", "PslEvaluationError", "PslParseError", "PslTypeError",
    "PslUnsupportedError",
    # monitors
    "BooleanInvariantMonitor", "BooleanUntilMonitor", "CoverMonitor",
    "EventuallyMonitor", "Monitor", "MonitorReport", "NeverSereMonitor",
    "ReplayMonitor", "SereTracker", "SuffixImplicationMonitor",
    "build_monitor", "run_monitor",
    # parsing
    "parse_bool", "parse_directive", "parse_formula", "parse_sere",
    "parse_vunit",
    # semantics
    "Evaluator", "Verdict", "View", "satisfies", "verdict",
    # sere
    "Matcher", "match_ends", "tightly_matches",
]
