"""Tokenizer for PSL concrete syntax.

Handles the multi-character operators of the temporal layer (``|->``,
``|=>``, ``[*``, ``[+]``, ``[->``, ``[=``) and merges the strong-operator
suffix ``!`` (and the inclusive suffix ``_``) into the preceding keyword
so the parser sees single tokens like ``until!_`` or ``eventually!``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from .errors import PslParseError

#: Keywords that may carry a strong ``!`` suffix.
STRONG_KEYWORDS = {
    "next",
    "next_a",
    "next_e",
    "next_event",
    "until",
    "before",
    "eventually",
}

#: Keywords that (after an optional ``!``) may carry an inclusive ``_``.
INCLUSIVE_KEYWORDS = {"until", "until!", "before", "before!"}

KEYWORDS = {
    "always",
    "never",
    "eventually!",
    "next",
    "next!",
    "next_a",
    "next_a!",
    "next_e",
    "next_e!",
    "next_event",
    "next_event!",
    "until",
    "until!",
    "until_",
    "until!_",
    "before",
    "before!",
    "before_",
    "before!_",
    "abort",
    "within",
    "assert",
    "assume",
    "restrict",
    "cover",
    "property",
    "sequence",
    "vunit",
    "report",
    "true",
    "false",
    "inf",
    "posedge",
    "negedge",
    "rose",
    "fell",
    "stable",
    "prev",
    "countones",
    "onehot",
    "onehot0",
    "isunknown",
}

#: Longest-match-first operator table.
OPERATORS = [
    "|->",
    "|=>",
    "<->",
    "->",
    "[*",
    "[+]",
    "[->",
    "[=",
    "&&",
    "||",
    "==",
    "!=",
    "<=",
    ">=",
    "..",
    "{",
    "}",
    "[",
    "]",
    "(",
    ")",
    ";",
    ":",
    ",",
    "|",
    "&",
    "!",
    "<",
    ">",
    "=",
    "@",
    "+",
    "-",
    "*",
    "/",
    "%",
    "^",
]

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_.$]*")
_NUMBER = re.compile(r"\d+")
_STRING = re.compile(r'"((?:[^"\\]|\\.)*)"')
_WHITESPACE = re.compile(r"[ \t\r\n]+")
_LINE_COMMENT = re.compile(r"//[^\n]*")
_BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str  # "ident", "keyword", "number", "string", or the operator text
    text: str
    line: int
    column: int

    def is_op(self, *ops: str) -> bool:
        return self.kind == "op" and self.text in ops

    def is_kw(self, *keywords: str) -> bool:
        return self.kind == "keyword" and self.text in keywords

    def __str__(self) -> str:
        return self.text


EOF = Token("eof", "<eof>", 0, 0)


def tokenize(source: str) -> List[Token]:
    """Turn PSL text into a token list (raises :class:`PslParseError`)."""
    tokens: List[Token] = []
    position = 0
    line = 1
    line_start = 0
    length = len(source)

    def location() -> tuple[int, int]:
        return line, position - line_start + 1

    while position < length:
        skipped_something = True
        while skipped_something and position < length:
            skipped_something = False
            for pattern in (_WHITESPACE, _LINE_COMMENT, _BLOCK_COMMENT):
                matched = pattern.match(source, position)
                if matched:
                    skipped = matched.group(0)
                    newlines = skipped.count("\n")
                    if newlines:
                        line += newlines
                        line_start = position + skipped.rfind("\n") + 1
                    position = matched.end()
                    skipped_something = True
                    break
        if position >= length:
            break

        current_line, current_column = location()

        matched = _STRING.match(source, position)
        if matched:
            tokens.append(
                Token("string", matched.group(1), current_line, current_column)
            )
            position = matched.end()
            continue

        matched = _NUMBER.match(source, position)
        if matched:
            tokens.append(
                Token("number", matched.group(0), current_line, current_column)
            )
            position = matched.end()
            continue

        matched = _IDENT.match(source, position)
        if matched:
            word = matched.group(0)
            position = matched.end()
            # Merge a strong "!" suffix (no intervening space).
            if (
                word in STRONG_KEYWORDS
                and position < length
                and source[position] == "!"
            ):
                word += "!"
                position += 1
            # Merge an inclusive "_" suffix.
            if (
                word in INCLUSIVE_KEYWORDS
                and position < length
                and source[position] == "_"
            ):
                word += "_"
                position += 1
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, current_line, current_column))
            continue

        for operator in OPERATORS:
            if source.startswith(operator, position):
                tokens.append(Token("op", operator, current_line, current_column))
                position += len(operator)
                break
        else:
            raise PslParseError(
                f"unexpected character {source[position]!r}",
                current_line,
                current_column,
            )

    return tokens
