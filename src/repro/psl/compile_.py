"""Boolean-layer expression compilation.

The paper compiles PSL (via AsmL) to C# for execution speed; the
equivalent lever here is compiling Boolean-layer ASTs into Python
closures once per monitor instead of interpreting the AST every cycle.
A compiled expression is a function ``(history) -> bool`` where
``history`` is the monitor's letter window (current letter last).

Supported nodes: variables, constants, boolean connectives,
comparisons, arithmetic, and the built-ins ``prev`` (constant depth),
``rose``, ``fell``, ``stable``.  Anything else falls back to the AST
interpreter -- correctness never depends on the compiler.
"""

from __future__ import annotations

from typing import Any, Callable, List, Mapping, Sequence

from .ast_nodes import (
    And,
    Arith,
    Compare,
    Const,
    EvalContext,
    Expr,
    Func,
    Iff,
    Implies,
    Index,
    Not,
    Or,
    Var,
    Xor,
    as_bool,
)
from .errors import PslEvaluationError

History = Sequence[Mapping[str, Any]]
Compiled = Callable[[History], Any]


class _Fallback(Exception):
    """Raised during compilation when a node is unsupported."""


def compile_expr(expression: Expr) -> Compiled:
    """Compile to a closure; falls back to AST interpretation."""
    try:
        return _compile(expression, offset=0)
    except _Fallback:
        def interpret(history: History) -> Any:
            return expression.eval(EvalContext(history, len(history) - 1))

        return interpret


def compile_bool(expression: Expr) -> Callable[[History], bool]:
    """Like :func:`compile_expr` but coerced to bool, never raising on
    missing signals (False instead -- the monitor convention)."""
    inner = compile_expr(expression)

    def evaluate(history: History) -> bool:
        try:
            return as_bool(inner(history))
        except (KeyError, IndexError, PslEvaluationError):
            return False

    return evaluate


def _compile(expression: Expr, offset: int) -> Compiled:
    """``offset`` = how many letters back from the end to read."""
    if isinstance(expression, Const):
        value = expression.value
        return lambda history: value
    if isinstance(expression, Var):
        name = expression.name
        if offset == 0:
            return lambda history: history[-1][name]
        back = offset + 1
        return lambda history: history[-back][name]
    if isinstance(expression, Not):
        operand = _compile(expression.operand, offset)
        return lambda history: not as_bool(operand(history))
    if isinstance(expression, And):
        left = _compile(expression.left, offset)
        right = _compile(expression.right, offset)
        return lambda history: as_bool(left(history)) and as_bool(right(history))
    if isinstance(expression, Or):
        left = _compile(expression.left, offset)
        right = _compile(expression.right, offset)
        return lambda history: as_bool(left(history)) or as_bool(right(history))
    if isinstance(expression, Xor):
        left = _compile(expression.left, offset)
        right = _compile(expression.right, offset)
        return lambda history: as_bool(left(history)) != as_bool(right(history))
    if isinstance(expression, Implies):
        left = _compile(expression.left, offset)
        right = _compile(expression.right, offset)
        return lambda history: (not as_bool(left(history))) or as_bool(right(history))
    if isinstance(expression, Iff):
        left = _compile(expression.left, offset)
        right = _compile(expression.right, offset)
        return lambda history: as_bool(left(history)) == as_bool(right(history))
    if isinstance(expression, Compare):
        left = _compile(expression.left, offset)
        right = _compile(expression.right, offset)
        op = expression.op
        if op == "==":
            return lambda history: left(history) == right(history)
        if op == "!=":
            return lambda history: left(history) != right(history)
        if op == "<":
            return lambda history: left(history) < right(history)
        if op == "<=":
            return lambda history: left(history) <= right(history)
        if op == ">":
            return lambda history: left(history) > right(history)
        return lambda history: left(history) >= right(history)
    if isinstance(expression, Arith):
        left = _compile(expression.left, offset)
        right = _compile(expression.right, offset)
        op = expression.op
        if op == "+":
            return lambda history: left(history) + right(history)
        if op == "-":
            return lambda history: left(history) - right(history)
        if op == "*":
            return lambda history: left(history) * right(history)
        if op == "%":
            return lambda history: left(history) % right(history)
        return lambda history: left(history) // right(history)
    if isinstance(expression, Func):
        return _compile_func(expression, offset)
    if isinstance(expression, Index):
        base = _compile(expression.base, offset)
        index = _compile(expression.index, offset)
        return lambda history: bool(int(base(history)[int(index(history))]))
    raise _Fallback


def _compile_func(expression: Func, offset: int) -> Compiled:
    name = expression.name
    if name == "prev":
        depth = 1
        if len(expression.args) == 2:
            if not isinstance(expression.args[1], Const):
                raise _Fallback
            depth = int(expression.args[1].value)
        return _compile(expression.args[0], offset + depth)
    if name in ("rose", "fell", "stable"):
        current = _compile(expression.args[0], offset)
        previous = _compile(expression.args[0], offset + 1)

        if name == "rose":
            def rose(history: History) -> bool:
                if len(history) < offset + 2:
                    return False
                return as_bool(current(history)) and not as_bool(previous(history))

            return rose
        if name == "fell":
            def fell(history: History) -> bool:
                if len(history) < offset + 2:
                    return False
                return (not as_bool(current(history))) and as_bool(previous(history))

            return fell

        def stable(history: History) -> bool:
            if len(history) < offset + 2:
                return False
            return current(history) == previous(history)

        return stable
    if name == "countones":
        inner = _compile(expression.args[0], offset)

        def countones(history: History) -> int:
            value = inner(history)
            if hasattr(value, "count_ones"):
                return value.count_ones()
            return bin(int(value)).count("1")

        return countones
    if name in ("onehot", "onehot0"):
        inner = _compile(expression.args[0], offset)
        limit_exact = name == "onehot"

        def onehot(history: History) -> bool:
            value = inner(history)
            ones = (
                value.count_ones()
                if hasattr(value, "count_ones")
                else bin(int(value)).count("1")
            )
            return ones == 1 if limit_exact else ones <= 1

        return onehot
    raise _Fallback
