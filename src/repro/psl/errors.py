"""Exceptions raised by the PSL implementation."""

from __future__ import annotations


class PslError(Exception):
    """Base class for PSL errors."""


class PslParseError(PslError):
    """Syntax error while parsing PSL text."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"line {line}:{column}: {message}"
        super().__init__(message)


class PslTypeError(PslError):
    """Type mismatch in the Boolean layer (e.g. bitvector width clash)."""


class PslEvaluationError(PslError):
    """Runtime evaluation failure (unknown signal, prev() before start...)."""


class PslUnsupportedError(PslError):
    """A construct outside the implemented subset (e.g. modeling layer)."""
