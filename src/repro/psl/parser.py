"""Recursive-descent parser for a substantial PSL subset.

Grammar (simplified; precedence low to high):

.. code-block:: text

    vunit        := 'vunit' NAME '{' item* '}'
    item         := property_decl | directive
    property_decl:= 'property' NAME '=' formula [report] ';'
    directive    := ('assert'|'assume'|'restrict'|'cover')
                    (NAME | formula) [report] ';'
    report       := 'report' STRING

    formula      := clocked
    clocked      := aborted ('@' primary_bool)?
    aborted      := iff ('abort' primary_bool)?
    iff          := impl ('<->' impl)*
    impl         := or_f ('->' impl)?            (right associative)
    or_f         := and_f ('||' and_f)*
    and_f        := until_f ('&&' until_f)*
    until_f      := unary (('until'|'until!'|'until_'|'until!_'
                          |'before'|'before!'|'before_'|'before!_') unary)*
    unary        := 'always' unary | 'never' unary | 'eventually!' unary
                  | ('next'|'next!') ('[' NUM ']')? unary
                  | ('next_a'|'next_a!'|'next_e'|'next_e!')
                        '[' NUM (':'|'..') NUM ']' unary
                  | ('next_event'|'next_event!') '(' bool ')'
                        ('[' NUM ']')? '(' formula ')'
                  | sere_block | '(' formula ')' | bool_expr
    sere_block   := '{' sere '}' ('!' | ('|->'|'|=>') unary)?

    sere         := sere_or
    sere_or      := sere_and ('|' sere_and)*
    sere_and     := sere_within (('&&'|'&') sere_within)*
    sere_within  := sere_concat ('within' sere_concat)*
    sere_concat  := sere_fusion (';' sere_fusion)*
    sere_fusion  := sere_rep (':' sere_rep)*
    sere_rep     := sere_prim repeat*
    repeat       := '[*' (NUM ((':'|'..') (NUM|'inf'))?)? ']' | '[+]'
                  | '[->' (NUM ((':'|'..') NUM)?)? ']'
                  | '[=' NUM ((':'|'..') NUM)? ']'
    sere_prim    := '{' sere '}' | bool_expr

Boolean expressions use C-style precedence (``||``, ``&&``, comparison,
additive, multiplicative, unary ``!``/``-``, primary).  ``posedge e`` and
``negedge e`` are sugar for ``rose(e)`` / ``fell(e)``.

Note that inside a formula, ``a && b`` over plain booleans binds at the
Boolean layer -- semantically identical to the FL conjunction, so the
ambiguity is harmless (and resolved the same way by real PSL tools).
"""

from __future__ import annotations

from typing import List, Optional

from .ast_nodes import (
    Arith,
    Compare,
    Const,
    Directive,
    DirectiveKind,
    Expr,
    FlAbort,
    FlAlways,
    FlAnd,
    FlBefore,
    FlBool,
    FlClocked,
    FlEventually,
    FlIff,
    FlImplies,
    FlNever,
    FlNext,
    FlNextA,
    FlNextE,
    FlNextEvent,
    FlNot,
    FlOr,
    FlSere,
    FlSuffixImpl,
    FlUntil,
    Formula,
    Func,
    Index,
    Not,
    Property,
    Sere,
    SereAnd,
    SereBool,
    SereConcat,
    SereFusion,
    SereGoto,
    SereNonConsec,
    SereOr,
    SereRepeat,
    Var,
    VUnit,
    sere_within,
)
from .errors import PslParseError
from .lexer import EOF, Token, tokenize


class Parser:
    """Token-stream parser; use the module-level helpers for one-shots."""

    def __init__(self, source: str):
        self.tokens: List[Token] = tokenize(source)
        self.position = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        index = self.position + ahead
        return self.tokens[index] if index < len(self.tokens) else EOF

    def advance(self) -> Token:
        token = self.peek()
        self.position += 1
        return token

    def expect_op(self, text: str) -> Token:
        token = self.peek()
        if not token.is_op(text):
            raise PslParseError(
                f"expected {text!r}, found {token.text!r}", token.line, token.column
            )
        return self.advance()

    def expect_kw(self, word: str) -> Token:
        token = self.peek()
        if not token.is_kw(word):
            raise PslParseError(
                f"expected {word!r}, found {token.text!r}", token.line, token.column
            )
        return self.advance()

    def expect_ident(self) -> Token:
        token = self.peek()
        if token.kind != "ident":
            raise PslParseError(
                f"expected identifier, found {token.text!r}", token.line, token.column
            )
        return self.advance()

    def expect_number(self) -> int:
        token = self.peek()
        if token.kind != "number":
            raise PslParseError(
                f"expected number, found {token.text!r}", token.line, token.column
            )
        self.advance()
        return int(token.text)

    def at_end(self) -> bool:
        return self.position >= len(self.tokens)

    def _fail(self, message: str) -> PslParseError:
        token = self.peek()
        return PslParseError(message, token.line, token.column)

    # -- verification layer --------------------------------------------------

    def parse_vunit(self) -> VUnit:
        self.expect_kw("vunit")
        name = self.expect_ident().text
        self.expect_op("{")
        unit = VUnit(name)
        named: dict[str, Property] = {}
        counter = 0
        while not self.peek().is_op("}"):
            token = self.peek()
            if token.is_kw("property"):
                prop = self.parse_property_decl()
                named[prop.name] = prop
            elif token.is_kw(*DirectiveKind.ALL):
                kind = self.advance().text
                counter += 1
                prop = self._parse_directive_body(kind, named, counter)
                unit.add(Directive(kind, prop))
            else:
                raise self._fail(f"unexpected token {token.text!r} in vunit")
        self.expect_op("}")
        return unit

    def parse_property_decl(self) -> Property:
        self.expect_kw("property")
        name = self.expect_ident().text
        self.expect_op("=")
        formula = self.parse_formula()
        report = self._maybe_report()
        self.expect_op(";")
        return Property(name, formula, report=report)

    def parse_directive(self) -> Directive:
        token = self.peek()
        if not token.is_kw(*DirectiveKind.ALL):
            raise self._fail(f"expected a directive, found {token.text!r}")
        kind = self.advance().text
        prop = self._parse_directive_body(kind, {}, 1)
        return Directive(kind, prop)

    def _parse_directive_body(
        self, kind: str, named: dict[str, Property], counter: int
    ) -> Property:
        token = self.peek()
        if token.kind == "ident" and self.peek(1).is_op(";"):
            name = self.advance().text
            if name not in named:
                raise self._fail(f"directive references unknown property {name!r}")
            self.expect_op(";")
            return named[name]
        formula = self.parse_formula()
        report = self._maybe_report()
        self.expect_op(";")
        return Property(f"{kind}_{counter}", formula, report=report)

    def _maybe_report(self) -> str:
        if self.peek().is_kw("report"):
            self.advance()
            token = self.peek()
            if token.kind != "string":
                raise self._fail("report needs a string literal")
            self.advance()
            return token.text
        return ""

    # -- FL formulas -------------------------------------------------------------

    def parse_formula(self) -> Formula:
        formula = self._parse_aborted()
        if self.peek().is_op("@"):
            self.advance()
            clock = self._parse_bool_primary_expr()
            formula = FlClocked(formula, clock)
        return formula

    def _parse_aborted(self) -> Formula:
        formula = self._parse_iff()
        while self.peek().is_kw("abort"):
            self.advance()
            condition = self._parse_bool_primary_expr()
            formula = FlAbort(formula, condition)
        return formula

    def _parse_iff(self) -> Formula:
        left = self._parse_impl()
        while self.peek().is_op("<->"):
            self.advance()
            right = self._parse_impl()
            left = FlIff(left, right)
        return left

    def _parse_impl(self) -> Formula:
        left = self._parse_or()
        if self.peek().is_op("->"):
            self.advance()
            right = self._parse_impl()  # right associative
            return FlImplies(left, right)
        return left

    def _parse_or(self) -> Formula:
        left = self._parse_and()
        while self.peek().is_op("||"):
            self.advance()
            left = FlOr(left, self._parse_and())
        return left

    def _parse_and(self) -> Formula:
        left = self._parse_until()
        while self.peek().is_op("&&"):
            self.advance()
            left = FlAnd(left, self._parse_until())
        return left

    _UNTIL_KWS = (
        "until",
        "until!",
        "until_",
        "until!_",
        "before",
        "before!",
        "before_",
        "before!_",
    )

    def _parse_until(self) -> Formula:
        left = self._parse_unary()
        while self.peek().is_kw(*self._UNTIL_KWS):
            word = self.advance().text
            right = self._parse_unary()
            strong = "!" in word
            inclusive = word.endswith("_")
            if word.startswith("until"):
                left = FlUntil(left, right, strong=strong, inclusive=inclusive)
            else:
                left = FlBefore(left, right, strong=strong, inclusive=inclusive)
        return left

    def _parse_unary(self) -> Formula:
        token = self.peek()
        if token.is_kw("always"):
            self.advance()
            return FlAlways(self._parse_unary_chain())
        if token.is_kw("never"):
            self.advance()
            return FlNever(self._parse_unary_chain())
        if token.is_kw("eventually!"):
            self.advance()
            return FlEventually(self._parse_unary_chain())
        if token.is_kw("next", "next!"):
            self.advance()
            count = 1
            if self.peek().is_op("["):
                self.advance()
                count = self.expect_number()
                self.expect_op("]")
            return FlNext(
                self._parse_unary_chain(), strong=token.text.endswith("!"), count=count
            )
        if token.is_kw("next_a", "next_a!", "next_e", "next_e!"):
            self.advance()
            self.expect_op("[")
            low = self.expect_number()
            self._expect_range_sep()
            high = self.expect_number()
            self.expect_op("]")
            operand = self._parse_unary_chain()
            strong = token.text.endswith("!")
            if token.text.startswith("next_a"):
                return FlNextA(operand, low, high, strong=strong)
            return FlNextE(operand, low, high, strong=strong)
        if token.is_kw("next_event", "next_event!"):
            self.advance()
            self.expect_op("(")
            trigger = self.parse_bool_expr()
            self.expect_op(")")
            count = 1
            if self.peek().is_op("["):
                self.advance()
                count = self.expect_number()
                self.expect_op("]")
            self.expect_op("(")
            operand = self.parse_formula()
            self.expect_op(")")
            return FlNextEvent(
                trigger, operand, count=count, strong=token.text.endswith("!")
            )
        if token.is_op("{"):
            return self._parse_sere_block()
        if token.is_op("!"):
            # Could be FL negation; parse the boolean expression first and
            # fall back to FL negation when a temporal operand follows.
            if self._looks_temporal(1):
                self.advance()
                return FlNot(self._parse_unary())
            return FlBool(self.parse_bool_expr())
        if token.is_op("("):
            # Parenthesised formula or boolean expression: try boolean
            # first (it covers pure-boolean parens), fall back to FL.
            saved = self.position
            try:
                expression = self.parse_bool_expr()
                return FlBool(expression)
            except PslParseError:
                self.position = saved
            self.advance()  # '('
            inner = self.parse_formula()
            self.expect_op(")")
            return inner
        # A boolean leaf.  The greedy boolean parser may swallow a
        # '&&'/'||' whose right operand turns out to be temporal (e.g.
        # "p && next q"); back off to the comparison level in that case
        # and let the FL connectives take over.
        saved = self.position
        try:
            return FlBool(self.parse_bool_expr())
        except PslParseError:
            self.position = saved
            return FlBool(self._parse_b_compare())

    def _parse_unary_chain(self) -> Formula:
        """Operand of a unary temporal operator: extends right as far as
        possible (PSL convention: ``always a -> b`` is ``always (a -> b)``)."""
        return self._parse_aborted()

    def _looks_temporal(self, ahead: int) -> bool:
        token = self.peek(ahead)
        return token.is_kw(
            "always",
            "never",
            "eventually!",
            "next",
            "next!",
            "next_a",
            "next_a!",
            "next_e",
            "next_e!",
            "next_event",
            "next_event!",
        ) or token.is_op("{")

    def _parse_sere_block(self) -> Formula:
        self.expect_op("{")
        inner = self.parse_sere()
        self.expect_op("}")
        token = self.peek()
        if token.is_op("|->", "|=>"):
            self.advance()
            consequent = self._parse_unary()
            return FlSuffixImpl(inner, consequent, overlapping=token.text == "|->")
        if token.is_op("!"):
            self.advance()
            return FlSere(inner, strong=True)
        return FlSere(inner, strong=False)

    def _expect_range_sep(self) -> None:
        token = self.peek()
        if token.is_op(":") or token.is_op(".."):
            self.advance()
            return
        raise self._fail(f"expected ':' or '..', found {token.text!r}")

    # -- SEREs -----------------------------------------------------------------

    def parse_sere(self) -> Sere:
        return self._parse_sere_or()

    def _parse_sere_or(self) -> Sere:
        left = self._parse_sere_and()
        while self.peek().is_op("|"):
            self.advance()
            left = SereOr(left, self._parse_sere_and())
        return left

    def _parse_sere_and(self) -> Sere:
        left = self._parse_sere_within()
        while self.peek().is_op("&&", "&"):
            operator = self.advance().text
            right = self._parse_sere_within()
            left = SereAnd(left, right, length_matching=operator == "&&")
        return left

    def _parse_sere_within(self) -> Sere:
        left = self._parse_sere_concat()
        while self.peek().is_kw("within"):
            self.advance()
            outer = self._parse_sere_concat()
            left = sere_within(left, outer)
        return left

    def _parse_sere_concat(self) -> Sere:
        parts = [self._parse_sere_fusion()]
        while self.peek().is_op(";"):
            self.advance()
            parts.append(self._parse_sere_fusion())
        if len(parts) == 1:
            return parts[0]
        return SereConcat(tuple(parts))

    def _parse_sere_fusion(self) -> Sere:
        left = self._parse_sere_repeat()
        while self.peek().is_op(":"):
            self.advance()
            left = SereFusion(left, self._parse_sere_repeat())
        return left

    def _parse_sere_repeat(self) -> Sere:
        base = self._parse_sere_primary()
        while True:
            token = self.peek()
            if token.is_op("[*"):
                self.advance()
                low, high = 0, None
                if self.peek().kind == "number":
                    low = self.expect_number()
                    high = low
                    if self.peek().is_op(":") or self.peek().is_op(".."):
                        self.advance()
                        if self.peek().is_kw("inf"):
                            self.advance()
                            high = None
                        else:
                            high = self.expect_number()
                self.expect_op("]")
                base = SereRepeat(base, low, high)
            elif token.is_op("[+]"):
                self.advance()
                base = SereRepeat(base, 1, None)
            elif token.is_op("[->"):
                self.advance()
                low, high = 1, None
                if self.peek().kind == "number":
                    low = self.expect_number()
                    if self.peek().is_op(":") or self.peek().is_op(".."):
                        self.advance()
                        high = self.expect_number()
                self.expect_op("]")
                base = SereGoto(self._sere_to_expr(base), low, high)
            elif token.is_op("[="):
                self.advance()
                low = self.expect_number()
                high = None
                if self.peek().is_op(":") or self.peek().is_op(".."):
                    self.advance()
                    high = self.expect_number()
                self.expect_op("]")
                base = SereNonConsec(self._sere_to_expr(base), low, high)
            else:
                return base

    def _sere_to_expr(self, item: Sere) -> Expr:
        if isinstance(item, SereBool):
            return item.expr
        raise self._fail("goto/non-consecutive repetition applies to booleans only")

    def _parse_sere_primary(self) -> Sere:
        if self.peek().is_op("{"):
            self.advance()
            inner = self.parse_sere()
            self.expect_op("}")
            return inner
        return SereBool(self.parse_bool_expr())

    # -- Boolean layer -------------------------------------------------------------

    def parse_bool_expr(self) -> Expr:
        return self._parse_b_or()

    def _parse_b_or(self) -> Expr:
        left = self._parse_b_and()
        while self.peek().is_op("||"):
            self.advance()
            from .ast_nodes import Or

            left = Or(left, self._parse_b_and())
        return left

    def _parse_b_and(self) -> Expr:
        left = self._parse_b_xor()
        while self.peek().is_op("&&"):
            self.advance()
            from .ast_nodes import And

            left = And(left, self._parse_b_xor())
        return left

    def _parse_b_xor(self) -> Expr:
        left = self._parse_b_compare()
        while self.peek().is_op("^"):
            self.advance()
            from .ast_nodes import Xor

            left = Xor(left, self._parse_b_compare())
        return left

    def _parse_b_compare(self) -> Expr:
        left = self._parse_b_additive()
        token = self.peek()
        if token.is_op("==", "!=", "<", "<=", ">", ">="):
            self.advance()
            right = self._parse_b_additive()
            return Compare(token.text, left, right)
        return left

    def _parse_b_additive(self) -> Expr:
        left = self._parse_b_multiplicative()
        while self.peek().is_op("+", "-"):
            operator = self.advance().text
            left = Arith(operator, left, self._parse_b_multiplicative())
        return left

    def _parse_b_multiplicative(self) -> Expr:
        left = self._parse_b_unary()
        while self.peek().is_op("*", "/", "%"):
            operator = self.advance().text
            left = Arith(operator, left, self._parse_b_unary())
        return left

    def _parse_b_unary(self) -> Expr:
        token = self.peek()
        if token.is_op("!"):
            self.advance()
            return Not(self._parse_b_unary())
        if token.is_op("-"):
            self.advance()
            operand = self._parse_b_unary()
            return Arith("-", Const(0), operand)
        return self._parse_b_postfix()

    def _parse_b_postfix(self) -> Expr:
        base = self._parse_bool_primary_expr()
        while self.peek().is_op("["):
            # Bit select; reject when it is actually a repetition suffix
            # (handled by the SERE layer) -- those use '[*', '[+]' etc.
            self.advance()
            index = self.parse_bool_expr()
            self.expect_op("]")
            base = Index(base, index)
        return base

    def _parse_bool_primary_expr(self) -> Expr:
        token = self.peek()
        if token.is_op("("):
            self.advance()
            inner = self.parse_bool_expr()
            self.expect_op(")")
            return inner
        if token.kind == "number":
            self.advance()
            return Const(int(token.text))
        if token.is_kw("true"):
            self.advance()
            return Const(True)
        if token.is_kw("false"):
            self.advance()
            return Const(False)
        if token.is_kw("posedge", "negedge"):
            self.advance()
            operand = self._parse_bool_primary_expr()
            return Func("rose" if token.text == "posedge" else "fell", (operand,))
        if token.is_kw(
            "prev", "rose", "fell", "stable", "countones", "onehot", "onehot0", "isunknown"
        ) or (token.kind == "ident" and self.peek(1).is_op("(")):
            name = self.advance().text
            self.expect_op("(")
            args = [self.parse_bool_expr()]
            while self.peek().is_op(","):
                self.advance()
                args.append(self.parse_bool_expr())
            self.expect_op(")")
            return Func(name, tuple(args))
        if token.kind == "ident":
            self.advance()
            return Var(token.text)
        raise self._fail(f"unexpected token {token.text!r} in boolean expression")


# -- module-level one-shot helpers ------------------------------------------------


def parse_formula(source: str) -> Formula:
    """Parse a single FL formula, e.g. ``"always {req} |=> {gnt}"``."""
    parser = Parser(source)
    formula = parser.parse_formula()
    if not parser.at_end():
        leftover = parser.peek()
        raise PslParseError(
            f"trailing input {leftover.text!r}", leftover.line, leftover.column
        )
    return formula


def parse_sere(source: str) -> Sere:
    """Parse a single SERE, e.g. ``"req ; !req[*] ; gnt"``."""
    parser = Parser(source)
    result = parser.parse_sere()
    if not parser.at_end():
        leftover = parser.peek()
        raise PslParseError(
            f"trailing input {leftover.text!r}", leftover.line, leftover.column
        )
    return result


def parse_bool(source: str) -> Expr:
    """Parse a Boolean-layer expression."""
    parser = Parser(source)
    result = parser.parse_bool_expr()
    if not parser.at_end():
        leftover = parser.peek()
        raise PslParseError(
            f"trailing input {leftover.text!r}", leftover.line, leftover.column
        )
    return result


def parse_vunit(source: str) -> VUnit:
    """Parse a ``vunit NAME { ... }`` block."""
    parser = Parser(source)
    unit = parser.parse_vunit()
    if not parser.at_end():
        leftover = parser.peek()
        raise PslParseError(
            f"trailing input {leftover.text!r}", leftover.line, leftover.column
        )
    return unit


def parse_directive(source: str) -> Directive:
    """Parse a standalone ``assert/assume/restrict/cover`` directive."""
    parser = Parser(source)
    result = parser.parse_directive()
    if not parser.at_end():
        leftover = parser.peek()
        raise PslParseError(
            f"trailing input {leftover.text!r}", leftover.line, leftover.column
        )
    return result
